"""Client-side fleet robustness: breakers, budgets, overload, SLOs.

The serving engine's single-node defences (the per-node escalation
ladder of :mod:`repro.serve.fleet`) handle *independent* faults.  This
module adds the fleet-scope machinery a host runtime needs when faults
are *correlated* — crash storms, brownouts, flapping nodes, arrival
surges (see :class:`repro.faults.plan.FleetPlan`):

==========================  ================================================
mechanism                   role
==========================  ================================================
:class:`CircuitBreaker`     per-node closed → open → half-open gate on
                            consecutive ``ServiceOutcome`` failures; an
                            open breaker steers dispatches away from a
                            node that keeps eating batches
:class:`RetryBudget`        fleet-wide cap on requeue-driven retry
                            amplification: every completion earns
                            fractional retry tokens, exhaustion sheds
                            instead of retrying forever
hedged dispatch             (engine-side) a duplicate of an overdue
                            batch on a second node; first copy to finish
                            wins, the loser is counted as hedging waste
:class:`HealthMonitor`      periodic probes ejecting flapping nodes
                            after consecutive down observations and
                            readmitting them after consecutive up ones
:class:`OverloadController` brownout QoS ladder — fast tier → eco tier
                            → host assist → shed — escalated under
                            sustained queue growth or power-gate
                            pressure, with hysteresis on relief
:class:`SloTracker`         per-kernel latency/availability SLOs with
                            run-scope error-budget burn and an
                            ``alerts.log``-style event stream
==========================  ================================================

Everything is deterministic: state advances only on engine events and
simulated-time probes, so chaos campaigns rerun bit-identically.  When
``ServeConfig.resilience`` is ``None`` the engine never touches this
module and behaves exactly as before — a chaos run with an empty plan
is bit-identical to a plain serve run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: The overload ladder, in escalation order (level == list index).
OVERLOAD_LEVELS = ("normal", "eco", "host-assist", "shed")


@dataclass(frozen=True)
class SloPolicy:
    """Per-kernel service-level objectives.

    - ``latency_factor``: a request meets its latency SLO when its
      end-to-end latency is at most ``latency_factor`` times the
      cost-model estimate of its warm fast-tier service time;
    - ``latency_objective``: fraction of completed requests that must
      meet the latency SLO (the error budget is the complement);
    - ``availability_objective``: fraction of arrivals that must
      complete (drops and sheds burn this budget);
    - ``min_samples``: per-kernel observation floor before burn alerts
      fire (avoids paging on the first unlucky request).
    """

    latency_factor: float = 50.0
    latency_objective: float = 0.95
    availability_objective: float = 0.999
    min_samples: int = 20

    def __post_init__(self) -> None:
        if self.latency_factor <= 0:
            raise ConfigurationError(
                f"latency factor must be > 0, got {self.latency_factor}")
        for name in ("latency_objective", "availability_objective"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ConfigurationError(
                    f"{name} must be in (0, 1), got {value}")
        if self.min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {self.min_samples}")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the fleet robustness machinery (all deterministic).

    ==========================  ============================================
    knob                        meaning
    ==========================  ============================================
    ``breaker_failures``        consecutive died outcomes that open a
                                node's breaker
    ``breaker_cooldown_s``      open time before the half-open probe
    ``retry_budget``            base fleet-wide retry tokens
    ``retry_ratio``             extra tokens earned per completed request
    ``hedging``                 enable hedged dispatch of overdue batches
    ``hedge_margin_s``          slack past the deadline estimate before a
                                hedge is issued
    ``health_interval_s``       probe period (0 disables the monitor)
    ``eject_after``             consecutive down probes before ejection
    ``readmit_after``           consecutive up probes before readmission
    ``queue_high``              queue depth counting as overload pressure
    ``queue_low``               queue depth counting as relief (and the
                                shed watermark)
    ``overload_patience``       consecutive pressure (relief) dispatcher
                                wakes before escalating (de-escalating)
    ``backpressure_s``          extra think time signaled to closed-loop
                                clients per overload level
    ``slo``                     the :class:`SloPolicy`
    ==========================  ============================================
    """

    breaker_failures: int = 3
    breaker_cooldown_s: float = 0.05
    retry_budget: int = 16
    retry_ratio: float = 0.2
    hedging: bool = True
    hedge_margin_s: float = 0.005
    health_interval_s: float = 0.005
    eject_after: int = 2
    readmit_after: int = 3
    queue_high: int = 24
    queue_low: int = 6
    overload_patience: int = 4
    backpressure_s: float = 0.002
    slo: SloPolicy = field(default_factory=SloPolicy)

    def __post_init__(self) -> None:
        if self.breaker_failures < 1:
            raise ConfigurationError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}")
        if self.breaker_cooldown_s < 0 or self.hedge_margin_s < 0 \
                or self.health_interval_s < 0 or self.backpressure_s < 0:
            raise ConfigurationError("resilience timings must be >= 0")
        if self.retry_budget < 0 or self.retry_ratio < 0:
            raise ConfigurationError("retry budget/ratio must be >= 0")
        if self.eject_after < 1 or self.readmit_after < 1:
            raise ConfigurationError("eject/readmit thresholds must be >= 1")
        if not 0 <= self.queue_low < self.queue_high:
            raise ConfigurationError(
                f"need 0 <= queue_low < queue_high, got "
                f"{self.queue_low}/{self.queue_high}")
        if self.overload_patience < 1:
            raise ConfigurationError(
                f"overload_patience must be >= 1, got "
                f"{self.overload_patience}")


class CircuitBreaker:
    """Closed → open → half-open breaker over one node's outcomes."""

    def __init__(self, config: ResilienceConfig):
        self._config = config
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0
        self.opened_at = 0.0
        self._probe_out = False

    def allows(self, now: float) -> bool:
        """Whether a dispatch to the node is allowed at *now*."""
        if self.state == "open":
            if now >= self.opened_at + self._config.breaker_cooldown_s:
                self.state = "half-open"
                self._probe_out = False
        if self.state == "half-open":
            return not self._probe_out
        return self.state == "closed"

    def note_dispatch(self) -> None:
        """A dispatch went out (marks the half-open probe in flight)."""
        if self.state == "half-open":
            self._probe_out = True

    def record_failure(self, now: float) -> bool:
        """A died outcome; returns True when this trips the breaker."""
        self.consecutive_failures += 1
        tripped = (self.state == "half-open"
                   or (self.state == "closed" and self.consecutive_failures
                       >= self._config.breaker_failures))
        if tripped:
            self.state = "open"
            self.opened_at = now
            self.trips += 1
            self.consecutive_failures = 0
            self._probe_out = False
        return tripped

    def record_success(self) -> None:
        """A successful outcome closes a half-open breaker."""
        self.consecutive_failures = 0
        if self.state == "half-open":
            self.state = "closed"
            self._probe_out = False


class RetryBudget:
    """Fleet-wide cap on requeue-driven retry amplification."""

    def __init__(self, config: ResilienceConfig):
        self._config = config
        self.spent = 0
        self.denied = 0

    def allowance(self, completed: int) -> float:
        """Tokens available after *completed* successful requests."""
        return self._config.retry_budget \
            + self._config.retry_ratio * completed

    def allow(self, requests: int, completed: int) -> bool:
        """Spend *requests* tokens if the budget covers them."""
        if self.spent + requests <= self.allowance(completed):
            self.spent += requests
            return True
        self.denied += requests
        return False


class HealthMonitor:
    """Consecutive-probe ejection/readmission of flapping nodes."""

    def __init__(self, config: ResilienceConfig):
        self._config = config
        self.ejected: Dict[str, bool] = {}
        self._down_streak: Dict[str, int] = {}
        self._up_streak: Dict[str, int] = {}
        self.ejections = 0
        self.readmissions = 0

    def observe(self, name: str, down: bool) -> Optional[str]:
        """One probe observation; returns ``"ejected"`` / ``"readmitted"``
        on a state change."""
        if down:
            self._down_streak[name] = self._down_streak.get(name, 0) + 1
            self._up_streak[name] = 0
            if not self.ejected.get(name) \
                    and self._down_streak[name] >= self._config.eject_after:
                self.ejected[name] = True
                self.ejections += 1
                return "ejected"
        else:
            self._up_streak[name] = self._up_streak.get(name, 0) + 1
            self._down_streak[name] = 0
            if self.ejected.get(name) \
                    and self._up_streak[name] >= self._config.readmit_after:
                self.ejected[name] = False
                self.readmissions += 1
                return "readmitted"
        return None

    def usable(self, name: str) -> bool:
        """Whether the node is currently admitted."""
        return not self.ejected.get(name, False)


class OverloadController:
    """The brownout QoS ladder with patience/hysteresis.

    Pressure (queue above the high watermark, or a power-gate deferral)
    escalates one level after ``overload_patience`` consecutive
    observations; relief (queue below the low watermark) de-escalates
    the same way.  Levels index :data:`OVERLOAD_LEVELS`.
    """

    def __init__(self, config: ResilienceConfig):
        self._config = config
        self.level = 0
        self.peak_level = 0
        self.escalations = 0
        self._pressure = 0
        self._relief = 0

    def observe(self, queue_depth: int) -> Optional[int]:
        """One dispatcher wake; returns the new level on a change."""
        if queue_depth > self._config.queue_high:
            return self._note_pressure()
        if queue_depth < self._config.queue_low:
            self._pressure = 0
            self._relief += 1
            if self.level > 0 \
                    and self._relief >= self._config.overload_patience:
                self._relief = 0
                self.level -= 1
                return self.level
        else:
            self._pressure = 0
            self._relief = 0
        return None

    def note_deferral(self) -> Optional[int]:
        """A power-gate deferral counts as overload pressure."""
        return self._note_pressure()

    def _note_pressure(self) -> Optional[int]:
        self._relief = 0
        self._pressure += 1
        if self.level < len(OVERLOAD_LEVELS) - 1 \
                and self._pressure >= self._config.overload_patience:
            self._pressure = 0
            self.level += 1
            self.escalations += 1
            self.peak_level = max(self.peak_level, self.level)
            return self.level
        return None

    @property
    def level_name(self) -> str:
        """The current ladder rung's name."""
        return OVERLOAD_LEVELS[self.level]


@dataclass(frozen=True)
class AlertEvent:
    """One line of the ``alerts.log``-style event stream."""

    t_s: float
    severity: str  # "info" | "warn" | "page"
    source: str    # "slo" | "breaker" | "health" | "overload"
    subject: str   # kernel or node name, or the ladder rung
    message: str

    def render(self) -> str:
        """The log line."""
        return (f"t={self.t_s:.6f} {self.severity:<4} "
                f"{self.source}:{self.subject} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {"t_s": round(self.t_s, 9), "severity": self.severity,
                "source": self.source, "subject": self.subject,
                "message": self.message}


class _KernelSlo:
    """Running latency/availability tallies for one kernel."""

    __slots__ = ("completed", "violations", "dropped")

    def __init__(self):
        self.completed = 0
        self.violations = 0
        self.dropped = 0

    @property
    def samples(self) -> int:
        return self.completed + self.dropped


class SloTracker:
    """Per-kernel SLO error budgets with run-scope burn.

    Burn is the consumed fraction of the error budget: a latency burn of
    1.0 means exactly the allowed share of requests missed the latency
    SLO; above 1.0 the budget is exhausted.  Alerts fire once per
    (kernel, objective, threshold) — ``warn`` at half the budget,
    ``page`` at exhaustion — only after ``min_samples`` observations.
    """

    THRESHOLDS = ((1.0, "page"), (0.5, "warn"))

    def __init__(self, policy: SloPolicy):
        self.policy = policy
        self._kernels: Dict[str, _KernelSlo] = {}
        self._alerted: Dict[Tuple[str, str, float], bool] = {}
        self.alerts: List[AlertEvent] = []

    def _slot(self, kernel: str) -> _KernelSlo:
        slot = self._kernels.get(kernel)
        if slot is None:
            slot = self._kernels[kernel] = _KernelSlo()
        return slot

    def record_completion(self, kernel: str, latency_s: float,
                          estimate_s: float, now: float) -> None:
        """One completed request (latency vs its SLO target)."""
        slot = self._slot(kernel)
        slot.completed += 1
        if latency_s > self.policy.latency_factor * estimate_s:
            slot.violations += 1
        self._check(kernel, slot, now)

    def record_drop(self, kernel: str, now: float) -> None:
        """One arrival that will never complete (burned availability)."""
        slot = self._slot(kernel)
        slot.dropped += 1
        self._check(kernel, slot, now)

    def latency_burn(self, kernel: str) -> float:
        """Latency error-budget burn for *kernel* (0 with no samples)."""
        slot = self._kernels.get(kernel)
        if slot is None or slot.completed == 0:
            return 0.0
        share = slot.violations / slot.completed
        return share / (1.0 - self.policy.latency_objective)

    def availability_burn(self, kernel: str) -> float:
        """Availability error-budget burn for *kernel*."""
        slot = self._kernels.get(kernel)
        if slot is None or slot.samples == 0:
            return 0.0
        share = slot.dropped / slot.samples
        return share / (1.0 - self.policy.availability_objective)

    def worst_burn(self) -> float:
        """The highest burn across every kernel and both objectives."""
        worst = 0.0
        for kernel in self._kernels:
            worst = max(worst, self.latency_burn(kernel),
                        self.availability_burn(kernel))
        return worst

    def _check(self, kernel: str, slot: _KernelSlo, now: float) -> None:
        if slot.samples < self.policy.min_samples:
            return
        for objective, burn in (("latency", self.latency_burn(kernel)),
                                ("availability",
                                 self.availability_burn(kernel))):
            for threshold, severity in self.THRESHOLDS:
                key = (kernel, objective, threshold)
                if burn >= threshold and not self._alerted.get(key):
                    self._alerted[key] = True
                    self.alerts.append(AlertEvent(
                        t_s=now, severity=severity, source="slo",
                        subject=kernel,
                        message=(f"{objective} budget burn "
                                 f"{burn:.2f} >= {threshold:g}")))
                    break  # the page implies the warn

    def summary(self) -> Dict[str, object]:
        """JSON-safe per-kernel tallies + burns."""
        kernels = {}
        for kernel in sorted(self._kernels):
            slot = self._kernels[kernel]
            kernels[kernel] = {
                "completed": slot.completed,
                "latency_violations": slot.violations,
                "dropped": slot.dropped,
                "latency_burn": round(self.latency_burn(kernel), 6),
                "availability_burn": round(self.availability_burn(kernel), 6),
            }
        return {"kernels": kernels,
                "worst_burn": round(self.worst_burn(), 6),
                "policy": {
                    "latency_factor": self.policy.latency_factor,
                    "latency_objective": self.policy.latency_objective,
                    "availability_objective":
                        self.policy.availability_objective,
                }}


class ResilienceRuntime:
    """Engine-side aggregate of every robustness mechanism.

    Owned by :class:`~repro.serve.engine.ServeEngine` when
    ``ServeConfig.resilience`` is set; ``None`` otherwise (the engine
    then never consults it, keeping plain runs bit-identical).
    """

    def __init__(self, config: ResilienceConfig):
        self.config = config
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.retry = RetryBudget(config)
        self.health = HealthMonitor(config)
        self.overload = OverloadController(config)
        self.slo = SloTracker(config.slo)
        self.alerts: List[AlertEvent] = []
        self.breaker_trips = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_covered_failures = 0
        self.hedge_waste_time_s = 0.0
        self.hedge_waste_energy_j = 0.0
        self.eco_degrades = 0
        self.sheds = 0
        self.backpressure_events = 0
        self.completed = 0
        self._probe_handle: Optional[int] = None

    # -- breakers ---------------------------------------------------------------

    def breaker(self, name: str) -> CircuitBreaker:
        """The (lazily created) breaker of node *name*."""
        breaker = self.breakers.get(name)
        if breaker is None:
            breaker = self.breakers[name] = CircuitBreaker(self.config)
        return breaker

    def node_usable(self, name: str, now: float) -> bool:
        """Breaker allows a dispatch and health has not ejected it."""
        return self.health.usable(name) and self.breaker(name).allows(now)

    def record_failure(self, name: str, now: float) -> None:
        """Feed a died outcome to the node's breaker (+ alert on trip)."""
        if self.breaker(name).record_failure(now):
            self.breaker_trips += 1
            self.alert(now, "warn", "breaker", name, "breaker opened")

    # -- health probing ---------------------------------------------------------

    def start(self, engine) -> None:
        """Arm the periodic health probe on the engine's simulator."""
        if self.config.health_interval_s > 0:
            self._schedule_probe(engine)

    def stop(self, simulator) -> None:
        """Cancel the pending probe (called from the drain hook)."""
        if self._probe_handle is not None:
            simulator.cancel(self._probe_handle)
            self._probe_handle = None

    def _schedule_probe(self, engine) -> None:
        self._probe_handle = engine.simulator.schedule(
            self.config.health_interval_s, self._probe, engine)

    def _probe(self, engine) -> None:
        now = engine.simulator.now
        for node in engine.fleet.nodes:
            change = self.health.observe(node.name, not node.alive)
            if change is not None:
                self.alert(now, "info", "health", node.name, change)
        self._schedule_probe(engine)
        if engine.scheduler.queue:
            # Progress guarantee: breaker cooldowns and readmissions
            # change dispatchability without an engine event, so a
            # waiting queue gets the dispatcher re-evaluated each probe.
            engine.kick()

    # -- events -----------------------------------------------------------------

    def alert(self, now: float, severity: str, source: str, subject: str,
              message: str) -> None:
        """Append one event to the alert stream."""
        self.alerts.append(AlertEvent(t_s=now, severity=severity,
                                      source=source, subject=subject,
                                      message=message))

    def all_alerts(self) -> List[AlertEvent]:
        """Runtime + SLO alerts merged in time order (stable)."""
        merged = self.alerts + self.slo.alerts
        merged.sort(key=lambda a: a.t_s)
        return merged

    # -- reporting --------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """The JSON-safe resilience section of a :class:`ServeReport`."""
        breakers = {
            name: {"state": breaker.state, "trips": breaker.trips}
            for name, breaker in sorted(self.breakers.items())
            if breaker.trips or breaker.state != "closed"
        }
        return {
            "breakers": {
                "trips": self.breaker_trips,
                "by_node": breakers,
            },
            "retry_budget": {
                "base": self.config.retry_budget,
                "ratio": self.config.retry_ratio,
                "spent": self.retry.spent,
                "denied": self.retry.denied,
            },
            "hedging": {
                "issued": self.hedges,
                "wins": self.hedge_wins,
                "covered_failures": self.hedge_covered_failures,
                "waste_time_s": round(self.hedge_waste_time_s, 9),
                "waste_energy_j": round(self.hedge_waste_energy_j, 12),
            },
            "health": {
                "ejections": self.health.ejections,
                "readmissions": self.health.readmissions,
            },
            "overload": {
                "level": self.overload.level,
                "level_name": self.overload.level_name,
                "peak_level": self.overload.peak_level,
                "escalations": self.overload.escalations,
                "eco_degrades": self.eco_degrades,
                "sheds": self.sheds,
                "backpressure_events": self.backpressure_events,
            },
            "slo": self.slo.summary(),
            "alerts": [alert.to_dict() for alert in self.all_alerts()],
        }
