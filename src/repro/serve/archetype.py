"""First-class node archetypes: the swappable spec of a fleet node.

Before this module the serving fleet had exactly one node shape baked
into :class:`~repro.serve.fleet.Fleet` construction: the paper's
STM32-L476 host with a 4-core cluster at the default tier budgets.  A
:class:`NodeArchetype` makes that shape explicit and swappable — the
host MCU (any device of the :mod:`repro.mcu` catalog), the accelerator
cluster size, the host operating point and the per-tier envelope
budgets — so heterogeneous fleets can mix archetypes and the
fleet-composition planner (:mod:`repro.capacity`) can search over them.

A :class:`FleetSpec` is an ordered list of ``(archetype, count)``
groups plus an optional per-kernel routing table; it prices one
:class:`~repro.serve.fleet.AnalyticServiceBook` per archetype and hands
:class:`~repro.serve.fleet.Fleet` its per-node books.  The default
spec (one group of the default archetype) reproduces today's fleet bit
for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import mw

#: Archetype name of the implicit pre-heterogeneity fleet node.
DEFAULT_ARCHETYPE_NAME = "l476-x4"

_SPI_MODES = ("single", "quad")


@dataclass(frozen=True)
class NodeArchetype:
    """One node shape: host MCU, cluster size, operating point, budgets.

    The defaults reproduce the implicit archetype every fleet used
    before heterogeneity: an STM32-L476 host at 8 MHz in front of a
    4-core cluster, fast tier at the paper's 10 mW envelope and eco at
    6.5 mW.
    """

    name: str = DEFAULT_ARCHETYPE_NAME
    mcu: str = "STM32-L476"
    cluster_size: int = 4
    host_mhz: float = 8.0
    spi_mode: str = "quad"
    fast_budget_mw: float = 10.0
    eco_budget_mw: Optional[float] = 6.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("archetype needs a name")
        # The PULP power model carries four cores; bigger clusters have
        # no calibrated activity profile.
        if not 1 <= self.cluster_size <= 4:
            raise ConfigurationError(
                f"{self.name}: cluster_size must be in 1..4, "
                f"got {self.cluster_size}")
        if self.host_mhz <= 0:
            raise ConfigurationError(
                f"{self.name}: host_mhz must be positive, "
                f"got {self.host_mhz}")
        if self.spi_mode not in _SPI_MODES:
            raise ConfigurationError(
                f"{self.name}: unknown spi_mode {self.spi_mode!r}; "
                f"known: {', '.join(_SPI_MODES)}")
        if self.fast_budget_mw <= 0:
            raise ConfigurationError(
                f"{self.name}: fast_budget_mw must be positive")
        if self.eco_budget_mw is not None \
                and not 0 < self.eco_budget_mw <= self.fast_budget_mw:
            raise ConfigurationError(
                f"{self.name}: eco_budget_mw must be in "
                f"(0, fast_budget_mw], got {self.eco_budget_mw}")

    def tier_budgets(self) -> Dict[str, float]:
        """Per-tier envelope budgets (watts), fast first."""
        budgets = {"fast": mw(self.fast_budget_mw)}
        if self.eco_budget_mw is not None:
            budgets["eco"] = mw(self.eco_budget_mw)
        return budgets

    def build_book(self):
        """Price this archetype: an AnalyticServiceBook over its system.

        Books are expensive to warm (each (kernel, tier) runs the whole
        offload costing stack once); callers cache per archetype —
        :meth:`FleetSpec.books` does.
        """
        from repro.core.system import HeterogeneousSystem
        from repro.link.spi import SpiLink, SpiMode
        from repro.mcu import Stm32L476, mcu_by_name
        from repro.serve.fleet import AnalyticServiceBook

        device = mcu_by_name(self.mcu)
        system = HeterogeneousSystem(
            host=Stm32L476(device=device),
            link=SpiLink(SpiMode.QUAD if self.spi_mode == "quad"
                         else SpiMode.SINGLE),
            threads=self.cluster_size)
        return AnalyticServiceBook(system=system, host_mhz=self.host_mhz,
                                   tier_budgets=self.tier_budgets())

    def to_dict(self) -> Dict[str, object]:
        """JSON-able description (stable key order)."""
        return {
            "name": self.name,
            "mcu": self.mcu,
            "cluster_size": self.cluster_size,
            "host_mhz": self.host_mhz,
            "spi_mode": self.spi_mode,
            "fast_budget_mw": self.fast_budget_mw,
            "eco_budget_mw": self.eco_budget_mw,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "NodeArchetype":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {"name", "mcu", "cluster_size", "host_mhz", "spi_mode",
                 "fast_budget_mw", "eco_budget_mw"}
        extra = set(payload) - known
        if extra:
            raise ConfigurationError(
                f"unknown archetype fields: {', '.join(sorted(extra))}")
        return cls(**payload)


#: The implicit single archetype every fleet used before heterogeneity.
DEFAULT_ARCHETYPE = NodeArchetype()


@dataclass
class FleetSpec:
    """A heterogeneous fleet: ordered archetype groups + routing table.

    ``groups`` assigns node indices in order (group 0 gets the lowest
    indices), matching how fault plans cycle across the fleet.
    ``routing`` maps a kernel name to the archetype that should serve
    it; kernels without an entry (or an entry whose archetype has no
    available node) fall back to the first available node.
    """

    groups: Tuple[Tuple[NodeArchetype, int], ...]
    routing: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("fleet spec needs >= 1 groups")
        seen = set()
        for archetype, count in self.groups:
            if count < 0:
                raise ConfigurationError(
                    f"{archetype.name}: negative node count {count}")
            if archetype.name in seen:
                raise ConfigurationError(
                    f"duplicate archetype name {archetype.name!r}")
            seen.add(archetype.name)
        if self.nodes < 1:
            raise ConfigurationError("fleet spec has no nodes")
        for kernel, target in self.routing.items():
            if target not in seen:
                raise ConfigurationError(
                    f"routing for {kernel!r} names unknown archetype "
                    f"{target!r}")

    @property
    def nodes(self) -> int:
        """Total accelerator nodes across every group."""
        return sum(count for _, count in self.groups)

    def archetype(self, name: str) -> NodeArchetype:
        """Look an archetype up by name."""
        for archetype, _ in self.groups:
            if archetype.name == name:
                return archetype
        raise ConfigurationError(f"unknown archetype {name!r}")

    def books(self) -> Dict[str, object]:
        """One priced service book per archetype, keyed by name."""
        return {archetype.name: archetype.build_book()
                for archetype, _ in self.groups}

    def to_dict(self) -> Dict[str, object]:
        """JSON-able description (stable key order)."""
        return {
            "groups": [{"archetype": archetype.to_dict(), "count": count}
                       for archetype, count in self.groups],
            "routing": {kernel: self.routing[kernel]
                        for kernel in sorted(self.routing)},
        }

    @classmethod
    def homogeneous(cls, nodes: int,
                    archetype: Optional[NodeArchetype] = None) -> "FleetSpec":
        """The pre-heterogeneity fleet: one archetype, *nodes* copies."""
        archetype = archetype if archetype is not None else DEFAULT_ARCHETYPE
        return cls(groups=((archetype, nodes),))
