"""``repro.serve`` — the multi-accelerator offload serving runtime.

The paper couples one STM32-L476 host to one PULP cluster; this package
gangs a *fleet* of accelerator nodes behind one host runtime and drives
it from a stream of kernel requests, entirely as a seeded discrete-event
simulation on :mod:`repro.sim`:

* :mod:`repro.serve.workload` — seeded open-loop (Poisson, bursty MMPP)
  and closed-loop request generators plus JSON trace replay (and the
  surge wrapper chaos campaigns use to compress arrivals);
* :mod:`repro.serve.scheduler` — pluggable dispatch policies (FIFO,
  shortest-expected-service, EDF, power-cap throttling) with admission
  control and per-kernel batch coalescing;
* :mod:`repro.serve.archetype` — first-class node archetypes (host MCU,
  cluster size, operating point) and :class:`FleetSpec` compositions
  mixing them, with per-kernel routing;
* :mod:`repro.serve.fleet` — node lifecycle (idle/busy/rebooting/dead)
  with per-node fault plans and resilient-ladder recovery, plus the
  analytic service book pricing every request through the offload cost
  model;
* :mod:`repro.serve.resilience` — fleet-scope robustness: circuit
  breakers, retry budgets, hedged dispatch, health ejection, the
  overload/brownout ladder, and per-kernel SLO error budgets;
* :mod:`repro.serve.chaos` — fleet fault campaigns (crash storms,
  brownouts, flapping, arrival surges) scored into a resilience
  scorecard behind ``python -m repro chaos``;
* :mod:`repro.serve.metrics` — queueing statistics (latency percentiles,
  throughput, utilization, energy per request, deadline-miss and drop
  rates) and the fleet power timeline;
* :mod:`repro.serve.engine` — the :class:`ServeEngine` tying them
  together behind ``python -m repro serve``.

Everything is seeded and wall-clock free: the same configuration
reproduces bit-identical reports.
"""

from repro.serve.archetype import (
    DEFAULT_ARCHETYPE,
    FleetSpec,
    NodeArchetype,
)
from repro.serve.chaos import (
    ChaosCampaignResult,
    ChaosInjector,
    ChaosRun,
    build_scorecard,
    pinned_campaign_config,
    pinned_campaign_plans,
    run_campaign,
    run_scenario,
)
from repro.serve.engine import ServeConfig, ServeEngine, default_power_budget
from repro.serve.fleet import (
    AnalyticServiceBook,
    Fleet,
    Node,
    NodeState,
    ServiceBook,
    ServiceProfile,
    register_service_book,
    registered_service_books,
    service_book_by_name,
)
from repro.serve.metrics import RequestRecord, ServeReport, percentile
from repro.serve.resilience import (
    AlertEvent,
    CircuitBreaker,
    HealthMonitor,
    OverloadController,
    ResilienceConfig,
    ResilienceRuntime,
    RetryBudget,
    SloPolicy,
    SloTracker,
)
from repro.serve.scheduler import (
    Policy,
    Scheduler,
    SchedulerConfig,
    policy_name,
    register_policy,
    registered_policies,
)
from repro.serve.workload import (
    ClosedLoopWorkload,
    MmppWorkload,
    PoissonWorkload,
    Request,
    SurgedWorkload,
    TraceWorkload,
    Workload,
)

__all__ = [
    "AlertEvent",
    "AnalyticServiceBook",
    "ChaosCampaignResult",
    "ChaosInjector",
    "ChaosRun",
    "CircuitBreaker",
    "ClosedLoopWorkload",
    "DEFAULT_ARCHETYPE",
    "Fleet",
    "FleetSpec",
    "HealthMonitor",
    "MmppWorkload",
    "Node",
    "NodeArchetype",
    "NodeState",
    "OverloadController",
    "percentile",
    "PoissonWorkload",
    "Policy",
    "Request",
    "RequestRecord",
    "ResilienceConfig",
    "ResilienceRuntime",
    "RetryBudget",
    "Scheduler",
    "SchedulerConfig",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "ServiceBook",
    "ServiceProfile",
    "SloPolicy",
    "SloTracker",
    "SurgedWorkload",
    "TraceWorkload",
    "Workload",
    "build_scorecard",
    "default_power_budget",
    "pinned_campaign_config",
    "pinned_campaign_plans",
    "policy_name",
    "register_policy",
    "register_service_book",
    "registered_policies",
    "registered_service_books",
    "run_campaign",
    "run_scenario",
    "service_book_by_name",
]
