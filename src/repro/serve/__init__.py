"""``repro.serve`` — the multi-accelerator offload serving runtime.

The paper couples one STM32-L476 host to one PULP cluster; this package
gangs a *fleet* of accelerator nodes behind one host runtime and drives
it from a stream of kernel requests, entirely as a seeded discrete-event
simulation on :mod:`repro.sim`:

* :mod:`repro.serve.workload` — seeded open-loop (Poisson, bursty MMPP)
  and closed-loop request generators plus JSON trace replay;
* :mod:`repro.serve.scheduler` — pluggable dispatch policies (FIFO,
  shortest-expected-service, EDF, power-cap throttling) with admission
  control and per-kernel batch coalescing;
* :mod:`repro.serve.fleet` — node lifecycle (idle/busy/rebooting/dead)
  with per-node fault plans and resilient-ladder recovery, plus the
  analytic service book pricing every request through the offload cost
  model;
* :mod:`repro.serve.metrics` — queueing statistics (latency percentiles,
  throughput, utilization, energy per request, deadline-miss and drop
  rates) and the fleet power timeline;
* :mod:`repro.serve.engine` — the :class:`ServeEngine` tying them
  together behind ``python -m repro serve``.

Everything is seeded and wall-clock free: the same configuration
reproduces bit-identical reports.
"""

from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.fleet import (
    AnalyticServiceBook,
    Fleet,
    Node,
    NodeState,
    ServiceBook,
    ServiceProfile,
    register_service_book,
    registered_service_books,
    service_book_by_name,
)
from repro.serve.metrics import RequestRecord, ServeReport, percentile
from repro.serve.scheduler import (
    Policy,
    Scheduler,
    SchedulerConfig,
    policy_name,
    register_policy,
    registered_policies,
)
from repro.serve.workload import (
    ClosedLoopWorkload,
    MmppWorkload,
    PoissonWorkload,
    Request,
    TraceWorkload,
    Workload,
)

__all__ = [
    "AnalyticServiceBook",
    "ClosedLoopWorkload",
    "Fleet",
    "MmppWorkload",
    "Node",
    "NodeState",
    "percentile",
    "PoissonWorkload",
    "Policy",
    "Request",
    "RequestRecord",
    "Scheduler",
    "SchedulerConfig",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "ServiceBook",
    "ServiceProfile",
    "TraceWorkload",
    "Workload",
    "policy_name",
    "register_policy",
    "register_service_book",
    "registered_policies",
    "registered_service_books",
    "service_book_by_name",
]
