"""Dispatch policies, admission control, and batch coalescing.

The scheduler owns the central request queue.  A policy orders it:

========================  =====================================================
policy                    picks
========================  =====================================================
``fifo``                  the oldest request
``sjf``                   shortest expected service (priced through the
                          offload cost model — the analytic service book)
``edf``                   earliest absolute deadline (deadline-less
                          requests sort last)
``power-cap``             FIFO order, but dispatch is gated so the fleet
                          power draw stays under a budget; when the fast
                          operating point does not fit, the dispatch is
                          retried at the throttled *eco* envelope point
                          before being deferred
========================  =====================================================

Admission control bounds the queue: beyond ``queue_capacity`` pending
requests, new arrivals are dropped (and counted).  Batch coalescing
pulls up to ``max_batch`` same-kernel requests out of the queue in one
dispatch, so the SPI binary upload and accelerator boot are paid once
per batch instead of once per request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.serve.fleet import ServiceBook
from repro.serve.workload import Request

#: Power-comparison slack: one part in a million, absorbing float noise
#: without ever letting a whole extra node through the gate.
POWER_EPSILON = 1e-6


class Policy(enum.Enum):
    """The built-in dispatch policies."""

    FIFO = "fifo"
    SJF = "sjf"
    EDF = "edf"
    POWER_CAP = "power-cap"


#: A registered policy picks the queue index to dispatch next.
PolicySelect = Callable[["Scheduler", float], int]

_POLICY_REGISTRY: Dict[str, PolicySelect] = {}


def register_policy(name: str, select: PolicySelect) -> None:
    """Register a named dispatch policy (``SchedulerConfig.policy=name``).

    *select* receives the live :class:`Scheduler` (queue + service book)
    and the simulation time, and returns the index of the next request
    to dispatch.  Built-in :class:`Policy` names cannot be shadowed.
    """
    if name in Policy._value2member_map_:
        raise ConfigurationError(
            f"cannot shadow the built-in policy {name!r}")
    _POLICY_REGISTRY[name] = select


def registered_policies() -> Tuple[str, ...]:
    """Every currently registered extension policy name, sorted."""
    return tuple(sorted(_POLICY_REGISTRY))


def policy_name(policy: Union[Policy, str]) -> str:
    """The report-facing name of a built-in or registered policy."""
    return policy.value if isinstance(policy, Policy) else policy


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the scheduler.

    ``policy`` takes a built-in :class:`Policy` member or the name of an
    extension policy registered through :func:`register_policy` (the
    name is resolved when the :class:`Scheduler` is constructed, so
    registration may happen after the config is built).
    """

    policy: Union[Policy, str] = Policy.FIFO
    #: Pending-queue bound; 0 = unbounded (no admission control).
    queue_capacity: int = 0
    #: Same-kernel requests coalesced per dispatch.
    max_batch: int = 8
    #: Fleet power budget in watts (None = ungated).
    power_budget_w: Optional[float] = None
    #: Drop requests whose deadline already passed at dispatch time.
    drop_late: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.policy, str) \
                and self.policy in Policy._value2member_map_:
            # Accept built-in policies by name, normalized to the enum.
            object.__setattr__(self, "policy", Policy(self.policy))
        if self.queue_capacity < 0:
            raise ConfigurationError(
                f"negative queue capacity: {self.queue_capacity}")
        if self.max_batch < 1:
            raise ConfigurationError(f"max batch must be >= 1: {self.max_batch}")
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ConfigurationError(
                f"power budget must be > 0: {self.power_budget_w}")
        if self.policy is Policy.POWER_CAP and self.power_budget_w is None:
            raise ConfigurationError(
                "the power-cap policy needs a power budget")


class Scheduler:
    """Orders the queue, admits arrivals, and coalesces batches."""

    def __init__(self, config: SchedulerConfig, book: ServiceBook):
        policy = config.policy
        if isinstance(policy, str) and policy not in _POLICY_REGISTRY:
            known = ", ".join(
                tuple(Policy._value2member_map_) + registered_policies())
            raise ConfigurationError(
                f"unknown scheduler policy {policy!r}; known: {known}")
        self.config = config
        self.book = book
        self.queue: List[Request] = []
        self.dropped: List[Tuple[Request, str]] = []
        self._requeued: set = set()

    # -- admission ---------------------------------------------------------------

    def submit(self, request: Request) -> bool:
        """Admit *request* into the queue; False = dropped (queue full)."""
        capacity = self.config.queue_capacity
        if capacity and len(self.queue) >= capacity:
            self.dropped.append((request, "queue-full"))
            return False
        self.queue.append(request)
        return True

    def requeue(self, batch: List[Request]) -> None:
        """Put a failed node's batch back at the head of the queue.

        Requeued requests keep their original arrival time (wait
        percentiles and EDF ordering span recovery retries), and the
        requeued head region stays sorted by arrival — so repeated
        requeues from different node deaths can never invert the
        original order.
        """
        for request in batch:
            self._requeued.add(request.request_id)
        head = 0
        while head < len(self.queue) \
                and self.queue[head].request_id in self._requeued:
            head += 1
        merged = sorted(self.queue[:head] + list(batch),
                        key=lambda r: (r.arrival_s, r.request_id))
        self.queue[:head] = merged

    def shed(self, down_to: int, reason: str = "shed") -> List[Request]:
        """Drop the oldest queued requests until *down_to* remain.

        Overload control sheds from the head: the oldest requests are
        the ones whose deadlines are already at risk.  Victims land in
        :attr:`dropped` under *reason* and are returned so the engine
        can keep closed-loop client chains alive.
        """
        victims: List[Request] = []
        while len(self.queue) > down_to:
            victim = self.queue.pop(0)
            self.dropped.append((victim, reason))
            victims.append(victim)
        return victims

    # -- ordering ----------------------------------------------------------------

    def _select(self, now: float,
                indices: Optional[List[int]] = None) -> int:
        """Index of the next request to dispatch (queue must be non-empty).

        *indices* restricts the choice to a subset of queue positions
        (strict routing hands each node only the kernels it serves);
        None considers the whole queue.  Extension policies order the
        full queue — when their pick falls outside the subset, the
        earliest eligible request goes instead.
        """
        policy = self.config.policy
        if isinstance(policy, str):
            index = _POLICY_REGISTRY[policy](self, now)
            if not 0 <= index < len(self.queue):
                raise ConfigurationError(
                    f"policy {policy!r} selected index {index} outside "
                    f"the queue of {len(self.queue)}")
            if indices is not None and index not in indices:
                return indices[0]
            return index
        candidates = indices if indices is not None \
            else range(len(self.queue))
        if policy in (Policy.FIFO, Policy.POWER_CAP):
            return candidates[0] if indices is not None else 0
        if policy is Policy.SJF:
            return min(candidates,
                       key=lambda i: (self.book.estimate(self.queue[i]), i))
        # EDF: deadline-less requests sort after every deadline.
        return min(candidates,
                   key=lambda i: (self.queue[i].deadline_s
                                  if self.queue[i].deadline_s is not None
                                  else float("inf"), i))

    def take_batch(self, now: float,
                   allow: Optional[Callable[[Request], bool]] = None,
                   ) -> Tuple[List[Request], List[Request]]:
        """Pull the next batch out of the queue.

        Returns ``(batch, late)``: the coalesced same-kernel batch to
        dispatch, and the requests dropped for being past their deadline
        (only with ``drop_late``).  The batch may be empty when the
        whole queue was late.

        *allow* restricts eligibility (strict routing: a node only
        takes kernels routed to its archetype); requests it rejects
        stay queued untouched.  ``None`` considers everything — the
        exact pre-routing behavior.
        """
        late: List[Request] = []
        if self.config.drop_late:
            keep = []
            for request in self.queue:
                if request.deadline_s is not None \
                        and now > request.deadline_s:
                    late.append(request)
                    self.dropped.append((request, "late"))
                else:
                    keep.append(request)
            self.queue = keep
        if not self.queue:
            return [], late
        indices = None
        if allow is not None:
            indices = [i for i, request in enumerate(self.queue)
                       if allow(request)]
            if not indices:
                return [], late
        lead = self.queue.pop(self._select(now, indices))
        batch = [lead]
        index = 0
        while len(batch) < self.config.max_batch and index < len(self.queue):
            if self.queue[index].kernel == lead.kernel:
                batch.append(self.queue.pop(index))
            else:
                index += 1
        return batch, late

    # -- the power gate ----------------------------------------------------------

    def power_allows(self, current_w: float, idle_w: float,
                     active_w: float) -> bool:
        """Whether activating one node fits under the budget.

        *current_w* is the fleet draw right now, *idle_w* the candidate
        node's current (idle) draw, *active_w* its draw while serving.
        """
        budget = self.config.power_budget_w
        if budget is None:
            return True
        projected = current_w - idle_w + active_w
        return projected <= budget * (1.0 + POWER_EPSILON)

    def tier_for(self, current_w: float, idle_w: float,
                 fast_w: float, eco_w: float) -> Optional[str]:
        """The service tier a dispatch can run at under the budget.

        Prefers the full-speed envelope point; falls back to the
        throttled *eco* point; ``None`` defers the dispatch entirely.
        Without a budget every dispatch runs fast.
        """
        if self.config.power_budget_w is None:
            return "fast"
        if self.power_allows(current_w, idle_w, fast_w):
            return "fast"
        if self.config.policy is Policy.POWER_CAP \
                and self.power_allows(current_w, idle_w, eco_w):
            return "eco"
        return None
