"""Chaos campaigns: fleet-scope fault plans driven through the engine.

A campaign takes one :class:`~repro.serve.engine.ServeConfig` and a set
of :class:`~repro.faults.FleetPlan` scenarios, runs each scenario as its
own fully seeded simulation, and folds the outcomes into a resilience
scorecard:

==========================  ==================================================
scorecard field             meaning
==========================  ==================================================
``availability``            completed / submitted requests
``retry_amplification``     (completions + requeues) / completions — how much
                            extra work node deaths induced
``hedge_waste_ratio``       hedging losers' busy time over total busy time
``slo_worst_burn``          worst per-kernel error-budget burn (>= 1.0 means
                            the budget is exhausted)
``verdict``                 ``healthy`` | ``slo-exhausted`` | ``collapsed``
==========================  ==================================================

Determinism: every scenario is expanded by a seeded
:class:`~repro.faults.FleetInjector` into timed actions **before** the
run and installed as cancellable simulator callbacks, and arrival-surge
events time-warp the (pregenerated) arrival stream through
:class:`~repro.serve.workload.SurgedWorkload` — so a rerun of the same
campaign is bit-identical, and a run under the *empty* plan is
bit-identical to a plain ``repro serve`` of the same config.

The CLI exit-code contract (``repro chaos``):

=====  =======================================================
code   meaning
=====  =======================================================
0      every scenario healthy
3      an SLO error budget was exhausted (worst burn >= 1.0)
4      fleet collapse (availability under the threshold)
=====  =======================================================
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.injector import FleetAction, FleetInjector
from repro.faults.plan import FleetPlan
from repro.serve.engine import ServeConfig, ServeEngine, default_power_budget
from repro.serve.fleet import AnalyticServiceBook
from repro.serve.metrics import ServeReport
from repro.serve.resilience import AlertEvent, ResilienceConfig
from repro.serve.scheduler import Policy, SchedulerConfig
from repro.serve.workload import PoissonWorkload, SurgedWorkload

#: ``repro chaos`` exit codes (0 is the implicit healthy code).
CHAOS_EXIT_SLO = 3
CHAOS_EXIT_COLLAPSE = 4


class ChaosInjector:
    """Installs a plan's timed fleet actions onto a live engine.

    Actions are scheduled as cancellable simulator callbacks before the
    run starts; a drain hook cancels whatever is still pending when the
    engine finishes, so a plan outliving the workload neither stalls the
    drain nor inflates the reported duration.
    """

    def __init__(self, engine: ServeEngine, plan: FleetPlan, seed: int = 1):
        self.engine = engine
        self.plan = plan
        self.injector = FleetInjector(plan, seed)
        self.events: List[Tuple[float, str]] = []
        self._handles: List[int] = []

    def install(self) -> None:
        """Schedule every timed action and register the drain hook."""
        simulator = self.engine.simulator
        for action in self.injector.actions(len(self.engine.fleet.nodes)):
            self._handles.append(simulator.schedule(
                action.at_s - simulator.now, self._apply, action))
        self.engine.drain_hooks.append(self.cancel_pending)

    def cancel_pending(self) -> None:
        """Cancel every not-yet-fired action (idempotent)."""
        for handle in self._handles:
            self.engine.simulator.cancel(handle)
        self._handles = []

    def _apply(self, action: FleetAction) -> None:
        fleet = self.engine.fleet
        now = self.engine.simulator.now
        if action.action == "crash":
            node = fleet.nodes[action.node]
            self.events.append((now, f"crash {node.name}"))
            node.crash()
        elif action.action == "recover":
            node = fleet.nodes[action.node]
            self.events.append((now, f"recover {node.name}"))
            node.recover()
        elif action.action == "droop":
            self.events.append((now, f"fleet droop x{action.droop:g}"))
            for node in fleet.nodes:
                node.droop = node.base_droop * action.droop
        elif action.action == "restore":
            self.events.append((now, "fleet droop restored"))
            for node in fleet.nodes:
                node.droop = node.base_droop
        # Availability changed out-of-band: re-evaluate dispatch.
        self.engine.kick()


@dataclass
class ChaosRun:
    """One scenario's outcome."""

    scenario: str
    report: ServeReport
    scorecard: Dict[str, object]
    alerts: List[AlertEvent]
    events: List[Tuple[float, str]]

    @property
    def verdict(self) -> str:
        return str(self.scorecard["verdict"])

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "scorecard": self.scorecard,
            "events": [[round(t, 9), what] for t, what in self.events],
            "alerts": [alert.to_dict() for alert in self.alerts],
        }


@dataclass
class ChaosCampaignResult:
    """Every scenario of a campaign, plus the aggregate verdict."""

    runs: List[ChaosRun]

    @property
    def verdict(self) -> str:
        verdicts = [run.verdict for run in self.runs]
        if "collapsed" in verdicts:
            return "collapsed"
        if "slo-exhausted" in verdicts:
            return "slo-exhausted"
        return "healthy"

    @property
    def exit_code(self) -> int:
        """The ``repro chaos`` exit-code contract."""
        verdict = self.verdict
        if verdict == "collapsed":
            return CHAOS_EXIT_COLLAPSE
        if verdict == "slo-exhausted":
            return CHAOS_EXIT_SLO
        return 0

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "scenarios": [run.to_json_dict() for run in self.runs],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Stable JSON (reruns of a seeded campaign compare equal)."""
        return json.dumps(self.to_json_dict(), indent=indent,
                          sort_keys=True)

    def render(self) -> str:
        """The scorecard table."""
        lines = ["chaos campaign:"]
        for run in self.runs:
            card = run.scorecard
            amp = card["retry_amplification"]
            burn = card["slo_worst_burn"]
            lines.append(
                f"  {run.scenario:<24} {card['verdict']:<13} "
                f"avail {card['availability']:.4f}  "
                f"amp {amp if amp is not None else float('nan'):.3f}  "
                f"p95 {card['latency_p95_ms']:.3f} ms  "
                f"burn {burn if burn is not None else 0.0:.3f}  "
                f"hedge waste {card['hedge_waste_ratio']:.4f}")
        lines.append(f"  verdict: {self.verdict} "
                     f"(exit {self.exit_code})")
        return "\n".join(lines)


def build_scorecard(report: ServeReport,
                    collapse_threshold: float = 0.5) -> Dict[str, object]:
    """Fold one run's report into the resilience scorecard."""
    completed = len(report.records)
    submitted = report.arrivals
    availability = completed / submitted if submitted else 0.0
    requeues = report.requeues
    busy = sum(report.node_busy_s.values())
    res = report.resilience or {}
    hedging = res.get("hedging", {})
    waste = float(hedging.get("waste_time_s", 0.0))
    burn = report.slo_worst_burn
    if availability < collapse_threshold:
        verdict = "collapsed"
    elif burn is not None and burn >= 1.0:
        verdict = "slo-exhausted"
    else:
        verdict = "healthy"
    return {
        "submitted": submitted,
        "completed": completed,
        "dropped": len(report.dropped),
        "availability": round(availability, 6),
        "retry_amplification": (round((completed + requeues) / completed, 6)
                                if completed else None),
        "requeues": requeues,
        "latency_p95_ms": report.metrics()["latency_p95_ms"],
        "host_fallbacks": report.fallbacks,
        "dead_nodes": report.dead_nodes,
        "reboots": report.reboots,
        "breaker_trips": res.get("breakers", {}).get("trips", 0),
        "retry_denied": res.get("retry_budget", {}).get("denied", 0),
        "hedges": hedging.get("issued", 0),
        "hedge_wins": hedging.get("wins", 0),
        "hedge_waste_ratio": round(waste / busy, 6) if busy > 0 else 0.0,
        "sheds": res.get("overload", {}).get("sheds", 0),
        "overload_peak": res.get("overload", {}).get("peak_level", 0),
        "slo_worst_burn": None if burn is None else round(burn, 6),
        "alerts": len(res.get("alerts", [])),
        "energy_per_request_uj": report.metrics()["energy_per_request_uj"],
        "verdict": verdict,
    }


def run_scenario(config: ServeConfig, plan: FleetPlan, *,
                 chaos_seed: int = 1,
                 collapse_threshold: float = 0.5) -> ChaosRun:
    """Run *config* under *plan* and score the outcome.

    The passed config is never mutated: arrival surges wrap the workload
    on a :func:`dataclasses.replace` copy, so one config can back many
    scenarios (and bench repeats) without cross-contamination.
    """
    windows = FleetInjector(plan, chaos_seed).surge_windows()
    if windows:
        config = dataclasses.replace(
            config, workload=SurgedWorkload(config.workload, windows))
    engine = ServeEngine(config)
    chaos = ChaosInjector(engine, plan, chaos_seed)
    chaos.install()
    report = engine.run()
    alerts = engine.res.all_alerts() if engine.res is not None else []
    return ChaosRun(
        scenario=plan.name,
        report=report,
        scorecard=build_scorecard(report, collapse_threshold),
        alerts=alerts,
        events=list(chaos.events))


def run_campaign(config: ServeConfig, plans: List[FleetPlan], *,
                 chaos_seed: int = 1,
                 collapse_threshold: float = 0.5) -> ChaosCampaignResult:
    """Run every plan as its own seeded simulation of *config*."""
    return ChaosCampaignResult(runs=[
        run_scenario(config, plan, chaos_seed=chaos_seed,
                     collapse_threshold=collapse_threshold)
        for plan in plans])


def pinned_campaign_plans() -> List[FleetPlan]:
    """The default campaign: one plan per fleet-scope failure family."""
    return [
        FleetPlan.empty(),
        FleetPlan.crash_storm(nodes=3, start_s=0.1, window_s=0.3,
                              recover_s=0.5),
        FleetPlan.fleet_brownout(droop=0.6, start_s=0.2, window_s=0.8),
        FleetPlan.flapping(nodes=1, period_s=0.15, start_s=0.1,
                           window_s=1.0),
        FleetPlan.fleet_combined(
            "surge+brownout",
            FleetPlan.arrival_surge(factor=4.0, start_s=0.2, window_s=0.3),
            FleetPlan.fleet_brownout(droop=0.7, start_s=0.2, window_s=0.5)),
    ]


def pinned_campaign_config(
        nodes: int = 4, seed: int = 1,
        resilience: Optional[ResilienceConfig] = None) -> ServeConfig:
    """The pinned serving config the default campaign runs against.

    The resilience watermarks are sized so the pinned scenarios ride out
    their outages on requeues, recovery, and host-assist — every request
    is eventually served (the crash storm still exhausts its latency
    error budget, which is the point: the SLO machinery reports the
    damage that availability alone hides).  Shedding under these
    watermarks indicates genuine collapse, not a twitchy ladder.
    """
    book = AnalyticServiceBook()
    return ServeConfig(
        workload=PoissonWorkload(rate=400.0, requests=240, seed=seed),
        nodes=nodes,
        scheduler=SchedulerConfig(
            policy=Policy.POWER_CAP,
            power_budget_w=default_power_budget(book, nodes),
            max_batch=4),
        seed=seed,
        book=book,
        resilience=resilience if resilience is not None
        else ResilienceConfig(queue_high=96, queue_low=12,
                              overload_patience=4, retry_budget=32))
