"""The serving engine: workload -> scheduler -> fleet, as one DES run.

Three kinds of processes share one :class:`~repro.sim.Simulator`:

* the **arrival** process replays the workload's request stream into the
  scheduler (closed-loop clients additionally re-issue after each
  completion);
* the **dispatcher** drains the scheduler queue onto available nodes —
  power-gated and tier-selected under a budget — and blocks on an
  :class:`~repro.sim.AnyOf` of the arrival and completion signals when
  there is nothing to do;
* each **node** (plus the host-fallback backend) is its own process in
  :mod:`repro.serve.fleet`.

A batch on a node that dies mid-ladder is requeued at the head of the
queue (and re-served elsewhere, ultimately by the host when every
accelerator is gone) — no request is ever silently lost; the engine
asserts the conservation law ``arrivals == completed + dropped`` at
drain.

With ``ServeConfig.resilience`` set, the fleet-scope robustness
machinery of :mod:`repro.serve.resilience` is armed: circuit breakers
and health ejection filter the backend pick, a retry budget caps
requeue amplification (exhaustion sheds as ``retry-budget`` drops),
overdue batches are hedged onto a second node, the overload ladder
degrades fast → eco → host-assist → shed, and every completion/drop
feeds the per-kernel SLO error budgets.  With ``resilience=None`` none
of these paths is ever entered — plain runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.faults.plan import FaultPlan
from repro.faults.resilient import RetryPolicy
from repro.serve.archetype import FleetSpec
from repro.serve.fleet import (
    AnalyticServiceBook,
    Fleet,
    Node,
    ServiceBook,
    ServiceOutcome,
)
from repro.serve.metrics import RequestRecord, ServeReport
from repro.serve.resilience import ResilienceConfig, ResilienceRuntime
from repro.serve.scheduler import Scheduler, SchedulerConfig, policy_name
from repro.serve.workload import Request, Workload
from repro.sim.engine import Simulator, Timeout


@dataclass
class ServeConfig:
    """One serving run, fully specified."""

    workload: Workload
    nodes: int = 4
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Per-node fault plans, cycled across the fleet (None = fault-free).
    fault_plans: Optional[List[FaultPlan]] = None
    seed: int = 1
    retry: Optional[RetryPolicy] = None
    #: Pricing backend; None builds the calibrated analytic book.
    book: Optional[ServiceBook] = None
    #: Fleet robustness machinery; None = plain engine (bit-identical
    #: to the pre-resilience behavior).
    resilience: Optional[ResilienceConfig] = None
    #: Heterogeneous fleet composition; None = homogeneous fleet of
    #: ``nodes`` default-archetype nodes (bit-identical to the
    #: pre-heterogeneity behavior).  When set, ``nodes`` is derived from
    #: the spec and the spec's routing table steers dispatch.
    fleet: Optional[FleetSpec] = None

    def __post_init__(self) -> None:
        if self.fleet is not None:
            self.nodes = self.fleet.nodes
        if self.nodes < 1:
            raise ConfigurationError(f"need >= 1 nodes, got {self.nodes}")


@dataclass
class _Flight:
    """Resilience-path bookkeeping of one dispatched batch (+ hedge).

    Keyed in the engine by the identity of each dispatched batch list
    (the hedge copy is a distinct list of the same requests), so the
    pair resolves exactly once no matter which copy finishes first.
    """

    batch: List[Request]
    node_name: str
    tier: str
    expected_end: float
    outstanding: int = 1
    resolved: bool = False
    hedge_batch: Optional[List[Request]] = None


class ServeEngine:
    """Runs one :class:`ServeConfig` to completion."""

    def __init__(self, config: ServeConfig):
        self.config = config
        groups = None
        self.routing: Dict[str, str] = {}
        if config.fleet is not None:
            books = config.fleet.books()
            groups = [(archetype.name, books[archetype.name], count)
                      for archetype, count in config.fleet.groups]
            self.routing = dict(config.fleet.routing)
            # Host fallback and scheduler estimates price through the
            # first group's book unless the caller pinned one.
            default_book = groups[0][1]
        else:
            default_book = None
        self.book = config.book if config.book is not None \
            else (default_book if default_book is not None
                  else AnalyticServiceBook())
        self.simulator = Simulator()
        self.scheduler = Scheduler(config.scheduler, self.book)
        self.fleet = Fleet(
            self.simulator, self.book, config.nodes,
            plans=config.fault_plans, seed=config.seed,
            retry=config.retry, on_outcome=self._on_outcome,
            groups=groups)
        self.res = ResilienceRuntime(config.resilience) \
            if config.resilience is not None else None
        self.records: List[RequestRecord] = []
        self.submitted = 0
        self.in_flight = 0
        self.drain_hooks: List = []
        self._flights: Dict[int, _Flight] = {}
        self._open_flights: List[_Flight] = []
        self._requeues: Dict[int, int] = {}
        self._signals: Dict[str, object] = {}
        self._arrivals_open = True

    # -- public ------------------------------------------------------------------

    def run(self) -> ServeReport:
        """Execute the run and fold it into a report."""
        workload = self.config.workload
        stream = workload.arrivals(self._estimator)
        self._total_expected = (workload.total_requests
                                if workload.closed_loop else len(stream))
        if self._total_expected == 0:
            raise ConfigurationError(
                f"workload produced no requests: {workload.describe()}")
        self.fleet.start()
        if self.res is not None:
            self.res.start(self)
            self.drain_hooks.append(
                lambda: self.res.stop(self.simulator))
        self.simulator.add_process(self._arrival_process(stream),
                                   name="serve.arrivals")
        self.simulator.add_process(self._dispatcher(),
                                   name="serve.dispatcher")
        self.simulator.run_all()
        # Conservation: nothing pending, nothing silently lost.
        completed = len(self.records)
        dropped = len(self.scheduler.dropped)
        if self.scheduler.queue or self.in_flight:
            raise SimulationError(
                f"serve drain left {len(self.scheduler.queue)} queued and "
                f"{self.in_flight} in flight")
        if self.submitted != completed + dropped:
            raise SimulationError(
                f"request conservation violated: {self.submitted} arrived "
                f"!= {completed} completed + {dropped} dropped")
        return self._report()

    def kick(self) -> None:
        """External wake of the dispatcher.

        Chaos events and health probes change backend availability
        without an arrival or a completion; this re-evaluates dispatch.
        """
        self._fire("arrival")

    # -- arrivals ----------------------------------------------------------------

    def _estimator(self, kernel: str, iterations: int) -> float:
        probe = Request(request_id=-1, kernel=kernel, arrival_s=0.0,
                        iterations=iterations)
        return self.book.estimate(probe)

    def _arrival_process(self, stream: List[Request]):
        for request in stream:
            delay = request.arrival_s - self.simulator.now
            if delay > 0:
                yield Timeout(delay)
            self._submit(request)
        self._arrivals_open = False
        # Wake the dispatcher so an already-drained run can finish.
        self._fire("arrival")

    def _reissue_process(self, request: Request):
        delay = request.arrival_s - self.simulator.now
        if delay > 0:
            yield Timeout(delay)
        self._submit(request)

    def _submit(self, request: Request) -> None:
        self.submitted += 1
        admitted = self.scheduler.submit(request)
        if admitted:
            self._fire("arrival")
        else:
            # A closed-loop client whose request was turned away thinks
            # again — otherwise its chain (and the drain) would stall.
            self._issue_next(request)

    def _issue_next(self, request: Request) -> None:
        workload = self.config.workload
        if not workload.closed_loop or request.client is None:
            return
        follow = workload.next_request(
            request.client, self.simulator.now, self._estimator)
        if follow is not None:
            if self.res is not None and self.res.overload.level > 0:
                # Admission backpressure: under overload, closed-loop
                # clients are slowed down at the source.
                follow.arrival_s += (self.res.config.backpressure_s
                                     * self.res.overload.level)
                self.res.backpressure_events += 1
            self.simulator.add_process(
                self._reissue_process(follow),
                name=f"serve.client{request.client}")

    # -- dispatch ----------------------------------------------------------------

    def _signal(self, name: str):
        event = self._signals.get(name)
        if event is None or event.triggered:
            event = self.simulator.event(f"serve.{name}")
            self._signals[name] = event
        return event

    def _fire(self, name: str) -> None:
        event = self._signals.get(name)
        if event is not None and not event.triggered:
            event.trigger()

    def _done(self) -> bool:
        return (not self._arrivals_open
                and self.submitted >= self._total_expected
                and not self.scheduler.queue
                and self.in_flight == 0)

    def _dispatcher(self):
        while True:
            self._dispatch_ready()
            if self._done():
                for hook in self.drain_hooks:
                    # Cancel speculative timers (health probes, pending
                    # chaos events) so they neither stall the drain nor
                    # inflate the reported duration.
                    hook()
                self.fleet.shutdown()
                return
            yield self.simulator.any_of(
                [self._signal("arrival"), self._signal("complete")],
                name="serve.wake")

    def _route(self, candidates: List[Node],
               kernel: Optional[str]) -> Node:
        """Prefer the archetype the routing table names for *kernel*.

        Falls back to the first candidate (exactly the pre-routing
        pick) when there is no table, no entry, or no available node of
        the routed archetype — routing is a preference, never a stall.
        """
        if kernel is not None and self.routing:
            target = self.routing.get(kernel)
            if target is not None:
                for node in candidates:
                    if node.archetype == target:
                        return node
        return candidates[0]

    def _usable_nodes(self) -> List[Node]:
        """Dispatchable backends in fleet order (host only as fallback)."""
        if self.res is None:
            available = self.fleet.available_nodes()
            if available:
                return available
            if not self.fleet.alive_nodes() and self.fleet.host.available:
                return [self.fleet.host]
            return []
        now = self.simulator.now
        usable = [node for node in self.fleet.available_nodes()
                  if self.res.node_usable(node.name, now)]
        if usable:
            return usable
        host = self.fleet.host
        if host.available:
            any_usable_alive = any(
                self.res.node_usable(node.name, now)
                for node in self.fleet.alive_nodes())
            # Host fallback widens under resilience: not only when the
            # whole fleet is gone, but when every survivor is ejected or
            # breakered, and eagerly at the host-assist overload rung.
            if not any_usable_alive or self.res.overload.level >= 2:
                return [host]
        return []

    def _pick_backend(self, kernel: Optional[str] = None) -> Optional[Node]:
        candidates = self._usable_nodes()
        if not candidates:
            return None
        return self._route(candidates, kernel)

    def _tier_for(self, node: Node, batch: List[Request]) -> Optional[str]:
        if node.is_host:
            return "host"
        # Priced through the serving node's own book: on heterogeneous
        # fleets each archetype carries its own operating points (on a
        # homogeneous fleet node.book IS self.book).
        book = node.book
        kernel = batch[0].kernel
        fast_w = book.active_power(kernel, "fast")
        eco_w = book.active_power(kernel, "eco") \
            if "eco" in book.tiers() else fast_w
        tier = self.scheduler.tier_for(
            self.fleet.tracker.current_w, book.idle_power,
            fast_w, eco_w)
        if (tier == "fast" and self.res is not None
                and self.res.overload.level >= 1
                and "eco" in book.tiers()):
            # Brownout ladder rung 1+: shed watts before shedding work.
            tier = "eco"
            self.res.eco_degrades += 1
        return tier

    def _dispatch_ready(self) -> None:
        if self.res is not None:
            self._overload_tick()
        if self.routing:
            self._dispatch_routed()
        else:
            self._dispatch_pooled()
        if self.res is not None and self.res.config.hedging:
            self._maybe_hedge()

    def _dispatch_pooled(self) -> None:
        """Pooled dispatch: any free node takes the next batch."""
        while self.scheduler.queue:
            node = self._pick_backend()
            if node is None:
                break
            batch, late = self.scheduler.take_batch(self.simulator.now)
            for request in late:
                # Late drops end a closed-loop chain unless the client
                # gets to think again.
                self._issue_next(request)
            if not batch:
                continue    # the whole queue was past-deadline drops
            tier = self._tier_for(node, batch)
            if tier is None:
                self._defer(batch)
                break
            self._launch(node, batch, tier)

    def _dispatch_routed(self) -> None:
        """Strict-routing dispatch for heterogeneous fleets.

        Each free node only takes kernels routed to its archetype, so
        a spilled batch can never evict another class's resident
        binary — the partitioned fleet the capacity planner prices is
        the fleet the DES runs.  Two escape hatches keep strictness
        from stalling the queue: kernels without a routing entry run
        anywhere, and a kernel whose routed archetype has no node left
        alive spills to any survivor (serving it dirty beats never
        serving it).  The host fallback has no resident binary to
        thrash and takes whatever the policy orders first.
        """
        while self.scheduler.queue:
            candidates = self._usable_nodes()
            if not candidates:
                break
            alive = {node.archetype for node in self.fleet.alive_nodes()}
            progressed = False
            for node in candidates:
                allow = None
                if not node.is_host:
                    def allow(request, _arch=node.archetype,
                              _alive=alive):
                        target = self.routing.get(request.kernel)
                        return (target is None or target == _arch
                                or target not in _alive)
                batch, late = self.scheduler.take_batch(
                    self.simulator.now, allow=allow)
                for request in late:
                    self._issue_next(request)
                if not batch:
                    continue    # nothing this node may serve
                tier = self._tier_for(node, batch)
                if tier is None:
                    self._defer(batch)
                    return
                self._launch(node, batch, tier)
                progressed = True
                break
            if not progressed:
                break

    def _defer(self, batch: List[Request]) -> None:
        """Requeue an over-budget batch (callers stop the round).

        Over budget even throttled: the batch waits until a completion
        lowers the fleet draw.  The power gate is fleet-wide, so no
        other candidate fits either.
        """
        self.scheduler.requeue(batch)
        if self.res is not None:
            change = self.res.overload.note_deferral()
            if change is not None:
                self.res.alert(
                    self.simulator.now, "warn", "overload",
                    self.res.overload.level_name,
                    f"power-gate pressure -> level {change}")

    def _launch(self, node: Node, batch: List[Request], tier: str) -> None:
        self.in_flight += len(batch)
        if self.res is not None:
            self._flights[id(batch)] = flight = _Flight(
                batch=batch, node_name=node.name, tier=tier,
                expected_end=self._expected_end(node, batch, tier))
            self._open_flights.append(flight)
            if not node.is_host:
                self.res.breaker(node.name).note_dispatch()
        node.assign(batch, tier)

    def _expected_end(self, node: Node, batch: List[Request],
                      tier: str) -> float:
        """When this dispatch should finish, barring faults.

        Mirrors the node's happy path (cold upload if the kernel is not
        resident, then the batched warm service at the node's current
        droop), so a healthy fleet never trips the hedging margin.
        """
        now = self.simulator.now
        if node.is_host:
            return now + sum(self.book.host_time(request)
                             for request in batch)
        cold = 0.0
        if node.resident != batch[0].kernel:
            cold, _ = node.book.cold_cost(batch[0].kernel, tier)
        warm, _ = node.book.batch_service(batch, tier, node.droop)
        return now + cold + warm

    def _overload_tick(self) -> None:
        res = self.res
        now = self.simulator.now
        change = res.overload.observe(len(self.scheduler.queue))
        if change is not None:
            res.alert(now, "info", "overload", res.overload.level_name,
                      f"queue depth {len(self.scheduler.queue)} -> "
                      f"level {change}")
        if res.overload.level >= 3:
            victims = self.scheduler.shed(res.config.queue_low)
            for request in victims:
                res.sheds += 1
                res.slo.record_drop(request.kernel, now)
                self._requeues.pop(request.request_id, None)
                self._issue_next(request)
            if victims:
                res.alert(now, "warn", "overload", "shed",
                          f"shed {len(victims)} queued requests")

    def _maybe_hedge(self) -> None:
        res = self.res
        now = self.simulator.now
        self._open_flights = [flight for flight in self._open_flights
                              if flight.outstanding > 0]
        overdue = [flight for flight in self._open_flights
                   if not flight.resolved and flight.hedge_batch is None
                   and now > flight.expected_end + res.config.hedge_margin_s]
        if not overdue:
            return
        # One hedge per wake, oldest promise first: hedging is a relief
        # valve, not a second dispatcher.
        flight = min(overdue, key=lambda f: (f.expected_end,
                                             f.batch[0].request_id))
        node = self._pick_backend(kernel=flight.batch[0].kernel)
        if node is None or node.name == flight.node_name:
            return
        hedge_batch = list(flight.batch)
        tier = self._tier_for(node, hedge_batch)
        if tier is None:
            return
        flight.hedge_batch = hedge_batch
        flight.outstanding += 1
        self._flights[id(hedge_batch)] = flight
        res.hedges += 1
        # The pair counts once against in_flight; only the node is told.
        if not node.is_host:
            res.breaker(node.name).note_dispatch()
        node.assign(hedge_batch, tier)

    # -- completions -------------------------------------------------------------

    def _on_outcome(self, outcome: ServiceOutcome) -> None:
        if self.res is not None:
            self._on_outcome_resilient(outcome)
            return
        self.in_flight -= len(outcome.batch)
        if outcome.died:
            # The node took its batch down with it: back to the head of
            # the queue, to be re-served elsewhere.
            for request in outcome.batch:
                self._requeues[request.request_id] = \
                    self._requeues.get(request.request_id, 0) + 1
            self.scheduler.requeue(outcome.batch)
            self._fire("complete")
            return
        share = 1.0 / len(outcome.batch)
        for index, request in enumerate(outcome.batch):
            self.records.append(RequestRecord(
                request=request,
                start_s=outcome.start_s,
                end_s=outcome.end_s,
                node=outcome.node.name,
                tier=outcome.tier,
                requeues=self._requeues.pop(request.request_id, 0),
                # Ladder stats land on the batch lead so report-level
                # sums stay exact.
                fault_attempts=outcome.fault_attempts if index == 0 else 0,
                wasted_time_s=outcome.wasted_time_s if index == 0 else 0.0,
                wasted_energy_j=(outcome.wasted_energy_j
                                 if index == 0 else 0.0),
                energy_j=outcome.energy_j * share))
            self._issue_next(request)
        self._fire("complete")

    def _on_outcome_resilient(self, outcome: ServiceOutcome) -> None:
        res = self.res
        now = self.simulator.now
        flight = self._flights.pop(id(outcome.batch), None)
        if flight is not None:
            flight.outstanding -= 1
        node = outcome.node
        if not node.is_host:
            if outcome.died:
                res.record_failure(node.name, now)
            else:
                res.breaker(node.name).record_success()
        if outcome.died:
            if flight is not None and flight.resolved:
                # The pair already completed on the other copy; this
                # loser's spend is pure hedging waste.
                self._note_hedge_waste(outcome)
            elif flight is not None and flight.outstanding > 0:
                # The hedge copy is still running and becomes the retry
                # — no requeue, no extra in-flight accounting.
                res.hedge_covered_failures += 1
            else:
                self.in_flight -= len(outcome.batch)
                if res.retry.allow(len(outcome.batch), len(self.records)):
                    for request in outcome.batch:
                        self._requeues[request.request_id] = \
                            self._requeues.get(request.request_id, 0) + 1
                    self.scheduler.requeue(outcome.batch)
                else:
                    # Retry budget exhausted: shedding beats a requeue
                    # storm amplifying the outage.
                    res.alert(now, "warn", "overload", "retry-budget",
                              f"budget exhausted; shedding "
                              f"{len(outcome.batch)} requests")
                    for request in outcome.batch:
                        self.scheduler.dropped.append(
                            (request, "retry-budget"))
                        res.slo.record_drop(request.kernel, now)
                        self._requeues.pop(request.request_id, None)
                        self._issue_next(request)
            self._fire("complete")
            return
        if flight is not None and flight.resolved:
            # The slower hedge copy of an already-recorded pair.
            self._note_hedge_waste(outcome)
            self._fire("complete")
            return
        if flight is not None:
            flight.resolved = True
            if flight.hedge_batch is not None \
                    and outcome.batch is flight.hedge_batch:
                res.hedge_wins += 1
        self.in_flight -= len(outcome.batch)
        share = 1.0 / len(outcome.batch)
        for index, request in enumerate(outcome.batch):
            res.slo.record_completion(
                request.kernel, outcome.end_s - request.arrival_s,
                self.book.estimate(request), now)
            res.completed += 1
            self.records.append(RequestRecord(
                request=request,
                start_s=outcome.start_s,
                end_s=outcome.end_s,
                node=outcome.node.name,
                tier=outcome.tier,
                requeues=self._requeues.pop(request.request_id, 0),
                fault_attempts=outcome.fault_attempts if index == 0 else 0,
                wasted_time_s=outcome.wasted_time_s if index == 0 else 0.0,
                wasted_energy_j=(outcome.wasted_energy_j
                                 if index == 0 else 0.0),
                energy_j=outcome.energy_j * share))
            self._issue_next(request)
        self._fire("complete")

    def _note_hedge_waste(self, outcome: ServiceOutcome) -> None:
        self.res.hedge_waste_time_s += outcome.end_s - outcome.start_s
        self.res.hedge_waste_energy_j += outcome.energy_j

    # -- reporting ---------------------------------------------------------------

    def _report(self) -> ServeReport:
        duration = self.simulator.now
        nodes = list(self.fleet.nodes) + [self.fleet.host]
        tracker = self.fleet.tracker
        report = ServeReport(
            policy=policy_name(self.config.scheduler.policy),
            workload=self.config.workload.describe(),
            nodes=self.config.nodes,
            duration_s=duration,
            records=sorted(self.records,
                           key=lambda r: (r.end_s, r.request.request_id)),
            dropped=list(self.scheduler.dropped),
            power_timeline=list(tracker.timeline),
            power_peak_w=tracker.peak_w,
            power_budget_w=self.config.scheduler.power_budget_w,
            node_busy_s={node.name: node.busy_time for node in nodes},
            node_requests={node.name: node.served_requests
                           for node in nodes},
            node_batches={node.name: node.served_batches for node in nodes},
            node_energy_j={node.name: node.energy_j for node in nodes},
            dead_nodes=self.fleet.dead_nodes,
            reboots=sum(node.reboots for node in self.fleet.nodes),
            fleet_energy_j=tracker.energy(duration),
            resilience=self.res.summary() if self.res is not None else None,
            node_archetypes=(
                {node.name: node.archetype for node in self.fleet.nodes}
                if self.config.fleet is not None else None))
        report.emit_telemetry()
        return report


def default_power_budget(book: ServiceBook, nodes: int,
                         active_fraction: float = 0.75) -> float:
    """A budget that keeps roughly *active_fraction* of the fleet hot.

    Sized from the book's calibrated draws: host + every node idling +
    ``ceil(active_fraction * nodes)`` at the hottest fast-tier operating
    point, plus one part in a thousand of slack so the boundary dispatch
    is not flapped by float noise.
    """
    hot = max(book.active_power(kernel, "fast")
              for kernel in ("matmul", "svm (RBF)", "cnn"))
    actives = max(1, -(-int(active_fraction * 1000) * nodes // 1000))
    actives = min(actives, nodes)
    return (book.host_power + nodes * book.idle_power
            + actives * (hot - book.idle_power)) * 1.001
