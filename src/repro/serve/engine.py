"""The serving engine: workload -> scheduler -> fleet, as one DES run.

Three kinds of processes share one :class:`~repro.sim.Simulator`:

* the **arrival** process replays the workload's request stream into the
  scheduler (closed-loop clients additionally re-issue after each
  completion);
* the **dispatcher** drains the scheduler queue onto available nodes —
  power-gated and tier-selected under a budget — and blocks on an
  :class:`~repro.sim.AnyOf` of the arrival and completion signals when
  there is nothing to do;
* each **node** (plus the host-fallback backend) is its own process in
  :mod:`repro.serve.fleet`.

A batch on a node that dies mid-ladder is requeued at the head of the
queue (and re-served elsewhere, ultimately by the host when every
accelerator is gone) — no request is ever silently lost; the engine
asserts the conservation law ``arrivals == completed + dropped`` at
drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.faults.plan import FaultPlan
from repro.faults.resilient import RetryPolicy
from repro.serve.fleet import (
    AnalyticServiceBook,
    Fleet,
    Node,
    ServiceBook,
    ServiceOutcome,
)
from repro.serve.metrics import RequestRecord, ServeReport
from repro.serve.scheduler import Scheduler, SchedulerConfig, policy_name
from repro.serve.workload import Request, Workload
from repro.sim.engine import Simulator, Timeout


@dataclass
class ServeConfig:
    """One serving run, fully specified."""

    workload: Workload
    nodes: int = 4
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Per-node fault plans, cycled across the fleet (None = fault-free).
    fault_plans: Optional[List[FaultPlan]] = None
    seed: int = 1
    retry: Optional[RetryPolicy] = None
    #: Pricing backend; None builds the calibrated analytic book.
    book: Optional[ServiceBook] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"need >= 1 nodes, got {self.nodes}")


class ServeEngine:
    """Runs one :class:`ServeConfig` to completion."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.book = config.book if config.book is not None \
            else AnalyticServiceBook()
        self.simulator = Simulator()
        self.scheduler = Scheduler(config.scheduler, self.book)
        self.fleet = Fleet(
            self.simulator, self.book, config.nodes,
            plans=config.fault_plans, seed=config.seed,
            retry=config.retry, on_outcome=self._on_outcome)
        self.records: List[RequestRecord] = []
        self.submitted = 0
        self.in_flight = 0
        self._requeues: Dict[int, int] = {}
        self._signals: Dict[str, object] = {}
        self._arrivals_open = True

    # -- public ------------------------------------------------------------------

    def run(self) -> ServeReport:
        """Execute the run and fold it into a report."""
        workload = self.config.workload
        stream = workload.arrivals(self._estimator)
        self._total_expected = (workload.total_requests
                                if workload.closed_loop else len(stream))
        if self._total_expected == 0:
            raise ConfigurationError(
                f"workload produced no requests: {workload.describe()}")
        self.fleet.start()
        self.simulator.add_process(self._arrival_process(stream),
                                   name="serve.arrivals")
        self.simulator.add_process(self._dispatcher(),
                                   name="serve.dispatcher")
        self.simulator.run_all()
        # Conservation: nothing pending, nothing silently lost.
        completed = len(self.records)
        dropped = len(self.scheduler.dropped)
        if self.scheduler.queue or self.in_flight:
            raise SimulationError(
                f"serve drain left {len(self.scheduler.queue)} queued and "
                f"{self.in_flight} in flight")
        if self.submitted != completed + dropped:
            raise SimulationError(
                f"request conservation violated: {self.submitted} arrived "
                f"!= {completed} completed + {dropped} dropped")
        return self._report()

    # -- arrivals ----------------------------------------------------------------

    def _estimator(self, kernel: str, iterations: int) -> float:
        probe = Request(request_id=-1, kernel=kernel, arrival_s=0.0,
                        iterations=iterations)
        return self.book.estimate(probe)

    def _arrival_process(self, stream: List[Request]):
        for request in stream:
            delay = request.arrival_s - self.simulator.now
            if delay > 0:
                yield Timeout(delay)
            self._submit(request)
        self._arrivals_open = False
        # Wake the dispatcher so an already-drained run can finish.
        self._fire("arrival")

    def _reissue_process(self, request: Request):
        delay = request.arrival_s - self.simulator.now
        if delay > 0:
            yield Timeout(delay)
        self._submit(request)

    def _submit(self, request: Request) -> None:
        self.submitted += 1
        admitted = self.scheduler.submit(request)
        if admitted:
            self._fire("arrival")
        else:
            # A closed-loop client whose request was turned away thinks
            # again — otherwise its chain (and the drain) would stall.
            self._issue_next(request)

    def _issue_next(self, request: Request) -> None:
        workload = self.config.workload
        if not workload.closed_loop or request.client is None:
            return
        follow = workload.next_request(
            request.client, self.simulator.now, self._estimator)
        if follow is not None:
            self.simulator.add_process(
                self._reissue_process(follow),
                name=f"serve.client{request.client}")

    # -- dispatch ----------------------------------------------------------------

    def _signal(self, name: str):
        event = self._signals.get(name)
        if event is None or event.triggered:
            event = self.simulator.event(f"serve.{name}")
            self._signals[name] = event
        return event

    def _fire(self, name: str) -> None:
        event = self._signals.get(name)
        if event is not None and not event.triggered:
            event.trigger()

    def _done(self) -> bool:
        return (not self._arrivals_open
                and self.submitted >= self._total_expected
                and not self.scheduler.queue
                and self.in_flight == 0)

    def _dispatcher(self):
        while True:
            self._dispatch_ready()
            if self._done():
                self.fleet.shutdown()
                return
            yield self.simulator.any_of(
                [self._signal("arrival"), self._signal("complete")],
                name="serve.wake")

    def _pick_backend(self) -> Optional[Node]:
        available = self.fleet.available_nodes()
        if available:
            return available[0]
        if not self.fleet.alive_nodes() and self.fleet.host.available:
            return self.fleet.host
        return None

    def _dispatch_ready(self) -> None:
        while self.scheduler.queue:
            node = self._pick_backend()
            if node is None:
                return
            batch, _late = self.scheduler.take_batch(self.simulator.now)
            if not batch:
                continue    # the whole queue was past-deadline drops
            if node.is_host:
                tier = "host"
            else:
                kernel = batch[0].kernel
                fast_w = self.book.active_power(kernel, "fast")
                eco_w = self.book.active_power(kernel, "eco") \
                    if "eco" in self.book.tiers() else fast_w
                tier = self.scheduler.tier_for(
                    self.fleet.tracker.current_w, self.book.idle_power,
                    fast_w, eco_w)
                if tier is None:
                    # Over budget even throttled: defer until a
                    # completion lowers the fleet draw.
                    self.scheduler.requeue(batch)
                    return
            self.in_flight += len(batch)
            node.assign(batch, tier)

    # -- completions -------------------------------------------------------------

    def _on_outcome(self, outcome: ServiceOutcome) -> None:
        self.in_flight -= len(outcome.batch)
        if outcome.died:
            # The node took its batch down with it: back to the head of
            # the queue, to be re-served elsewhere.
            for request in outcome.batch:
                self._requeues[request.request_id] = \
                    self._requeues.get(request.request_id, 0) + 1
            self.scheduler.requeue(outcome.batch)
            self._fire("complete")
            return
        share = 1.0 / len(outcome.batch)
        for index, request in enumerate(outcome.batch):
            self.records.append(RequestRecord(
                request=request,
                start_s=outcome.start_s,
                end_s=outcome.end_s,
                node=outcome.node.name,
                tier=outcome.tier,
                requeues=self._requeues.pop(request.request_id, 0),
                # Ladder stats land on the batch lead so report-level
                # sums stay exact.
                fault_attempts=outcome.fault_attempts if index == 0 else 0,
                wasted_time_s=outcome.wasted_time_s if index == 0 else 0.0,
                wasted_energy_j=(outcome.wasted_energy_j
                                 if index == 0 else 0.0),
                energy_j=outcome.energy_j * share))
            self._issue_next(request)
        self._fire("complete")

    # -- reporting ---------------------------------------------------------------

    def _report(self) -> ServeReport:
        duration = self.simulator.now
        nodes = list(self.fleet.nodes) + [self.fleet.host]
        tracker = self.fleet.tracker
        report = ServeReport(
            policy=policy_name(self.config.scheduler.policy),
            workload=self.config.workload.describe(),
            nodes=self.config.nodes,
            duration_s=duration,
            records=sorted(self.records,
                           key=lambda r: (r.end_s, r.request.request_id)),
            dropped=list(self.scheduler.dropped),
            power_timeline=list(tracker.timeline),
            power_peak_w=tracker.peak_w,
            power_budget_w=self.config.scheduler.power_budget_w,
            node_busy_s={node.name: node.busy_time for node in nodes},
            node_requests={node.name: node.served_requests
                           for node in nodes},
            node_batches={node.name: node.served_batches for node in nodes},
            node_energy_j={node.name: node.energy_j for node in nodes},
            dead_nodes=self.fleet.dead_nodes,
            reboots=sum(node.reboots for node in self.fleet.nodes),
            fleet_energy_j=tracker.energy(duration))
        report.emit_telemetry()
        return report


def default_power_budget(book: ServiceBook, nodes: int,
                         active_fraction: float = 0.75) -> float:
    """A budget that keeps roughly *active_fraction* of the fleet hot.

    Sized from the book's calibrated draws: host + every node idling +
    ``ceil(active_fraction * nodes)`` at the hottest fast-tier operating
    point, plus one part in a thousand of slack so the boundary dispatch
    is not flapped by float noise.
    """
    hot = max(book.active_power(kernel, "fast")
              for kernel in ("matmul", "svm (RBF)", "cnn"))
    actives = max(1, -(-int(active_fraction * 1000) * nodes // 1000))
    actives = min(actives, nodes)
    return (book.host_power + nodes * book.idle_power
            + actives * (hot - book.idle_power)) * 1.001
