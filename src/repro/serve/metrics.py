"""Queueing metrics of a serving run.

Per-request :class:`RequestRecord` rows are folded into a
:class:`ServeReport`: latency percentiles (nearest-rank, so reruns are
bit-identical — no interpolation float noise), throughput, per-node
utilization, energy per request, deadline-miss / drop / host-fallback
rates, and the fleet power timeline against the budget.

When the global telemetry hub (:mod:`repro.obs`) is enabled, every
request also becomes a span on a per-node lane (queue wait as a separate
``wait`` span) and the headline rates become counters, so a serving run
exports to the same Perfetto trace as every other subsystem.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import get_telemetry
from repro.serve.workload import Request


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of *values* (q in [0, 100])."""
    if not values:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile out of range: {q}")
    ordered = sorted(values)
    # ceil(q/100 * N) in exact integer arithmetic: no float noise.
    scaled = int(q * 100) * len(ordered)
    rank = -(-scaled // 10000)
    return ordered[max(1, min(rank, len(ordered))) - 1]


@dataclass
class RequestRecord:
    """One served request's timeline."""

    request: Request
    start_s: float               #: dispatch (service start) time
    end_s: float                 #: completion time
    node: str                    #: serving backend name
    tier: str                    #: service tier ("fast"/"eco"/"host")
    requeues: int = 0            #: times bounced off a dying node
    fault_attempts: int = 0      #: failed attempts on the serving node
    wasted_time_s: float = 0.0   #: recovery time attributed to this request
    wasted_energy_j: float = 0.0
    energy_j: float = 0.0        #: total energy attributed to this request

    @property
    def wait_s(self) -> float:
        """Queue wait: arrival to service start."""
        return self.start_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end: arrival to completion."""
        return self.end_s - self.request.arrival_s

    @property
    def missed_deadline(self) -> bool:
        """Whether the request completed after its deadline."""
        return (self.request.deadline_s is not None
                and self.end_s > self.request.deadline_s)


@dataclass
class ServeReport:
    """The folded statistics of one serving run."""

    policy: str
    workload: str
    nodes: int
    duration_s: float
    records: List[RequestRecord]
    dropped: List[Tuple[Request, str]]
    power_timeline: List[Tuple[float, float]] = field(default_factory=list)
    power_peak_w: float = 0.0
    power_budget_w: Optional[float] = None
    node_busy_s: Dict[str, float] = field(default_factory=dict)
    node_requests: Dict[str, int] = field(default_factory=dict)
    node_batches: Dict[str, int] = field(default_factory=dict)
    node_energy_j: Dict[str, float] = field(default_factory=dict)
    dead_nodes: int = 0
    reboots: int = 0
    fleet_energy_j: float = 0.0
    #: Resilience section (breakers / retry budget / hedging / overload /
    #: SLO burn + alerts) — present only when the engine ran with a
    #: ResilienceConfig; ``None`` keeps plain reports byte-identical.
    resilience: Optional[Dict[str, object]] = None
    #: node name -> archetype name — present only on heterogeneous
    #: fleets (a FleetSpec run); ``None`` keeps plain reports identical.
    node_archetypes: Optional[Dict[str, str]] = None

    # -- derived ----------------------------------------------------------------

    @property
    def completed(self) -> int:
        """Requests served to completion."""
        return len(self.records)

    @property
    def arrivals(self) -> int:
        """Requests that entered the system."""
        return self.completed + len(self.dropped)

    @property
    def throughput(self) -> float:
        """Completions per second of simulated time."""
        return self.completed / self.duration_s if self.duration_s > 0 \
            else 0.0

    @property
    def deadline_misses(self) -> int:
        """Completed requests that finished past their deadline."""
        return sum(1 for record in self.records if record.missed_deadline)

    @property
    def miss_rate(self) -> float:
        """Deadline misses plus drops, over all arrivals."""
        if not self.arrivals:
            return 0.0
        return (self.deadline_misses + len(self.dropped)) / self.arrivals

    @property
    def drop_rate(self) -> float:
        """Dropped requests over all arrivals."""
        return len(self.dropped) / self.arrivals if self.arrivals else 0.0

    @property
    def fallbacks(self) -> int:
        """Requests served by the host backend."""
        return sum(1 for record in self.records if record.tier == "host")

    @property
    def requeues(self) -> int:
        """Requests bounced off a dying node (then served elsewhere)."""
        return sum(record.requeues for record in self.records)

    @property
    def energy_per_request_j(self) -> float:
        """Attributed service energy per completed request."""
        if not self.records:
            return 0.0
        return sum(record.energy_j for record in self.records) \
            / self.completed

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 end-to-end latency (seconds)."""
        if not self.records:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        latencies = [record.latency_s for record in self.records]
        return {"p50": percentile(latencies, 50.0),
                "p95": percentile(latencies, 95.0),
                "p99": percentile(latencies, 99.0)}

    def wait_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 queue wait (seconds)."""
        if not self.records:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        waits = [record.wait_s for record in self.records]
        return {"p50": percentile(waits, 50.0),
                "p95": percentile(waits, 95.0),
                "p99": percentile(waits, 99.0)}

    def mean_wait_s(self) -> float:
        """Mean queue wait (the M/M/1 Wq observable)."""
        if not self.records:
            return 0.0
        return sum(record.wait_s for record in self.records) / self.completed

    def mean_latency_s(self) -> float:
        """Mean end-to-end latency (the capacity model's W observable)."""
        if not self.records:
            return 0.0
        return sum(record.latency_s for record in self.records) \
            / self.completed

    def utilization(self) -> Dict[str, float]:
        """Busy fraction of the run, per backend."""
        if self.duration_s <= 0:
            return {name: 0.0 for name in self.node_busy_s}
        return {name: busy / self.duration_s
                for name, busy in self.node_busy_s.items()}

    # -- rendering --------------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """The flat JSON-safe summary (the CLI ``--json`` payload)."""
        latency = self.latency_percentiles()
        wait = self.wait_percentiles()
        drop_reasons: Dict[str, int] = {}
        for _, reason in self.dropped:
            drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
        return {
            "policy": self.policy,
            "workload": self.workload,
            "nodes": self.nodes,
            "duration_s": round(self.duration_s, 9),
            "arrivals": self.arrivals,
            "completed": self.completed,
            "dropped": len(self.dropped),
            "drop_reasons": drop_reasons,
            "throughput_rps": round(self.throughput, 6),
            "latency_p50_ms": round(latency["p50"] * 1e3, 6),
            "latency_p95_ms": round(latency["p95"] * 1e3, 6),
            "latency_p99_ms": round(latency["p99"] * 1e3, 6),
            "wait_p50_ms": round(wait["p50"] * 1e3, 6),
            "wait_p95_ms": round(wait["p95"] * 1e3, 6),
            "wait_p99_ms": round(wait["p99"] * 1e3, 6),
            "mean_wait_ms": round(self.mean_wait_s() * 1e3, 6),
            "mean_latency_ms": round(self.mean_latency_s() * 1e3, 6),
            "deadline_misses": self.deadline_misses,
            "miss_rate": round(self.miss_rate, 6),
            "drop_rate": round(self.drop_rate, 6),
            "host_fallbacks": self.fallbacks,
            "requeues": self.requeues,
            "fault_attempts": sum(r.fault_attempts for r in self.records),
            "wasted_time_ms": round(
                sum(r.wasted_time_s for r in self.records) * 1e3, 6),
            "wasted_energy_uj": round(
                sum(r.wasted_energy_j for r in self.records) * 1e6, 6),
            "energy_per_request_uj": round(
                self.energy_per_request_j * 1e6, 6),
            "fleet_energy_mj": round(self.fleet_energy_j * 1e3, 6),
            "utilization": {name: round(value, 6)
                            for name, value in self.utilization().items()},
            "dead_nodes": self.dead_nodes,
            "reboots": self.reboots,
            "power_peak_mw": round(self.power_peak_w * 1e3, 6),
            "power_budget_mw": (None if self.power_budget_w is None
                                else round(self.power_budget_w * 1e3, 6)),
        }

    def to_json_dict(self) -> Dict[str, object]:
        """Full payload: summary plus per-node and power-timeline detail."""
        payload = self.metrics()
        payload["per_node"] = {
            name: {
                "requests": self.node_requests.get(name, 0),
                "batches": self.node_batches.get(name, 0),
                "busy_s": round(self.node_busy_s.get(name, 0.0), 9),
                "energy_mj": round(
                    self.node_energy_j.get(name, 0.0) * 1e3, 9),
            }
            for name in sorted(self.node_busy_s)
        }
        payload["power_timeline_mw"] = [
            [round(t, 9), round(watts * 1e3, 6)]
            for t, watts in self.power_timeline]
        if self.resilience is not None:
            payload["resilience"] = self.resilience
        if self.node_archetypes is not None:
            payload["node_archetypes"] = {
                name: self.node_archetypes[name]
                for name in sorted(self.node_archetypes)}
        return payload

    @property
    def slo_worst_burn(self) -> Optional[float]:
        """Worst SLO error-budget burn (``None`` without resilience)."""
        if self.resilience is None:
            return None
        return self.resilience["slo"]["worst_burn"]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The full payload as a JSON string (stable key order)."""
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary table."""
        summary = self.metrics()
        lines = [
            f"serve: {summary['policy']} over {summary['nodes']} nodes, "
            f"{summary['workload']}",
            f"  requests   : {summary['completed']} completed / "
            f"{summary['arrivals']} arrived "
            f"({summary['dropped']} dropped) in {self.duration_s * 1e3:.2f} ms",
            f"  throughput : {summary['throughput_rps']:.1f} req/s",
            f"  latency    : p50 {summary['latency_p50_ms']:.3f}  "
            f"p95 {summary['latency_p95_ms']:.3f}  "
            f"p99 {summary['latency_p99_ms']:.3f} ms",
            f"  queue wait : p50 {summary['wait_p50_ms']:.3f}  "
            f"p95 {summary['wait_p95_ms']:.3f}  "
            f"p99 {summary['wait_p99_ms']:.3f} ms "
            f"(mean {summary['mean_wait_ms']:.3f})",
            f"  deadlines  : {summary['deadline_misses']} missed, "
            f"miss rate {summary['miss_rate']:.2%} "
            f"(drop rate {summary['drop_rate']:.2%})",
            f"  resilience : {summary['fault_attempts']} fault attempts, "
            f"{summary['requeues']} requeues, "
            f"{summary['host_fallbacks']} host fallbacks, "
            f"{summary['dead_nodes']} dead nodes, "
            f"{summary['reboots']} reboots",
            f"  energy     : {summary['energy_per_request_uj']:.2f} uJ/request, "
            f"fleet {summary['fleet_energy_mj']:.3f} mJ",
        ]
        budget = summary["power_budget_mw"]
        cap = f" (budget {budget:.3f} mW)" if budget is not None else ""
        lines.append(
            f"  power      : peak {summary['power_peak_mw']:.3f} mW{cap}")
        util = summary["utilization"]
        if util:
            pieces = ", ".join(f"{name} {value:.1%}"
                               for name, value in sorted(util.items()))
            lines.append(f"  utilization: {pieces}")
        if self.resilience is not None:
            res = self.resilience
            lines.append(
                f"  fleet      : {res['breakers']['trips']} breaker trips, "
                f"{res['retry_budget']['spent']} retry tokens spent "
                f"({res['retry_budget']['denied']} denied), "
                f"{res['hedging']['issued']} hedges "
                f"({res['hedging']['wins']} wins), "
                f"{res['overload']['sheds']} shed")
            lines.append(
                f"  slo        : worst burn {res['slo']['worst_burn']:.3f}, "
                f"{len(res['alerts'])} alerts, overload peak "
                f"{res['overload']['peak_level']}")
        return "\n".join(lines)

    # -- telemetry --------------------------------------------------------------

    def emit_telemetry(self) -> None:
        """Mirror the run into the global hub (no-op when disabled)."""
        hub = get_telemetry()
        if not hub.enabled:
            return
        # One span per *batch*: requests of a batch share the service
        # interval, and a node serves one batch at a time, so the lane
        # stays overlap-free for the Chrome exporter.
        batches: Dict[Tuple[str, float, float], List[RequestRecord]] = {}
        for record in self.records:
            batches.setdefault(
                (record.node, record.start_s, record.end_s), []).append(record)
        for (node, start, end), members in sorted(batches.items()):
            lead = members[0]
            hub.span(f"{lead.request.kernel} x{len(members)}",
                     f"serve.{node}", start, end - start,
                     energy=sum(m.energy_j for m in members),
                     requests=len(members), tier=lead.tier,
                     max_wait_ms=round(
                         max(m.wait_s for m in members) * 1e3, 6),
                     fault_attempts=sum(m.fault_attempts for m in members))
        hub.count("serve.completed", self.completed)
        if self.dropped:
            hub.count("serve.dropped", len(self.dropped))
        if self.deadline_misses:
            hub.count("serve.deadline_misses", self.deadline_misses)
        if self.requeues:
            hub.count("serve.requeues", self.requeues)
        if self.fallbacks:
            hub.count("serve.host_fallbacks", self.fallbacks)
        if self.resilience is not None:
            res = self.resilience
            if res["breakers"]["trips"]:
                hub.count("serve.breaker_trips", res["breakers"]["trips"])
            if res["hedging"]["issued"]:
                hub.count("serve.hedges", res["hedging"]["issued"])
            if res["overload"]["sheds"]:
                hub.count("serve.shed", res["overload"]["sheds"])
            slo = res["slo"]
            violations = sum(k["latency_violations"]
                             for k in slo["kernels"].values())
            if violations:
                hub.count("slo.latency_violations", violations)
            slo_dropped = sum(k["dropped"] for k in slo["kernels"].values())
            if slo_dropped:
                hub.count("slo.dropped", slo_dropped)
            exhausted = sum(
                1 for k in slo["kernels"].values()
                if k["latency_burn"] >= 1.0 or k["availability_burn"] >= 1.0)
            if exhausted:
                hub.count("slo.budget_exhausted", exhausted)
            if res["alerts"]:
                hub.count("slo.alerts", len(res["alerts"]))
        for t, watts in self.power_timeline:
            hub.gauge("serve.power_mw", watts * 1e3, ts=t, unit="mW")
