"""Request streams for the serving runtime.

A :class:`Request` asks for one offload of a registered benchmark
kernel.  Workloads produce request streams three ways:

* **open-loop** — arrivals follow a seeded stochastic process regardless
  of completions: :class:`PoissonWorkload` (memoryless) and
  :class:`MmppWorkload` (two-state Markov-modulated Poisson, the classic
  bursty-traffic model);
* **closed-loop** — :class:`ClosedLoopWorkload`: N clients each keep one
  request in flight, thinking between completions;
* **trace replay** — :class:`TraceWorkload` replays a recorded JSON
  request log.

All randomness comes from one :class:`Lcg` per workload (the same LCG
family as :class:`repro.faults.injector.FaultInjector`), so a given
(workload, seed) pair always produces the identical stream.  Relative
deadlines are expressed as a multiple of the kernel's expected warm
service time, resolved against a service estimator at generation time.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default kernel mix of generated workloads (name -> weight).
DEFAULT_MIX: Dict[str, float] = {"matmul": 4.0, "svm (RBF)": 3.0, "cnn": 1.0}

#: kernel -> expected warm service seconds (for relative deadlines).
Estimator = Callable[[str, int], float]


class Lcg:
    """The repo's 32-bit LCG (same family as the fault injector)."""

    def __init__(self, seed: int):
        self._state = (seed * 0x9E3779B9 + 0x7F4A7C15) & 0xFFFFFFFF

    def uniform(self) -> float:
        """Uniform in [0, 1)."""
        self._state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        return (self._state >> 8) / float(1 << 24)

    def exponential(self, rate: float) -> float:
        """Exponentially distributed with mean ``1/rate``."""
        if rate <= 0:
            raise ConfigurationError(f"exponential rate must be > 0: {rate}")
        # 1 - u is in (0, 1]: log never sees zero.
        return -math.log(1.0 - self.uniform()) / rate

    def weighted_choice(self, items: Sequence[str],
                        weights: Sequence[float]) -> str:
        """One item drawn with probability proportional to its weight."""
        total = float(sum(weights))
        if total <= 0:
            raise ConfigurationError("weights must sum to > 0")
        mark = self.uniform() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if mark < acc:
                return item
        return items[-1]


@dataclass
class Request:
    """One kernel-offload request in the serving stream."""

    request_id: int
    kernel: str
    arrival_s: float
    deadline_s: Optional[float] = None   #: absolute completion deadline
    iterations: int = 1
    client: Optional[int] = None         #: closed-loop client index

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (the trace-log row format)."""
        row: Dict[str, object] = {
            "id": self.request_id,
            "kernel": self.kernel,
            "t": self.arrival_s,
            "iterations": self.iterations,
        }
        if self.deadline_s is not None:
            row["deadline_s"] = self.deadline_s
        return row


def _validate_mix(mix: Dict[str, float]) -> Tuple[List[str], List[float]]:
    if not mix:
        raise ConfigurationError("workload kernel mix is empty")
    names = list(mix)
    weights = [float(mix[name]) for name in names]
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ConfigurationError(f"bad kernel mix weights: {mix}")
    return names, weights


class Workload:
    """Base class of all request streams."""

    #: Closed-loop workloads generate their stream interactively.
    closed_loop = False

    def arrivals(self, estimator: Estimator) -> List[Request]:
        """The pregenerated stream of an open-loop workload."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line summary for reports."""
        return type(self).__name__


class _GeneratedWorkload(Workload):
    """Shared machinery of the seeded open-loop generators."""

    def __init__(self, mix: Optional[Dict[str, float]] = None,
                 deadline_factor: Optional[float] = 25.0,
                 iterations: int = 1, seed: int = 1):
        self.mix = dict(mix) if mix is not None else dict(DEFAULT_MIX)
        self._names, self._weights = _validate_mix(self.mix)
        if deadline_factor is not None and deadline_factor <= 0:
            raise ConfigurationError(
                f"deadline factor must be > 0: {deadline_factor}")
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1: {iterations}")
        self.deadline_factor = deadline_factor
        self.iterations = iterations
        self.seed = seed

    def _request(self, rng: Lcg, request_id: int, t: float,
                 estimator: Estimator) -> Request:
        kernel = rng.weighted_choice(self._names, self._weights)
        deadline = None
        if self.deadline_factor is not None:
            deadline = t + self.deadline_factor \
                * estimator(kernel, self.iterations)
        return Request(request_id=request_id, kernel=kernel, arrival_s=t,
                       deadline_s=deadline, iterations=self.iterations)


class PoissonWorkload(_GeneratedWorkload):
    """Memoryless open-loop arrivals at a fixed rate.

    Generation stops after *requests* arrivals or at *duration* seconds,
    whichever comes first (at least one bound must be given).
    """

    def __init__(self, rate: float, requests: Optional[int] = None,
                 duration: Optional[float] = None, **kwargs):
        super().__init__(**kwargs)
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be > 0: {rate}")
        if requests is None and duration is None:
            raise ConfigurationError(
                "Poisson workload needs a request count or a duration")
        if requests is not None and requests < 1:
            raise ConfigurationError(f"need >= 1 requests, got {requests}")
        self.rate = rate
        self.requests = requests
        self.duration = duration

    def arrivals(self, estimator: Estimator) -> List[Request]:
        rng = Lcg(self.seed)
        stream: List[Request] = []
        t = 0.0
        while True:
            t += rng.exponential(self.rate)
            if self.duration is not None and t > self.duration:
                break
            stream.append(self._request(rng, len(stream), t, estimator))
            if self.requests is not None and len(stream) >= self.requests:
                break
        return stream

    def describe(self) -> str:
        bound = (f"{self.requests} requests" if self.requests is not None
                 else f"{self.duration:g} s")
        return f"poisson({self.rate:g}/s, {bound})"


class MmppWorkload(_GeneratedWorkload):
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates between a *calm* and a *burst* state, each
    with its own Poisson arrival rate; dwell times in each state are
    exponential.  The textbook model for flash-crowd traffic.
    """

    def __init__(self, rates: Tuple[float, float] = (100.0, 1000.0),
                 dwell_s: Tuple[float, float] = (0.5, 0.1),
                 requests: Optional[int] = None,
                 duration: Optional[float] = None, **kwargs):
        super().__init__(**kwargs)
        if len(rates) != 2 or len(dwell_s) != 2:
            raise ConfigurationError("MMPP needs exactly two states")
        if min(rates) <= 0 or min(dwell_s) <= 0:
            raise ConfigurationError(
                f"MMPP rates/dwells must be > 0: {rates} / {dwell_s}")
        if requests is None and duration is None:
            raise ConfigurationError(
                "MMPP workload needs a request count or a duration")
        self.rates = tuple(rates)
        self.dwell_s = tuple(dwell_s)
        self.requests = requests
        self.duration = duration

    def arrivals(self, estimator: Estimator) -> List[Request]:
        rng = Lcg(self.seed)
        stream: List[Request] = []
        t = 0.0
        state = 0
        switch_at = rng.exponential(1.0 / self.dwell_s[state])
        while True:
            gap = rng.exponential(self.rates[state])
            if t + gap >= switch_at:
                # The state flips before the next arrival would land.
                t = switch_at
                state = 1 - state
                switch_at = t + rng.exponential(1.0 / self.dwell_s[state])
                continue
            t += gap
            if self.duration is not None and t > self.duration:
                break
            stream.append(self._request(rng, len(stream), t, estimator))
            if self.requests is not None and len(stream) >= self.requests:
                break
        return stream

    def describe(self) -> str:
        bound = (f"{self.requests} requests" if self.requests is not None
                 else f"{self.duration:g} s")
        return (f"mmpp({self.rates[0]:g}/{self.rates[1]:g} per s, "
                f"dwell {self.dwell_s[0]:g}/{self.dwell_s[1]:g} s, {bound})")


class ClosedLoopWorkload(_GeneratedWorkload):
    """N clients, each keeping one request in flight.

    Every client issues its first request after a think-time sample,
    then — driven by the engine — issues the next one a think time after
    each completion, until its per-client budget is spent.  Total stream
    size is ``clients * requests_per_client``.
    """

    closed_loop = True

    def __init__(self, clients: int = 8, think_s: float = 0.01,
                 requests_per_client: int = 64, **kwargs):
        super().__init__(**kwargs)
        if clients < 1 or requests_per_client < 1:
            raise ConfigurationError(
                f"need >= 1 clients and requests per client, got "
                f"{clients} / {requests_per_client}")
        if think_s < 0:
            raise ConfigurationError(f"negative think time: {think_s}")
        self.clients = clients
        self.think_s = think_s
        self.requests_per_client = requests_per_client
        self._rngs: List[Lcg] = []
        self._issued: List[int] = []
        self._next_id = 0

    @property
    def total_requests(self) -> int:
        """Requests the whole run will issue."""
        return self.clients * self.requests_per_client

    def arrivals(self, estimator: Estimator) -> List[Request]:
        """The initial wave: one first request per client."""
        self._rngs = [Lcg(self.seed + 0x10001 * client)
                      for client in range(self.clients)]
        self._issued = [0] * self.clients
        self._next_id = 0
        wave = []
        for client in range(self.clients):
            request = self.next_request(client, 0.0, estimator)
            assert request is not None
            wave.append(request)
        return wave

    def next_request(self, client: int, now: float,
                     estimator: Estimator) -> Optional[Request]:
        """The client's next request, or ``None`` when its budget is spent.

        The arrival lands one think-time sample after *now*.
        """
        if self._issued[client] >= self.requests_per_client:
            return None
        rng = self._rngs[client]
        think = rng.exponential(1.0 / self.think_s) if self.think_s > 0 \
            else 0.0
        request = self._request(rng, self._next_id, now + think, estimator)
        request.client = client
        self._issued[client] += 1
        self._next_id += 1
        return request

    def describe(self) -> str:
        return (f"closed({self.clients} clients, think {self.think_s:g} s, "
                f"{self.requests_per_client}/client)")


class SurgedWorkload(Workload):
    """A chaos wrapper compressing arrival gaps inside surge windows.

    Wraps an open-loop workload and time-warps its pregenerated stream:
    inside each ``(start_s, window_s, factor)`` window, inter-arrival
    gaps shrink by *factor*; arrivals after a window shift earlier by
    the time the compression saved (the warp is continuous and
    monotonic, so arrival order is preserved).  Absolute deadlines shift
    with their arrival, keeping relative slack intact.  Closed-loop
    workloads are interactive — the wrapper passes them through
    untouched (a surge cannot compress think time that has not happened
    yet).
    """

    def __init__(self, base: Workload,
                 windows: Sequence[Tuple[float, float, float]]):
        if not windows:
            raise ConfigurationError("surge wrapper needs >= 1 windows")
        for start, width, factor in windows:
            if start < 0 or width <= 0 or factor <= 1.0:
                raise ConfigurationError(
                    f"bad surge window ({start}, {width}, {factor})")
        self.base = base
        self.windows = sorted(windows)
        self.closed_loop = base.closed_loop

    def __getattr__(self, name: str):
        # Closed-loop plumbing (next_request, total_requests, ...) and
        # any generator knobs resolve on the wrapped workload.
        return getattr(self.base, name)

    def _warp(self, t: float) -> float:
        saved = 0.0
        for start, width, factor in self.windows:
            if t <= start:
                break
            if t <= start + width:
                return start - saved + (t - start) / factor
            saved += width * (1.0 - 1.0 / factor)
        return t - saved

    def arrivals(self, estimator: Estimator) -> List[Request]:
        stream = self.base.arrivals(estimator)
        if self.closed_loop:
            return stream
        for request in stream:
            warped = self._warp(request.arrival_s)
            if request.deadline_s is not None:
                request.deadline_s -= request.arrival_s - warped
            request.arrival_s = warped
        return stream

    def describe(self) -> str:
        spans = ", ".join(f"x{factor:g}@[{start:g},{start + width:g}]s"
                          for start, width, factor in self.windows)
        return f"{self.base.describe()} + surge({spans})"


class TraceWorkload(Workload):
    """Replay of a recorded request log.

    The log is a JSON array of rows in the :meth:`Request.to_dict`
    format: ``{"t": <arrival s>, "kernel": <name>, "iterations": <n>,
    "deadline_s": <absolute s, optional>}``.
    """

    def __init__(self, rows: Sequence[Dict[str, object]]):
        if not rows:
            raise ConfigurationError("trace workload is empty")
        self.rows = list(rows)

    @classmethod
    def from_json(cls, path: str) -> "TraceWorkload":
        """Load a trace log from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                rows = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot load trace {path}: {exc}")
        if not isinstance(rows, list):
            raise ConfigurationError(f"trace {path} is not a JSON array")
        return cls(rows)

    def arrivals(self, estimator: Estimator) -> List[Request]:
        stream: List[Request] = []
        for index, row in enumerate(self.rows):
            try:
                kernel = str(row["kernel"])
                t = float(row["t"])
            except (TypeError, KeyError, ValueError):
                raise ConfigurationError(f"bad trace row {index}: {row!r}")
            deadline = row.get("deadline_s")
            stream.append(Request(
                request_id=int(row.get("id", index)),
                kernel=kernel,
                arrival_s=t,
                deadline_s=None if deadline is None else float(deadline),
                iterations=int(row.get("iterations", 1))))
        stream.sort(key=lambda r: (r.arrival_s, r.request_id))
        return stream

    def describe(self) -> str:
        return f"trace({len(self.rows)} requests)"
