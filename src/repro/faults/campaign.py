"""Fault campaigns: N seeded scenarios, one survival/recovery matrix.

A :class:`Campaign` is a list of :class:`Scenario` entries — (fault
plan, seed, kernel, knobs) tuples.  :class:`CampaignRunner` executes
each scenario on a fresh :class:`~repro.faults.resilient.ResilientDriver`
and classifies the outcome:

- ``clean``        — no fault fired, first attempt succeeded;
- ``recovered``    — faults fired, the ladder (or frame retransmission)
  absorbed them, the accelerator still produced the result;
- ``host-fallback``— the ladder was exhausted, the OpenMP host fallback
  produced a degraded result;
- ``failed``       — no result at all (only possible with fallback
  disabled, or a bug — campaigns assert against it).

The :class:`CampaignResult` aggregates the survival matrix (fault plan x
outcome), availability (scenarios that produced *a* result), and the
retry-energy overhead (wasted joules over useful joules).  Everything is
seeded and the runner touches no wall clock, so the same seed reproduces
the identical matrix bit for bit.  Scenario spans and fault counters are
emitted through :mod:`repro.obs`, so a campaign can be exported as a
Perfetto trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DegradedExecutionError, ReproError
from repro.faults.plan import FaultPlan
from repro.faults.resilient import ResilientDriver, RetryPolicy
from repro.kernels import kernel_by_name
from repro.obs.telemetry import get_telemetry
from repro.units import mhz

#: Outcome classes, in severity order.
OUTCOMES = ("clean", "recovered", "host-fallback", "failed")


@dataclass(frozen=True)
class Scenario:
    """One campaign cell: a fault plan bound to a seed and a workload."""

    plan: FaultPlan
    seed: int
    kernel: str = "matmul"
    host_mhz: float = 8.0
    iterations: int = 1

    @property
    def name(self) -> str:
        """Unique scenario label."""
        return f"{self.plan.name}#{self.seed}"


@dataclass
class ScenarioOutcome:
    """What one scenario ended as."""

    scenario: Scenario
    outcome: str
    fault_events: Tuple[str, ...]
    recovery_actions: Tuple[str, ...]
    fault_attempts: int
    total_time_s: float
    energy_j: float
    wasted_time_s: float
    wasted_energy_j: float
    effective_speedup: float
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe row."""
        return {
            "scenario": self.scenario.name,
            "plan": self.scenario.plan.to_dict(),
            "seed": self.scenario.seed,
            "kernel": self.scenario.kernel,
            "outcome": self.outcome,
            "fault_events": list(self.fault_events),
            "recovery_actions": list(self.recovery_actions),
            "fault_attempts": self.fault_attempts,
            "total_time_s": self.total_time_s,
            "energy_j": self.energy_j,
            "wasted_time_s": self.wasted_time_s,
            "wasted_energy_j": self.wasted_energy_j,
            "effective_speedup": self.effective_speedup,
            "error": self.error,
        }


@dataclass
class CampaignResult:
    """All scenario outcomes plus the aggregate reliability metrics."""

    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def matrix(self) -> Dict[str, Dict[str, int]]:
        """Survival matrix: plan name -> outcome -> count."""
        rows: Dict[str, Dict[str, int]] = {}
        for entry in self.outcomes:
            row = rows.setdefault(entry.scenario.plan.name,
                                  {outcome: 0 for outcome in OUTCOMES})
            row[entry.outcome] += 1
        return rows

    def count(self, outcome: str) -> int:
        """Scenarios that ended as *outcome*."""
        return sum(1 for entry in self.outcomes if entry.outcome == outcome)

    @property
    def availability(self) -> float:
        """Fraction of scenarios that produced a result at all."""
        if not self.outcomes:
            return 1.0
        return 1.0 - self.count("failed") / len(self.outcomes)

    @property
    def fallback_rate(self) -> float:
        """Fraction of scenarios that ended on the host."""
        if not self.outcomes:
            return 0.0
        return self.count("host-fallback") / len(self.outcomes)

    @property
    def retry_energy_overhead(self) -> float:
        """Wasted joules over useful joules across the campaign."""
        useful = sum(e.energy_j - e.wasted_energy_j for e in self.outcomes)
        wasted = sum(e.wasted_energy_j for e in self.outcomes)
        if useful <= 0:
            return 0.0
        return wasted / useful

    @property
    def degraded(self) -> bool:
        """Whether any scenario needed the host fallback."""
        return self.count("host-fallback") > 0

    @property
    def failed(self) -> bool:
        """Whether any scenario produced no result."""
        return self.count("failed") > 0

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable campaign dump (the ``--json`` surface)."""
        return {
            "experiment": "faults",
            "scenarios": len(self.outcomes),
            "matrix": self.matrix(),
            "availability": self.availability,
            "fallback_rate": self.fallback_rate,
            "retry_energy_overhead": self.retry_energy_overhead,
            "outcomes": {outcome: self.count(outcome)
                         for outcome in OUTCOMES},
            "rows": [entry.to_dict() for entry in self.outcomes],
        }

    def render(self) -> str:
        """Human-readable survival matrix + metrics."""
        lines = [f"fault campaign: {len(self.outcomes)} scenario(s)", ""]
        width = max([len("plan")] + [len(name) for name in self.matrix()])
        header = f"  {'plan':<{width}}" + "".join(
            f" {outcome:>13}" for outcome in OUTCOMES)
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for name, row in self.matrix().items():
            lines.append(f"  {name:<{width}}" + "".join(
                f" {row[outcome]:>13d}" for outcome in OUTCOMES))
        lines.append("")
        lines.append(f"  availability           {self.availability:8.1%}")
        lines.append(f"  fallback rate          {self.fallback_rate:8.1%}")
        lines.append(f"  retry-energy overhead  "
                     f"{self.retry_energy_overhead:8.1%}")
        return "\n".join(lines)


#: The canonical scenario mix of ``python -m repro faults``: one plan per
#: fault class plus the acceptance-grade combined scenario.
def default_plans(bit_error_rate: float = 2e-5) -> Tuple[FaultPlan, ...]:
    """The default campaign plans, covering the whole taxonomy."""
    return (
        FaultPlan.clean(),
        FaultPlan.bit_errors(bit_error_rate),
        FaultPlan.drop_frames(count=2),
        FaultPlan.truncate_frames(count=2),
        FaultPlan.duplicate_frames(count=2),
        FaultPlan.corrupt_status(count=1),
        FaultPlan.boot_failure(count=1),
        FaultPlan.kernel_hang(count=1),
        FaultPlan.brownout(droop=0.8),
        FaultPlan.combined(
            "hang+bit-errors",
            FaultPlan.kernel_hang(count=2),
            FaultPlan.bit_errors(bit_error_rate)),
        FaultPlan.kernel_hang(count=3),  # exhausts the ladder -> fallback
    )


def build_campaign(scenarios: int, seed: int = 1, kernel: str = "matmul",
                   host_mhz: float = 8.0, iterations: int = 1,
                   plans: Optional[Tuple[FaultPlan, ...]] = None,
                   bit_error_rate: float = 2e-5) -> List[Scenario]:
    """*scenarios* seeded scenarios cycling through the plan mix."""
    if scenarios < 1:
        raise ReproError(f"need at least one scenario, got {scenarios}")
    mix = plans if plans is not None else default_plans(bit_error_rate)
    return [
        Scenario(plan=mix[index % len(mix)],
                 seed=seed + index,
                 kernel=kernel,
                 host_mhz=host_mhz,
                 iterations=iterations)
        for index in range(scenarios)
    ]


class CampaignRunner:
    """Executes scenarios on fresh resilient drivers, deterministically."""

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 fallback_enabled: bool = True):
        self.policy = policy
        self.fallback_enabled = fallback_enabled

    def run(self, scenarios: List[Scenario]) -> CampaignResult:
        """Run every scenario; injected faults never escape the runner
        (anything that does is a bug in the resilient runtime)."""
        result = CampaignResult()
        telemetry = get_telemetry()
        clock = 0.0
        for scenario in scenarios:
            entry = self._run_one(scenario)
            result.outcomes.append(entry)
            if telemetry.enabled:
                telemetry.span(
                    f"scenario[{scenario.name}]", "campaign", clock,
                    entry.total_time_s, outcome=entry.outcome,
                    plan=scenario.plan.describe(), seed=scenario.seed,
                    attempts=entry.fault_attempts,
                    energy=entry.energy_j)
                telemetry.count(f"faults.outcome.{entry.outcome}")
                clock += entry.total_time_s
        if telemetry.enabled:
            telemetry.gauge("faults.availability", result.availability)
            telemetry.gauge("faults.retry_energy_overhead",
                            result.retry_energy_overhead)
        return result

    def _run_one(self, scenario: Scenario) -> ScenarioOutcome:
        driver = ResilientDriver(
            plan=scenario.plan, seed=scenario.seed, policy=self.policy,
            fallback_enabled=self.fallback_enabled)
        kernel = kernel_by_name(scenario.kernel)
        try:
            offload = driver.offload(
                kernel, seed=scenario.seed,
                host_frequency=mhz(scenario.host_mhz),
                iterations=scenario.iterations)
        except DegradedExecutionError as exc:
            return ScenarioOutcome(
                scenario=scenario, outcome="failed",
                fault_events=tuple(driver.injector.events),
                recovery_actions=tuple(driver.recovery_actions),
                fault_attempts=len(driver.recovery_actions),
                total_time_s=0.0, energy_j=0.0,
                wasted_time_s=0.0, wasted_energy_j=0.0,
                effective_speedup=0.0, error=str(exc))
        if offload.degraded:
            outcome = "host-fallback"
        elif driver.injector.injected or offload.fault_attempts \
                or offload.recovery_actions:
            outcome = "recovered"
        else:
            outcome = "clean"
        return ScenarioOutcome(
            scenario=scenario, outcome=outcome,
            fault_events=tuple(driver.injector.events),
            recovery_actions=offload.recovery_actions,
            fault_attempts=offload.fault_attempts,
            total_time_s=offload.timing.total_time,
            energy_j=offload.timing.energy.total_energy,
            wasted_time_s=offload.wasted_time_s,
            wasted_energy_j=offload.wasted_energy_j,
            effective_speedup=offload.effective_speedup,
            error=None)
