"""Seeded fault injection: one plan, deterministic fault events.

A :class:`FaultInjector` owns all randomness of a scenario (one LCG,
same family as :class:`repro.link.noise.NoisyChannel`), so a given
(plan, seed) pair always produces the identical fault sequence — the
bedrock of reproducible campaigns.  The injector exposes one hook per
point in the offload stack where a real system would fail:

- :meth:`mangle_transmission` — frame-level wire faults (drop,
  truncate, duplicate), applied by :class:`FaultyChannel` on top of the
  bit-error :class:`~repro.link.noise.NoisyChannel`;
- :meth:`corrupt_status` — garbage in STATUS replies;
- :meth:`boot_fails` / :meth:`kernel_hangs` — per-attempt control-plane
  faults;
- :meth:`brownout_droop` — operating-point droop.

Every injected event is recorded in :attr:`events` and counted on the
active telemetry hub (``faults.injected`` plus one counter per kind), so
fault campaigns show up in Perfetto traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.plan import (
    ATTEMPT_FAULTS,
    FRAME_FAULTS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FleetEventKind,
    FleetPlan,
)
from repro.link.noise import NoisyChannel
from repro.obs.telemetry import get_telemetry


class FaultInjector:
    """Turns a :class:`~repro.faults.plan.FaultPlan` into seeded events."""

    def __init__(self, plan: FaultPlan, seed: int = 1):
        self.plan = plan
        self.seed = seed
        self._state = (seed * 0x9E3779B9 + 0x7F4A7C15) & 0xFFFFFFFF
        self.events: List[str] = []
        self._budgets = {spec.kind: spec.count for spec in plan.specs}

    # -- randomness --------------------------------------------------------------

    def _next_random(self) -> float:
        self._state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        return (self._state >> 8) / float(1 << 24)

    def _fires(self, spec: FaultSpec) -> bool:
        """Consume the spec's budget first, then its probability."""
        if self._budgets.get(spec.kind, 0) > 0:
            self._budgets[spec.kind] -= 1
            return True
        return spec.rate > 0.0 and self._next_random() < spec.rate

    def _record(self, kind: FaultKind) -> None:
        self.events.append(kind.value)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("faults.injected")
            telemetry.count(f"faults.injected.{kind.value}")

    # -- plan queries ------------------------------------------------------------

    @property
    def bit_error_rate(self) -> float:
        """The plan's SPI bit-error rate (0 when absent)."""
        if self.plan.has(FaultKind.BIT_ERRORS):
            return self.plan.spec_for(FaultKind.BIT_ERRORS).rate
        return 0.0

    def channel(self) -> "FaultyChannel":
        """The wire channel of this scenario: bit errors + frame faults."""
        return FaultyChannel(
            NoisyChannel(self.bit_error_rate, seed=self.seed), self)

    # -- hook points -------------------------------------------------------------

    def mangle_transmission(self, data: bytes) -> Optional[bytes]:
        """Apply frame-level wire faults to one transmission.

        Returns the (possibly mangled) bytes, or ``None`` for a dropped
        transmission that never reaches the receiver.
        """
        for kind in FRAME_FAULTS:
            if not self.plan.has(kind):
                continue
            if not self._fires(self.plan.spec_for(kind)):
                continue
            self._record(kind)
            if kind is FaultKind.DROP_FRAME:
                return None
            if kind is FaultKind.TRUNCATE_FRAME:
                # Cut the transfer short mid-payload; keep at least one
                # byte so "truncated" stays distinct from "dropped".
                keep = max(1, len(data) // 2)
                return data[:keep]
            return data + data  # DUPLICATE_FRAME
        return data

    def corrupt_status(self, payload: bytes) -> bytes:
        """Possibly corrupt a STATUS reply payload."""
        kind = FaultKind.CORRUPT_STATUS
        if self.plan.has(kind) and self._fires(self.plan.spec_for(kind)):
            self._record(kind)
            return bytes(((byte ^ 0xA5) | 0x80) & 0xFF for byte in payload) \
                or b"\xff"
        return payload

    def boot_fails(self) -> bool:
        """Whether this attempt's boot never comes up (one budget unit)."""
        return self._attempt_fault(FaultKind.BOOT_FAILURE)

    def kernel_hangs(self) -> bool:
        """Whether this attempt's kernel never raises EOC."""
        return self._attempt_fault(FaultKind.KERNEL_HANG)

    def _attempt_fault(self, kind: FaultKind) -> bool:
        assert kind in ATTEMPT_FAULTS
        if self.plan.has(kind) and self._fires(self.plan.spec_for(kind)):
            self._record(kind)
            return True
        return False

    def brownout_droop(self) -> float:
        """Clock multiplier for this attempt (1.0 = nominal supply)."""
        kind = FaultKind.BROWNOUT
        if self.plan.has(kind):
            self._record(kind)
            return self.plan.spec_for(kind).droop
        return 1.0

    @property
    def injected(self) -> int:
        """Total fault events injected so far."""
        return len(self.events)


class FaultyChannel:
    """A wire channel layering frame-level faults over bit errors.

    Duck-type compatible with :class:`~repro.link.noise.NoisyChannel`
    (``transmit`` + ``bit_error_rate``), so it drops straight into
    :class:`~repro.link.noise.RetransmittingSender` and the offload
    driver.  A dropped transmission returns ``b""`` — zero frames at the
    receiver, which the sender treats as a failed delivery.
    """

    def __init__(self, inner: NoisyChannel, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    @property
    def bit_error_rate(self) -> float:
        """The underlying bit-error rate (for diagnostics)."""
        return self.inner.bit_error_rate

    @property
    def bits_transferred(self) -> int:
        """Bits pushed through the underlying channel."""
        return self.inner.bits_transferred

    def transmit(self, data: bytes) -> bytes:
        """One wire transmission through both fault layers."""
        mangled = self.injector.mangle_transmission(data)
        if mangled is None:
            return b""
        return self.inner.transmit(mangled)


# ---------------------------------------------------------------------------
# Fleet-scope injection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetAction:
    """One timed fleet action expanded from a :class:`FleetPlan` event.

    ``node`` is a fleet index, or ``None`` for a fleet-wide action
    (brownout droop / restore).  ``droop`` only matters for the
    ``droop`` action.
    """

    at_s: float
    action: str  # "crash" | "recover" | "droop" | "restore"
    node: Optional[int] = None
    droop: float = 1.0


class FleetInjector:
    """Expands a :class:`FleetPlan` into a deterministic action schedule.

    One LCG (same family as :class:`FaultInjector`) is seeded per event
    spec, so a given (plan, seed, fleet-size) triple always yields the
    identical schedule — scenarios stay independent of each other and of
    the serve engine's own randomness.
    """

    def __init__(self, plan: FleetPlan, seed: int = 1):
        self.plan = plan
        self.seed = seed

    def _lcg(self, index: int) -> "_FleetLcg":
        return _FleetLcg((self.seed + index * 7919) & 0xFFFFFFFF)

    def actions(self, fleet_size: int) -> List[FleetAction]:
        """The timed action schedule for a fleet of *fleet_size* nodes.

        Arrival-surge events produce no timed actions — they reshape the
        arrival process itself (see :meth:`surge_windows`).
        """
        actions: List[FleetAction] = []
        for index, event in enumerate(self.plan.events):
            rng = self._lcg(index)
            if event.kind is FleetEventKind.CRASH_STORM:
                actions.extend(self._crash_storm(event, rng, fleet_size))
            elif event.kind is FleetEventKind.FLEET_BROWNOUT:
                actions.append(FleetAction(event.start_s, "droop",
                                           droop=event.droop))
                actions.append(FleetAction(event.start_s + event.window_s,
                                           "restore"))
            elif event.kind is FleetEventKind.FLAPPING:
                actions.extend(self._flapping(event, rng, fleet_size))
        actions.sort(key=lambda a: (a.at_s, a.action, -1 if a.node is None
                                    else a.node))
        return actions

    def surge_windows(self) -> List[Tuple[float, float, float]]:
        """``(start_s, window_s, factor)`` for every arrival-surge event,
        sorted by start time."""
        windows = [(e.start_s, e.window_s, e.factor)
                   for e in self.plan.events
                   if e.kind is FleetEventKind.ARRIVAL_SURGE]
        windows.sort()
        return windows

    def _pick_nodes(self, count: int, rng: "_FleetLcg",
                    fleet_size: int) -> List[int]:
        """*count* distinct node indices via a partial Fisher–Yates."""
        pool = list(range(fleet_size))
        picked = []
        for _ in range(min(count, fleet_size)):
            slot = int(rng.uniform() * len(pool)) % len(pool)
            picked.append(pool.pop(slot))
        return picked

    def _crash_storm(self, event, rng: "_FleetLcg",
                     fleet_size: int) -> List[FleetAction]:
        actions = []
        for node in self._pick_nodes(event.nodes, rng, fleet_size):
            crash_at = event.start_s + rng.uniform() * event.window_s
            actions.append(FleetAction(crash_at, "crash", node))
            if event.recover_s > 0:
                actions.append(FleetAction(crash_at + event.recover_s,
                                           "recover", node))
        return actions

    def _flapping(self, event, rng: "_FleetLcg",
                  fleet_size: int) -> List[FleetAction]:
        actions = []
        for node in self._pick_nodes(event.nodes, rng, fleet_size):
            t = event.start_s
            end = event.start_s + event.window_s
            while t < end:
                # Down for a jittered half-period, then back up; the
                # final recovery always lands so flapping nodes end the
                # scenario alive.
                down = event.period_s * 0.5 * (0.6 + 0.8 * rng.uniform())
                actions.append(FleetAction(t, "crash", node))
                actions.append(FleetAction(t + down, "recover", node))
                t += event.period_s
        return actions


class _FleetLcg:
    """The repo-standard 32-bit LCG (see :class:`FaultInjector`)."""

    def __init__(self, seed: int):
        self._state = (seed * 0x9E3779B9 + 0x7F4A7C15) & 0xFFFFFFFF

    def uniform(self) -> float:
        self._state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        return (self._state >> 8) / float(1 << 24)
