"""Full-stack fault injection and the resilient offload runtime.

Three layers:

- :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`:
  declarative, seedable fault scenarios spanning the stack (SPI bit
  errors, dropped / truncated / duplicated frames, corrupted STATUS
  replies, accelerator boot failure, kernel hang, power brownout);
- :mod:`repro.faults.injector` — :class:`FaultInjector`: the seeded,
  deterministic engine that decides *when* each fault fires and applies
  it at the right layer of the stack;
- :mod:`repro.faults.resilient` — :class:`ResilientDriver`: the
  hardened session driver with per-operation timeouts, a watchdog on
  RUNNING, bounded retries with exponential backoff, the escalation
  ladder (retransmit → re-arm → reboot+reload → OpenMP host fallback)
  and full cost accounting of every recovery action;
- :mod:`repro.faults.campaign` — seeded fault campaigns producing the
  survival/recovery matrix behind ``python -m repro faults``.
"""

from repro.faults.campaign import (
    OUTCOMES,
    CampaignResult,
    CampaignRunner,
    Scenario,
    ScenarioOutcome,
    build_campaign,
    default_plans,
)
from repro.faults.injector import (
    FaultInjector,
    FaultyChannel,
    FleetAction,
    FleetInjector,
)
from repro.faults.plan import (
    ATTEMPT_FAULTS,
    FRAME_FAULTS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FleetEventKind,
    FleetEventSpec,
    FleetPlan,
)
from repro.faults.resilient import (
    LADDER,
    ResilientDriver,
    RetryPolicy,
    await_end_of_computation,
)

__all__ = [
    "ATTEMPT_FAULTS",
    "FRAME_FAULTS",
    "LADDER",
    "OUTCOMES",
    "CampaignResult",
    "CampaignRunner",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyChannel",
    "FleetAction",
    "FleetEventKind",
    "FleetEventSpec",
    "FleetInjector",
    "FleetPlan",
    "ResilientDriver",
    "RetryPolicy",
    "Scenario",
    "ScenarioOutcome",
    "await_end_of_computation",
    "build_campaign",
    "default_plans",
]
