"""Declarative fault scenarios: what breaks, how often, and when.

The paper's prototype couples the STM32 host to PULP over bare board
wires and a lightweight SPI protocol — exactly the kind of link and
accelerator that fails in the field.  A :class:`FaultPlan` is the
declarative description of one such failure scenario: a list of
:class:`FaultSpec` entries, each naming a :class:`FaultKind` plus its
parameters.  Plans are pure data (JSON round-trippable); the seeded
:class:`~repro.faults.injector.FaultInjector` turns a plan into
deterministic fault events.

Fault taxonomy (see ``docs/RELIABILITY.md``):

========================  =====================================================
kind                      models
========================  =====================================================
``bit-errors``            SPI bit flips at a configured BER (noisy wires)
``drop-frame``            a transmission that never arrives (EMI burst, CS
                          glitch)
``truncate-frame``        a transfer cut short (DMA abort, watchdog on CS)
``duplicate-frame``       a replayed transaction (stuck DMA request line)
``corrupt-status``        garbage in the accelerator's STATUS reply
``boot-failure``          the accelerator never comes out of reset after START
``kernel-hang``           the kernel never raises EOC (deadlocked barrier)
``brownout``              supply droop forcing the FLL to a lower clock
========================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """The modeled fault classes, spanning link, control plane and power."""

    BIT_ERRORS = "bit-errors"
    DROP_FRAME = "drop-frame"
    TRUNCATE_FRAME = "truncate-frame"
    DUPLICATE_FRAME = "duplicate-frame"
    CORRUPT_STATUS = "corrupt-status"
    BOOT_FAILURE = "boot-failure"
    KERNEL_HANG = "kernel-hang"
    BROWNOUT = "brownout"


#: Fault kinds applied per wire transmission (probabilistic via ``rate``
#: or deterministic via ``count``).
FRAME_FAULTS = (FaultKind.DROP_FRAME, FaultKind.TRUNCATE_FRAME,
                FaultKind.DUPLICATE_FRAME)

#: Fault kinds consumed once per offload attempt (``count`` attempts hit).
ATTEMPT_FAULTS = (FaultKind.BOOT_FAILURE, FaultKind.KERNEL_HANG)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source inside a plan.

    Parameters (kind-dependent):

    - ``rate``: per-event probability (bit for ``bit-errors``, wire
      transmission for frame faults, STATUS reply for ``corrupt-status``);
    - ``count``: deterministic budget — the first ``count`` matching
      events are hit (frame faults, ``boot-failure``, ``kernel-hang``);
    - ``droop``: clock multiplier in (0, 1] for ``brownout``.
    """

    kind: FaultKind
    rate: float = 0.0
    count: int = 0
    droop: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ConfigurationError(
                f"{self.kind.value}: rate {self.rate} outside [0, 1)")
        if self.count < 0:
            raise ConfigurationError(
                f"{self.kind.value}: negative count {self.count}")
        if not 0.0 < self.droop <= 1.0:
            raise ConfigurationError(
                f"{self.kind.value}: droop {self.droop} outside (0, 1]")
        if self.kind is FaultKind.BIT_ERRORS and self.rate == 0.0:
            raise ConfigurationError("bit-errors spec needs a rate > 0")
        if self.kind in FRAME_FAULTS and self.rate == 0.0 and self.count == 0:
            raise ConfigurationError(
                f"{self.kind.value} spec needs a rate or a count")
        if self.kind in ATTEMPT_FAULTS and self.count == 0:
            raise ConfigurationError(
                f"{self.kind.value} spec needs a count >= 1")
        if self.kind is FaultKind.BROWNOUT and self.droop == 1.0:
            raise ConfigurationError("brownout spec needs a droop < 1")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        payload: Dict[str, object] = {"kind": self.kind.value}
        if self.rate:
            payload["rate"] = self.rate
        if self.count:
            payload["count"] = self.count
        if self.droop != 1.0:
            payload["droop"] = self.droop
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            kind = FaultKind(payload["kind"])
        except (KeyError, ValueError):
            raise ConfigurationError(
                f"bad fault spec {payload!r}: unknown kind") from None
        return cls(kind=kind,
                   rate=float(payload.get("rate", 0.0)),
                   count=int(payload.get("count", 0)),
                   droop=float(payload.get("droop", 1.0)))


@dataclass(frozen=True)
class FaultPlan:
    """A named, declarative fault scenario: zero or more fault sources."""

    name: str
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        kinds = [spec.kind for spec in self.specs]
        if len(set(kinds)) != len(kinds):
            raise ConfigurationError(
                f"plan {self.name!r} repeats a fault kind")

    @property
    def kinds(self) -> Tuple[FaultKind, ...]:
        """The fault kinds this plan injects."""
        return tuple(spec.kind for spec in self.specs)

    def spec_for(self, kind: FaultKind) -> FaultSpec:
        """The spec of *kind*; raises ``KeyError`` when absent."""
        for spec in self.specs:
            if spec.kind is kind:
                return spec
        raise KeyError(kind)

    def has(self, kind: FaultKind) -> bool:
        """Whether the plan injects *kind*."""
        return any(spec.kind is kind for spec in self.specs)

    def describe(self) -> str:
        """Short human-readable summary (``clean`` for the empty plan)."""
        if not self.specs:
            return "clean"
        parts = []
        for spec in self.specs:
            detail = []
            if spec.rate:
                detail.append(f"rate={spec.rate:g}")
            if spec.count:
                detail.append(f"count={spec.count}")
            if spec.droop != 1.0:
                detail.append(f"droop={spec.droop:g}")
            parts.append(f"{spec.kind.value}({', '.join(detail)})")
        return " + ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {"name": self.name,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        specs = payload.get("specs", [])
        if not isinstance(specs, list):
            raise ConfigurationError(f"bad fault plan {payload!r}")
        return cls(name=str(payload.get("name", "unnamed")),
                   specs=tuple(FaultSpec.from_dict(s) for s in specs))

    # -- canned plans -----------------------------------------------------------

    @classmethod
    def clean(cls) -> "FaultPlan":
        """No faults at all (the control scenario)."""
        return cls("clean")

    @classmethod
    def bit_errors(cls, rate: float) -> "FaultPlan":
        """SPI bit flips at *rate*."""
        return cls(f"bit-errors@{rate:g}",
                   (FaultSpec(FaultKind.BIT_ERRORS, rate=rate),))

    @classmethod
    def drop_frames(cls, count: int = 1, rate: float = 0.0) -> "FaultPlan":
        """Dropped wire transmissions."""
        return cls("drop-frame",
                   (FaultSpec(FaultKind.DROP_FRAME, rate=rate, count=count),))

    @classmethod
    def truncate_frames(cls, count: int = 1, rate: float = 0.0) -> "FaultPlan":
        """Truncated wire transmissions."""
        return cls("truncate-frame",
                   (FaultSpec(FaultKind.TRUNCATE_FRAME, rate=rate,
                              count=count),))

    @classmethod
    def duplicate_frames(cls, count: int = 1,
                         rate: float = 0.0) -> "FaultPlan":
        """Duplicated wire transmissions."""
        return cls("duplicate-frame",
                   (FaultSpec(FaultKind.DUPLICATE_FRAME, rate=rate,
                              count=count),))

    @classmethod
    def corrupt_status(cls, rate: float = 0.0,
                       count: int = 1) -> "FaultPlan":
        """Corrupted STATUS replies."""
        return cls("corrupt-status",
                   (FaultSpec(FaultKind.CORRUPT_STATUS, rate=rate,
                              count=count),))

    @classmethod
    def boot_failure(cls, count: int = 1) -> "FaultPlan":
        """The first *count* boots never come up."""
        return cls("boot-failure",
                   (FaultSpec(FaultKind.BOOT_FAILURE, count=count),))

    @classmethod
    def kernel_hang(cls, count: int = 1) -> "FaultPlan":
        """The first *count* kernel runs never raise EOC."""
        return cls("kernel-hang",
                   (FaultSpec(FaultKind.KERNEL_HANG, count=count),))

    @classmethod
    def brownout(cls, droop: float = 0.8) -> "FaultPlan":
        """Supply droop scaling the accelerator clock by *droop*."""
        return cls(f"brownout@{droop:g}",
                   (FaultSpec(FaultKind.BROWNOUT, droop=droop),))

    @classmethod
    def combined(cls, name: str, *plans: "FaultPlan") -> "FaultPlan":
        """Merge several single-kind plans into one scenario."""
        specs: List[FaultSpec] = []
        for plan in plans:
            specs.extend(plan.specs)
        return cls(name, tuple(specs))
