"""Declarative fault scenarios: what breaks, how often, and when.

The paper's prototype couples the STM32 host to PULP over bare board
wires and a lightweight SPI protocol — exactly the kind of link and
accelerator that fails in the field.  A :class:`FaultPlan` is the
declarative description of one such failure scenario: a list of
:class:`FaultSpec` entries, each naming a :class:`FaultKind` plus its
parameters.  Plans are pure data (JSON round-trippable); the seeded
:class:`~repro.faults.injector.FaultInjector` turns a plan into
deterministic fault events.

Fault taxonomy (see ``docs/RELIABILITY.md``):

========================  =====================================================
kind                      models
========================  =====================================================
``bit-errors``            SPI bit flips at a configured BER (noisy wires)
``drop-frame``            a transmission that never arrives (EMI burst, CS
                          glitch)
``truncate-frame``        a transfer cut short (DMA abort, watchdog on CS)
``duplicate-frame``       a replayed transaction (stuck DMA request line)
``corrupt-status``        garbage in the accelerator's STATUS reply
``boot-failure``          the accelerator never comes out of reset after START
``kernel-hang``           the kernel never raises EOC (deadlocked barrier)
``brownout``              supply droop forcing the FLL to a lower clock
========================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """The modeled fault classes, spanning link, control plane and power."""

    BIT_ERRORS = "bit-errors"
    DROP_FRAME = "drop-frame"
    TRUNCATE_FRAME = "truncate-frame"
    DUPLICATE_FRAME = "duplicate-frame"
    CORRUPT_STATUS = "corrupt-status"
    BOOT_FAILURE = "boot-failure"
    KERNEL_HANG = "kernel-hang"
    BROWNOUT = "brownout"


#: Fault kinds applied per wire transmission (probabilistic via ``rate``
#: or deterministic via ``count``).
FRAME_FAULTS = (FaultKind.DROP_FRAME, FaultKind.TRUNCATE_FRAME,
                FaultKind.DUPLICATE_FRAME)

#: Fault kinds consumed once per offload attempt (``count`` attempts hit).
ATTEMPT_FAULTS = (FaultKind.BOOT_FAILURE, FaultKind.KERNEL_HANG)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source inside a plan.

    Parameters (kind-dependent):

    - ``rate``: per-event probability (bit for ``bit-errors``, wire
      transmission for frame faults, STATUS reply for ``corrupt-status``);
    - ``count``: deterministic budget — the first ``count`` matching
      events are hit (frame faults, ``boot-failure``, ``kernel-hang``);
    - ``droop``: clock multiplier in (0, 1] for ``brownout``.
    """

    kind: FaultKind
    rate: float = 0.0
    count: int = 0
    droop: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ConfigurationError(
                f"{self.kind.value}: rate {self.rate} outside [0, 1)")
        if self.count < 0:
            raise ConfigurationError(
                f"{self.kind.value}: negative count {self.count}")
        if not 0.0 < self.droop <= 1.0:
            raise ConfigurationError(
                f"{self.kind.value}: droop {self.droop} outside (0, 1]")
        if self.kind is FaultKind.BIT_ERRORS and self.rate == 0.0:
            raise ConfigurationError("bit-errors spec needs a rate > 0")
        if self.kind in FRAME_FAULTS and self.rate == 0.0 and self.count == 0:
            raise ConfigurationError(
                f"{self.kind.value} spec needs a rate or a count")
        if self.kind in ATTEMPT_FAULTS and self.count == 0:
            raise ConfigurationError(
                f"{self.kind.value} spec needs a count >= 1")
        if self.kind is FaultKind.BROWNOUT and self.droop == 1.0:
            raise ConfigurationError("brownout spec needs a droop < 1")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        payload: Dict[str, object] = {"kind": self.kind.value}
        if self.rate:
            payload["rate"] = self.rate
        if self.count:
            payload["count"] = self.count
        if self.droop != 1.0:
            payload["droop"] = self.droop
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            kind = FaultKind(payload["kind"])
        except (KeyError, ValueError):
            raise ConfigurationError(
                f"bad fault spec {payload!r}: unknown kind") from None
        return cls(kind=kind,
                   rate=float(payload.get("rate", 0.0)),
                   count=int(payload.get("count", 0)),
                   droop=float(payload.get("droop", 1.0)))


@dataclass(frozen=True)
class FaultPlan:
    """A named, declarative fault scenario: zero or more fault sources."""

    name: str
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        kinds = [spec.kind for spec in self.specs]
        if len(set(kinds)) != len(kinds):
            raise ConfigurationError(
                f"plan {self.name!r} repeats a fault kind")

    @property
    def kinds(self) -> Tuple[FaultKind, ...]:
        """The fault kinds this plan injects."""
        return tuple(spec.kind for spec in self.specs)

    def spec_for(self, kind: FaultKind) -> FaultSpec:
        """The spec of *kind*; raises ``KeyError`` when absent."""
        for spec in self.specs:
            if spec.kind is kind:
                return spec
        raise KeyError(kind)

    def has(self, kind: FaultKind) -> bool:
        """Whether the plan injects *kind*."""
        return any(spec.kind is kind for spec in self.specs)

    def describe(self) -> str:
        """Short human-readable summary (``clean`` for the empty plan)."""
        if not self.specs:
            return "clean"
        parts = []
        for spec in self.specs:
            detail = []
            if spec.rate:
                detail.append(f"rate={spec.rate:g}")
            if spec.count:
                detail.append(f"count={spec.count}")
            if spec.droop != 1.0:
                detail.append(f"droop={spec.droop:g}")
            parts.append(f"{spec.kind.value}({', '.join(detail)})")
        return " + ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {"name": self.name,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        specs = payload.get("specs", [])
        if not isinstance(specs, list):
            raise ConfigurationError(f"bad fault plan {payload!r}")
        return cls(name=str(payload.get("name", "unnamed")),
                   specs=tuple(FaultSpec.from_dict(s) for s in specs))

    # -- canned plans -----------------------------------------------------------

    @classmethod
    def clean(cls) -> "FaultPlan":
        """No faults at all (the control scenario)."""
        return cls("clean")

    @classmethod
    def bit_errors(cls, rate: float) -> "FaultPlan":
        """SPI bit flips at *rate*."""
        return cls(f"bit-errors@{rate:g}",
                   (FaultSpec(FaultKind.BIT_ERRORS, rate=rate),))

    @classmethod
    def drop_frames(cls, count: int = 1, rate: float = 0.0) -> "FaultPlan":
        """Dropped wire transmissions."""
        return cls("drop-frame",
                   (FaultSpec(FaultKind.DROP_FRAME, rate=rate, count=count),))

    @classmethod
    def truncate_frames(cls, count: int = 1, rate: float = 0.0) -> "FaultPlan":
        """Truncated wire transmissions."""
        return cls("truncate-frame",
                   (FaultSpec(FaultKind.TRUNCATE_FRAME, rate=rate,
                              count=count),))

    @classmethod
    def duplicate_frames(cls, count: int = 1,
                         rate: float = 0.0) -> "FaultPlan":
        """Duplicated wire transmissions."""
        return cls("duplicate-frame",
                   (FaultSpec(FaultKind.DUPLICATE_FRAME, rate=rate,
                              count=count),))

    @classmethod
    def corrupt_status(cls, rate: float = 0.0,
                       count: int = 1) -> "FaultPlan":
        """Corrupted STATUS replies."""
        return cls("corrupt-status",
                   (FaultSpec(FaultKind.CORRUPT_STATUS, rate=rate,
                              count=count),))

    @classmethod
    def boot_failure(cls, count: int = 1) -> "FaultPlan":
        """The first *count* boots never come up."""
        return cls("boot-failure",
                   (FaultSpec(FaultKind.BOOT_FAILURE, count=count),))

    @classmethod
    def kernel_hang(cls, count: int = 1) -> "FaultPlan":
        """The first *count* kernel runs never raise EOC."""
        return cls("kernel-hang",
                   (FaultSpec(FaultKind.KERNEL_HANG, count=count),))

    @classmethod
    def brownout(cls, droop: float = 0.8) -> "FaultPlan":
        """Supply droop scaling the accelerator clock by *droop*."""
        return cls(f"brownout@{droop:g}",
                   (FaultSpec(FaultKind.BROWNOUT, droop=droop),))

    @classmethod
    def combined(cls, name: str, *plans: "FaultPlan") -> "FaultPlan":
        """Merge several single-kind plans into one scenario."""
        specs: List[FaultSpec] = []
        for plan in plans:
            specs.extend(plan.specs)
        return cls(name, tuple(specs))


# ---------------------------------------------------------------------------
# Fleet-scope fault plans
# ---------------------------------------------------------------------------
#
# A :class:`FaultPlan` describes what goes wrong inside ONE offload
# stack.  A :class:`FleetPlan` describes *correlated* failures across a
# whole serving fleet — the scenarios a single-node plan cannot express:
#
# ========================  ===================================================
# kind                      models
# ========================  ===================================================
# ``crash-storm``           K nodes crash within a time window (shared PSU
#                           rail, cascading watchdogs); optional recovery
# ``fleet-brownout``        supply droop hitting every node at once for a
#                           window (the battery sagging under load)
# ``flapping``              a node cycling down/up with a period (marginal
#                           solder joint, thermal cutout)
# ``arrival-surge``         the open-loop arrival process compressed by a
#                           factor inside a window (a traffic spike)
# ========================  ===================================================
#
# Plans stay pure data; :class:`~repro.faults.injector.FleetInjector`
# expands a (plan, seed, fleet-size) triple into a deterministic action
# schedule.


class FleetEventKind(enum.Enum):
    """Correlated, fleet-scope failure classes."""

    CRASH_STORM = "crash-storm"
    FLEET_BROWNOUT = "fleet-brownout"
    FLAPPING = "flapping"
    ARRIVAL_SURGE = "arrival-surge"


@dataclass(frozen=True)
class FleetEventSpec:
    """One fleet-scope event inside a :class:`FleetPlan`.

    Parameters (kind-dependent):

    - ``start_s`` / ``window_s``: when the event begins and how long the
      affected window lasts;
    - ``nodes``: how many nodes are hit (``crash-storm``, ``flapping``);
    - ``recover_s``: per-node downtime before recovery for
      ``crash-storm`` (0 = the crashed nodes stay down);
    - ``droop``: clock multiplier in (0, 1) for ``fleet-brownout``;
    - ``period_s``: full down+up cycle length for ``flapping``;
    - ``factor``: arrival-gap compression (> 1) for ``arrival-surge``.
    """

    kind: FleetEventKind
    start_s: float = 0.0
    window_s: float = 0.0
    nodes: int = 1
    recover_s: float = 0.0
    droop: float = 1.0
    period_s: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError(
                f"{self.kind.value}: negative start {self.start_s}")
        if self.window_s < 0:
            raise ConfigurationError(
                f"{self.kind.value}: negative window {self.window_s}")
        if self.nodes < 1:
            raise ConfigurationError(
                f"{self.kind.value}: needs at least one node")
        if self.recover_s < 0:
            raise ConfigurationError(
                f"{self.kind.value}: negative recovery {self.recover_s}")
        if self.kind is FleetEventKind.FLEET_BROWNOUT:
            if not 0.0 < self.droop < 1.0:
                raise ConfigurationError(
                    f"fleet-brownout droop {self.droop} outside (0, 1)")
            if self.window_s <= 0:
                raise ConfigurationError("fleet-brownout needs a window > 0")
        if self.kind is FleetEventKind.FLAPPING:
            if self.period_s <= 0:
                raise ConfigurationError("flapping needs a period > 0")
            if self.window_s <= 0:
                raise ConfigurationError("flapping needs a window > 0")
        if self.kind is FleetEventKind.ARRIVAL_SURGE:
            if self.factor <= 1.0:
                raise ConfigurationError(
                    f"arrival-surge factor {self.factor} must be > 1")
            if self.window_s <= 0:
                raise ConfigurationError("arrival-surge needs a window > 0")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (defaults omitted)."""
        payload: Dict[str, object] = {"kind": self.kind.value}
        if self.start_s:
            payload["start_s"] = self.start_s
        if self.window_s:
            payload["window_s"] = self.window_s
        if self.nodes != 1:
            payload["nodes"] = self.nodes
        if self.recover_s:
            payload["recover_s"] = self.recover_s
        if self.droop != 1.0:
            payload["droop"] = self.droop
        if self.period_s:
            payload["period_s"] = self.period_s
        if self.factor != 1.0:
            payload["factor"] = self.factor
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FleetEventSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            kind = FleetEventKind(payload["kind"])
        except (KeyError, ValueError):
            raise ConfigurationError(
                f"bad fleet event {payload!r}: unknown kind") from None
        return cls(kind=kind,
                   start_s=float(payload.get("start_s", 0.0)),
                   window_s=float(payload.get("window_s", 0.0)),
                   nodes=int(payload.get("nodes", 1)),
                   recover_s=float(payload.get("recover_s", 0.0)),
                   droop=float(payload.get("droop", 1.0)),
                   period_s=float(payload.get("period_s", 0.0)),
                   factor=float(payload.get("factor", 1.0)))


@dataclass(frozen=True)
class FleetPlan:
    """A named fleet-scope chaos scenario: zero or more correlated events."""

    name: str
    events: Tuple[FleetEventSpec, ...] = ()

    def has(self, kind: FleetEventKind) -> bool:
        """Whether the plan contains an event of *kind*."""
        return any(event.kind is kind for event in self.events)

    def describe(self) -> str:
        """Short human-readable summary (``clean`` for the empty plan)."""
        if not self.events:
            return "clean"
        parts = []
        for event in self.events:
            detail = [f"@{event.start_s:g}+{event.window_s:g}s"]
            if event.kind in (FleetEventKind.CRASH_STORM,
                              FleetEventKind.FLAPPING):
                detail.append(f"nodes={event.nodes}")
            if event.recover_s:
                detail.append(f"recover={event.recover_s:g}s")
            if event.droop != 1.0:
                detail.append(f"droop={event.droop:g}")
            if event.period_s:
                detail.append(f"period={event.period_s:g}s")
            if event.factor != 1.0:
                detail.append(f"x{event.factor:g}")
            parts.append(f"{event.kind.value}({', '.join(detail)})")
        return " + ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {"name": self.name,
                "events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FleetPlan":
        """Inverse of :meth:`to_dict`."""
        events = payload.get("events", [])
        if not isinstance(events, list):
            raise ConfigurationError(f"bad fleet plan {payload!r}")
        return cls(name=str(payload.get("name", "unnamed")),
                   events=tuple(FleetEventSpec.from_dict(e) for e in events))

    # -- canned plans -----------------------------------------------------------

    @classmethod
    def empty(cls) -> "FleetPlan":
        """No fleet events at all (the control scenario)."""
        return cls("clean")

    @classmethod
    def crash_storm(cls, nodes: int = 3, start_s: float = 0.1,
                    window_s: float = 0.3,
                    recover_s: float = 0.5) -> "FleetPlan":
        """*nodes* crash inside the window; each recovers after
        *recover_s* (0 = permanent)."""
        return cls(f"crash-storm-{nodes}",
                   (FleetEventSpec(FleetEventKind.CRASH_STORM,
                                   start_s=start_s, window_s=window_s,
                                   nodes=nodes, recover_s=recover_s),))

    @classmethod
    def fleet_brownout(cls, droop: float = 0.6, start_s: float = 0.2,
                       window_s: float = 0.8) -> "FleetPlan":
        """Every node's clock scaled by *droop* for the window."""
        return cls(f"fleet-brownout@{droop:g}",
                   (FleetEventSpec(FleetEventKind.FLEET_BROWNOUT,
                                   start_s=start_s, window_s=window_s,
                                   droop=droop),))

    @classmethod
    def flapping(cls, nodes: int = 1, period_s: float = 0.15,
                 start_s: float = 0.1, window_s: float = 1.0) -> "FleetPlan":
        """*nodes* cycle down/up with *period_s* inside the window."""
        return cls("flapping",
                   (FleetEventSpec(FleetEventKind.FLAPPING, start_s=start_s,
                                   window_s=window_s, nodes=nodes,
                                   period_s=period_s),))

    @classmethod
    def arrival_surge(cls, factor: float = 4.0, start_s: float = 0.2,
                      window_s: float = 0.3) -> "FleetPlan":
        """Open-loop arrival gaps inside the window compressed by
        *factor*."""
        return cls(f"surge-x{factor:g}",
                   (FleetEventSpec(FleetEventKind.ARRIVAL_SURGE,
                                   start_s=start_s, window_s=window_s,
                                   factor=factor),))

    @classmethod
    def fleet_combined(cls, name: str, *plans: "FleetPlan") -> "FleetPlan":
        """Merge several fleet plans into one scenario."""
        events: List[FleetEventSpec] = []
        for plan in plans:
            events.extend(plan.events)
        return cls(name, tuple(events))
