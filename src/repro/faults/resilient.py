"""The resilient offload runtime: timeouts, a watchdog, and a ladder.

:class:`ResilientDriver` extends the reliable session driver of
:mod:`repro.core.driver` with everything a fielded host needs when the
accelerator — or the wire to it — misbehaves:

- **per-operation timeouts**: every frame delivery has a wire-time
  budget; blowing it raises :class:`repro.errors.TimeoutError`;
- **a watchdog on RUNNING**: the EOC wait runs as a two-process
  discrete-event simulation (:mod:`repro.sim.engine`); a hung kernel
  surfaces as a clean :class:`~repro.errors.DeadlockError`, which the
  watchdog converts into a timed recovery instead of an infinite wait;
- **bounded retries with exponential backoff**, whose wire time and
  energy are charged through the existing cost models;
- **the escalation ladder**: retransmit frame (inside the sender) →
  re-arm inputs → reboot + reload binary → **host fallback**, executing
  the kernel on the Cortex-M cost model with the result marked degraded
  and the failed attempts' latency/energy included.

The ladder's cost accounting is explicit: every failed attempt's wire
traffic, every watchdog/boot timeout and every backoff sleep becomes a
``recovery`` phase in the result's :class:`~repro.power.energy.EnergyAccount`
and is added to ``timing.total_time`` — a recovered offload is never
reported cheaper than a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro import errors
from repro.core.driver import OffloadDriver, SessionState
from repro.core.offload import OffloadTiming
from repro.core.system import HeterogeneousSystem, OffloadResult
from repro.errors import (
    DeadlockError,
    DegradedExecutionError,
    FaultInjectionError,
    LinkError,
    OffloadError,
    ProtocolError,
    SimulationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.kernels.base import Kernel
from repro.link.protocol import Command, Frame
from repro.obs.telemetry import get_telemetry
from repro.power.activity import ActivityProfile
from repro.power.energy import EnergyAccount
from repro.pulp.binary import KernelBinary
from repro.pulp.soc import SocState
from repro.sim.engine import Simulator, Timeout
from repro.units import mhz

#: The ladder's session modes, tried in order (then host fallback).
LADDER = ("initial", "re-arm", "reboot")

#: Exceptions the ladder recovers from (everything else propagates).
RECOVERABLE = (LinkError, ProtocolError, errors.TimeoutError,
               FaultInjectionError, OffloadError, SimulationError)


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the resilient runtime."""

    #: Wire-time budget per frame delivery (retransmissions included).
    op_timeout_s: float = 0.25
    #: How long the host waits for the accelerator to come up after START.
    boot_timeout_s: float = 5e-3
    #: Watchdog = max(floor, factor x expected compute time).
    watchdog_factor: float = 4.0
    watchdog_floor_s: float = 1e-3
    #: Exponential backoff between ladder attempts.
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    #: STATUS polls before declaring the control plane unreachable.
    status_polls: int = 4
    #: Frame retransmissions per delivery (the ladder's lowest rung).
    max_frame_attempts: int = 32

    def backoff_s(self, failure_index: int) -> float:
        """Backoff sleep after the ``failure_index``-th failed attempt."""
        return self.backoff_base_s * self.backoff_factor ** failure_index


def await_end_of_computation(compute_time: float, hang: bool) -> float:
    """Wait for EOC as a two-process DES; returns the wait duration.

    The host process blocks on the EOC event; the accelerator process
    triggers it after *compute_time* — unless *hang* is set, in which
    case the accelerator blocks forever on an event nobody triggers and
    the drained queue surfaces as a clean
    :class:`~repro.errors.DeadlockError` (never an infinite loop).
    """
    simulator = Simulator()
    eoc = simulator.event("end-of-computation")
    stuck = simulator.event("never-triggered")

    def accelerator():
        if hang:
            yield stuck  # deadlocked barrier: EOC never raised
        yield Timeout(compute_time)
        eoc.trigger()

    def host():
        yield eoc

    simulator.add_process(accelerator(), "accelerator")
    simulator.add_process(host(), "host-eoc-wait")
    return simulator.run_all()


class ResilientDriver(OffloadDriver):
    """An :class:`OffloadDriver` that survives injected faults.

    ``offload`` runs the full functional wire path (bytes through the
    protocol into L2, kernel computes, results verified) under a
    :class:`~repro.faults.injector.FaultInjector`, recovering through
    the escalation ladder and pricing every recovery action through the
    calibrated cost models.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 1,
                 policy: Optional[RetryPolicy] = None,
                 system: Optional[HeterogeneousSystem] = None,
                 fallback_enabled: bool = True):
        self.system = system if system is not None else HeterogeneousSystem()
        self.policy = policy if policy is not None else RetryPolicy()
        self.injector = FaultInjector(
            plan if plan is not None else FaultPlan.clean(), seed=seed)
        super().__init__(soc=self.system.soc, host=self.system.host,
                         link=self.system.link,
                         max_attempts=self.policy.max_frame_attempts,
                         channel=self.injector.channel())
        self.fallback_enabled = fallback_enabled
        self.recovery_actions: List[str] = []
        self._host_frequency = mhz(8)
        self._pulp_idle_power = 0.0
        self._attempt_extra_bytes = 0
        self._model_time = 0.0

    # -- cost helpers ------------------------------------------------------------

    def _wire_seconds(self, wire_bytes: int) -> float:
        clock = self.host.spi_clock(self._host_frequency)
        return wire_bytes * 8.0 / (self.link.width * clock)

    def _wire_power(self) -> float:
        clock = self.host.spi_clock(self._host_frequency)
        return (self.host.active_power(self._host_frequency)
                + self.link.active_power(clock) + self._pulp_idle_power)

    def _wait_power(self) -> float:
        """Host asleep, accelerator sitting at its idle floor."""
        return self.host.sleep_power + self._pulp_idle_power

    # -- hardened frame delivery --------------------------------------------------

    def _account(self, frame: Frame) -> None:
        super()._account(frame)
        entry = self._sender.log[-1]
        self._attempt_extra_bytes += max(0, entry.wire_bytes
                                         - frame.wire_size)
        if self._wire_seconds(entry.wire_bytes) > self.policy.op_timeout_s:
            raise errors.TimeoutError(
                f"frame delivery blew its {self.policy.op_timeout_s:g} s "
                f"budget ({entry.attempts} transmissions, "
                f"{entry.wire_bytes} wire bytes)")

    def _poll_status(self, expected: SocState) -> None:
        """Poll STATUS until the control plane reports *expected*."""
        frame = Frame(Command.STATUS, 0)
        states = list(SocState)
        for poll in range(self.policy.status_polls):
            delivered = self._sender.send(frame)
            self._account(frame)
            reply = self.injector.corrupt_status(
                self.soc.handle_frame(delivered))
            if len(reply) == 1 and reply[0] < len(states) \
                    and states[reply[0]] is expected:
                return
            if poll == 0:
                self.recovery_actions.append("status-retry")
        raise FaultInjectionError(
            f"STATUS never reported {expected.value} "
            f"after {self.policy.status_polls} polls")

    # -- the resilient offload ----------------------------------------------------

    def offload(self, kernel: Kernel, seed: int = 0,
                host_frequency: float = mhz(8), iterations: int = 1,
                double_buffered: bool = False) -> OffloadResult:
        """Offload *kernel* end to end, surviving the injected faults.

        Returns a normal :class:`~repro.core.system.OffloadResult` when
        the offload (eventually) succeeds, or a degraded one computed on
        the host model after the ladder is exhausted.  Raises
        :class:`~repro.errors.DegradedExecutionError` instead of falling
        back when ``fallback_enabled`` is False.
        """
        system = self.system
        self._host_frequency = host_frequency
        program = kernel.build_program()
        inputs = kernel.generate_inputs(seed)
        input_payload = kernel.serialize_inputs(inputs)
        outputs = kernel.compute(inputs)
        output_payload = kernel.serialize_outputs(outputs)
        binary = KernelBinary.from_program(program)

        # Analytic operating point (needed to price waits and waste).
        execution = system.omp.execute(program)
        activity = ActivityProfile.compute(
            cores_active=system.omp.threads,
            memory_intensity=execution.memory_intensity,
            name=kernel.name)
        point = system.envelope.solve(host_frequency, activity)
        if not point.accelerator_usable:
            raise OffloadError(
                f"no accelerator power budget left with the host at "
                f"{host_frequency / 1e6:.0f} MHz")
        power_model = self.soc.power_model
        self._pulp_idle_power = power_model.total_power(
            point.pulp_frequency, point.pulp_voltage, ActivityProfile.idle())

        # Brownout droops the operating point for the whole offload: the
        # FLL re-locks at a lower clock, compute stretches accordingly.
        droop = self.injector.brownout_droop()
        if droop < 1.0:
            pulp_frequency = point.pulp_frequency * droop
            pulp_voltage = power_model.table.voltage_for(pulp_frequency)
            point = replace(
                point, pulp_frequency=pulp_frequency,
                pulp_voltage=pulp_voltage,
                pulp_power=power_model.total_power(
                    pulp_frequency, pulp_voltage, activity))
            self.recovery_actions.append("dvfs-ride-through")
        compute_time = execution.wall_cycles / point.pulp_frequency
        watchdog_s = max(self.policy.watchdog_floor_s,
                         self.policy.watchdog_factor * compute_time)

        telemetry = get_telemetry()
        wasted_time = 0.0
        wasted_energy = 0.0
        failures = 0
        for mode in LADDER:
            start_wire_bytes = self.stats.wire_bytes
            start_time = self._model_time
            self._attempt_extra_bytes = 0
            try:
                read_back = self._attempt(
                    mode, binary, input_payload, output_payload,
                    compute_time, watchdog_s)
            except RECOVERABLE as exc:
                failures += 1
                attempt_bytes = self.stats.wire_bytes - start_wire_bytes
                lost_time = self._wire_seconds(attempt_bytes)
                lost_energy = lost_time * self._wire_power()
                # The timed waits an attempt charged (watchdog, boot
                # timeout) were already added to _model_time by _charge.
                lost_time += self._model_time - start_time
                lost_energy += (self._model_time - start_time) \
                    * self._wait_power()
                backoff = self.policy.backoff_s(failures - 1)
                lost_time += backoff
                lost_energy += backoff * self._wait_power()
                wasted_time += lost_time
                wasted_energy += lost_energy
                self._model_time = start_time + lost_time
                if telemetry.enabled:
                    telemetry.span(
                        f"attempt[{mode}]", "resilient", start_time,
                        lost_time, energy=lost_energy, outcome="failed",
                        error=type(exc).__name__, detail=str(exc))
                    telemetry.count("faults.attempts_failed")
                continue
            # Success: price the offload at the (possibly drooped)
            # operating point, then fold the recovery costs in.
            if self.stats.transmissions > self.stats.frames_sent \
                    and "retransmit" not in self.recovery_actions:
                self.recovery_actions.append("retransmit")
            retry_time = self._wire_seconds(self._attempt_extra_bytes)
            if retry_time > 0:
                wasted_time += retry_time
                wasted_energy += retry_time * self._wire_power()
            timing = system.cost_model.offload_timing(
                binary_bytes=binary.image_bytes,
                input_bytes=len(input_payload),
                output_bytes=len(output_payload),
                compute_cycles=execution.wall_cycles,
                pulp_frequency=point.pulp_frequency,
                pulp_voltage=point.pulp_voltage,
                activity=activity,
                host_frequency=host_frequency,
                iterations=iterations,
                double_buffered=double_buffered)
            if wasted_time > 0:
                timing.total_time += wasted_time
                timing.energy.add("recovery", wasted_time,
                                  wasted_energy / wasted_time)
            if telemetry.enabled:
                telemetry.span(
                    f"attempt[{mode}]", "resilient", self._model_time,
                    timing.total_time - wasted_time, outcome="success")
                telemetry.count("faults.attempts_succeeded")
            self._model_time += timing.total_time - wasted_time
            return OffloadResult(
                kernel_name=kernel.name,
                outputs=outputs,
                verified=read_back == output_payload,
                execution=execution,
                envelope=point,
                timing=timing,
                host_baseline=system.run_on_host(kernel),
                recovery_actions=tuple(self.recovery_actions),
                fault_attempts=failures,
                wasted_time_s=wasted_time,
                wasted_energy_j=wasted_energy)

        # Ladder exhausted.
        self.recovery_actions.append("host-fallback")
        if not self.fallback_enabled:
            raise DegradedExecutionError(
                f"{kernel.name}: recovery ladder exhausted after "
                f"{failures} attempts and host fallback is disabled")
        return self._host_fallback(
            kernel, outputs, execution, point, iterations,
            host_frequency, failures, wasted_time, wasted_energy)

    # -- one ladder attempt -------------------------------------------------------

    def _charge(self, duration: float) -> None:
        """Advance model time across a timed wait inside an attempt."""
        self._model_time += duration

    def _attempt(self, mode: str, binary: KernelBinary,
                 input_payload: bytes, output_payload: bytes,
                 compute_time: float, watchdog_s: float) -> bytes:
        """One pass through the session; raises on any injected failure."""
        if mode == "re-arm":
            # Keep the resident binary; resend inputs and START.
            self.recovery_actions.append("re-arm")
            self.soc.reset()
            if self.state is not SessionState.IDLE and self._region is not None:
                self.state = SessionState.LOADED
            else:
                self.state = SessionState.IDLE
        elif mode == "reboot":
            self.recovery_actions.append("reboot")
            self.soc.power_cycle()
            self.state = SessionState.IDLE
            self._region = None
        if self.state is SessionState.IDLE:
            self.load(binary, input_payload, len(output_payload))
        self.arm(input_payload)
        if self.injector.boot_fails():
            # The host polls for RUNNING until the boot timeout expires.
            self._charge(self.policy.boot_timeout_s)
            self.state = SessionState.LOADED
            self.soc.reset()
            raise FaultInjectionError(
                f"accelerator never booted within "
                f"{self.policy.boot_timeout_s:g} s of START")
        self.start()
        self._poll_status(SocState.RUNNING)
        if self.injector.kernel_hangs():
            try:
                await_end_of_computation(compute_time, hang=True)
            except DeadlockError as exc:
                # The watchdog fires after its full period.
                self._charge(watchdog_s)
                self.recovery_actions.append("watchdog")
                self.state = SessionState.LOADED
                self.soc.reset()
                raise errors.TimeoutError(
                    f"watchdog fired after {watchdog_s:g} s "
                    f"(RUNNING, no EOC): {exc}") from exc
        else:
            await_end_of_computation(compute_time, hang=False)
        return self.complete(output_payload)

    # -- host fallback ------------------------------------------------------------

    def _host_fallback(self, kernel: Kernel, outputs, execution, point,
                       iterations: int, host_frequency: float,
                       failures: int, wasted_time: float,
                       wasted_energy: float) -> OffloadResult:
        """Execute the region on the host (OpenMP ``target`` fallback).

        OpenMP 4.0 semantics: when the device is unavailable the target
        region executes on the host.  Latency and energy come from the
        Cortex-M cost model at the current host clock; the wasted
        offload attempts stay on the bill.
        """
        host_run = self.system.run_on_host(kernel, frequency=host_frequency)
        energy = EnergyAccount()
        energy.add("host-compute", iterations * host_run.time, host_run.power)
        if wasted_time > 0:
            energy.add("recovery", wasted_time, wasted_energy / wasted_time)
        timing = OffloadTiming(
            iterations=iterations,
            double_buffered=False,
            binary_time=0.0,
            boot_time=0.0,
            input_time=0.0,
            output_time=0.0,
            compute_time=host_run.time,
            sync_time=0.0,
            total_time=iterations * host_run.time + wasted_time,
            ideal_time=iterations * host_run.time,
            energy=energy)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.span(
                "host-fallback", "resilient", self._model_time,
                timing.total_time - wasted_time,
                energy=iterations * host_run.time * host_run.power,
                outcome="host-fallback")
            telemetry.count("faults.fallbacks")
        self._model_time += timing.total_time - wasted_time
        return OffloadResult(
            kernel_name=kernel.name,
            outputs=outputs,
            verified=True,  # computed directly on the host
            execution=execution,
            envelope=point,
            timing=timing,
            host_baseline=host_run,
            degraded=True,
            fallback_reason=self.injector.events[-1]
            if self.injector.events else "recovery exhausted",
            recovery_actions=tuple(self.recovery_actions),
            fault_attempts=failures,
            wasted_time_s=wasted_time,
            wasted_energy_j=wasted_energy)
