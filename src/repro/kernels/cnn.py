"""Convolutional neural network kernel (and its approximated variant).

A CConvNet-style fixed-point ConvNet on a 32x32 Q1.15 input image:

* conv1: 5x5, 1 -> 8 maps (28x28), tanh;
* pool1: 2x2 average (14x14);
* conv2: 5x5, 8 -> 16 maps with a LeNet-style sparse connection table
  (60 % of input connections), tanh, (10x10);
* pool2: 2x2 average (5x5);
* fc1: 400 -> 48, tanh;
* fc2: 48 -> 10 class scores in Q16.16 (the 40-byte output of Table I).

The **approximated** variant applies the two standard embedded
approximations of the CConvNet line: conv2 perforation (40 % of output
pixels are skipped and filled from their left neighbour) and a
hard-tanh (clip) activation replacing the tanh lookup.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, addr, alu, load, store
from repro.kernels.base import Arrays, Kernel
from repro.kernels.fixmath import (
    Q15_ONE,
    TANH_TABLE_BYTES,
    hardtanh_q15,
    tanh_q15,
)

IMAGE = 32
CONV1_MAPS = 8
CONV2_MAPS = 16
KERNEL_SIZE = 5
FC_HIDDEN = 48
CLASSES = 10
#: LeNet-style sparse connectivity of conv2 (fraction of input maps each
#: output map connects to).
CONV2_CONNECTIVITY = 0.6
#: Fraction of conv2 output pixels skipped by the approximated variant.
PERFORATION = 0.4

_CONV1_OUT = IMAGE - KERNEL_SIZE + 1            # 28
_POOL1_OUT = _CONV1_OUT // 2                    # 14
_CONV2_OUT = _POOL1_OUT - KERNEL_SIZE + 1       # 10
_POOL2_OUT = _CONV2_OUT // 2                    # 5
_FC_IN = CONV2_MAPS * _POOL2_OUT * _POOL2_OUT   # 400


def _conv2d_valid(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Exact integer 'valid' correlation of one 2-D map."""
    out_h = image.shape[0] - weights.shape[0] + 1
    out_w = image.shape[1] - weights.shape[1] + 1
    acc = np.zeros((out_h, out_w), dtype=np.result_type(image, weights))
    for dy in range(weights.shape[0]):
        for dx in range(weights.shape[1]):
            acc += weights[dy, dx] * image[dy:dy + out_h, dx:dx + out_w]
    return acc


def _avg_pool(maps: np.ndarray) -> np.ndarray:
    """2x2 average pooling with a right shift (maps: [m, h, w])."""
    return (maps[:, 0::2, 0::2] + maps[:, 0::2, 1::2]
            + maps[:, 1::2, 0::2] + maps[:, 1::2, 1::2]) >> 2


def conv2_connection_table() -> np.ndarray:
    """Deterministic sparse connection table: [out_map, in_map] booleans
    with CONV2_CONNECTIVITY of the entries set, LeNet-style."""
    table = np.zeros((CONV2_MAPS, CONV1_MAPS), dtype=bool)
    keep = int(round(CONV1_MAPS * CONV2_CONNECTIVITY))
    for out_map in range(CONV2_MAPS):
        for offset in range(keep):
            table[out_map, (out_map + offset) % CONV1_MAPS] = True
    return table


def perforation_mask() -> np.ndarray:
    """Deterministic conv2 perforation mask ([h, w] booleans, True =
    computed). A 2-in-5 diagonal skip pattern gives PERFORATION = 0.4."""
    ys, xs = np.mgrid[0:_CONV2_OUT, 0:_CONV2_OUT]
    return ((ys * _CONV2_OUT + xs) % 5) >= 2


class CnnKernel(Kernel):
    """Fixed-point ConvNet classifier."""

    field = "learning / vision"

    def __init__(self, approximate: bool = False):
        self.approximate = bool(approximate)
        self.name = "cnn (approx)" if approximate else "cnn"
        self.description = ("Convolutional Neural Network (approximated)"
                            if approximate else "Convolutional Neural Network")
        self._connections = conv2_connection_table()
        self._mask = perforation_mask()

    # -- functional path ---------------------------------------------------------

    def generate_inputs(self, seed: int = 0) -> Arrays:
        rng = np.random.default_rng(seed)
        image = rng.integers(-Q15_ONE // 2, Q15_ONE // 2,
                             size=(IMAGE, IMAGE)).astype(np.int16)
        scale = Q15_ONE // 8
        weights = {
            "w1": rng.integers(-scale, scale,
                               size=(CONV1_MAPS, KERNEL_SIZE, KERNEL_SIZE)
                               ).astype(np.int16),
            "b1": rng.integers(-scale, scale, size=CONV1_MAPS).astype(np.int16),
            "w2": rng.integers(-scale, scale,
                               size=(CONV2_MAPS, CONV1_MAPS,
                                     KERNEL_SIZE, KERNEL_SIZE)).astype(np.int16),
            "b2": rng.integers(-scale, scale, size=CONV2_MAPS).astype(np.int16),
            "w3": rng.integers(-scale, scale,
                               size=(FC_HIDDEN, _FC_IN)).astype(np.int16),
            "b3": rng.integers(-scale, scale, size=FC_HIDDEN).astype(np.int16),
            "w4": rng.integers(-scale, scale,
                               size=(CLASSES, FC_HIDDEN)).astype(np.int16),
            "b4": rng.integers(-scale, scale, size=CLASSES).astype(np.int16),
        }
        return {"image": image, **weights}

    def _activation(self, x: np.ndarray) -> np.ndarray:
        if self.approximate:
            return hardtanh_q15(x)
        return tanh_q15(x)

    def _forward(self, inputs: Arrays, activation) -> np.ndarray:
        image = inputs["image"].astype(np.int64)
        # conv1 + activation
        conv1 = np.stack([
            (_conv2d_valid(image, inputs["w1"][m].astype(np.int64)) >> 15)
            + inputs["b1"][m]
            for m in range(CONV1_MAPS)])
        act1 = activation(conv1)
        pool1 = _avg_pool(act1)
        # conv2 over the sparse connection table
        conv2 = np.zeros((CONV2_MAPS, _CONV2_OUT, _CONV2_OUT), dtype=np.int64)
        for out_map in range(CONV2_MAPS):
            acc = np.zeros((_CONV2_OUT, _CONV2_OUT), dtype=np.int64)
            for in_map in range(CONV1_MAPS):
                if not self._connections[out_map, in_map]:
                    continue
                acc += _conv2d_valid(pool1[in_map],
                                     inputs["w2"][out_map, in_map].astype(np.int64))
            conv2[out_map] = (acc >> 15) + inputs["b2"][out_map]
        if self.approximate:
            conv2 = self._perforate(conv2)
        act2 = activation(conv2)
        pool2 = _avg_pool(act2)
        # fully connected layers
        flat = pool2.reshape(-1)
        hidden = ((inputs["w3"].astype(np.int64) @ flat) >> 15) \
            + inputs["b3"].astype(np.int64)
        hidden = activation(hidden)
        scores = ((inputs["w4"].astype(np.int64) @ hidden) >> 15) \
            + inputs["b4"].astype(np.int64)
        return (scores << 1).astype(np.int64)  # Q16.16

    def _perforate(self, conv2: np.ndarray) -> np.ndarray:
        """Fill skipped pixels from their left neighbour (first column
        pixels fall back to the value above, then to zero)."""
        result = conv2.copy()
        mask = self._mask
        for y in range(_CONV2_OUT):
            for x in range(_CONV2_OUT):
                if mask[y, x]:
                    continue
                if x > 0:
                    result[:, y, x] = result[:, y, x - 1]
                elif y > 0:
                    result[:, y, x] = result[:, y - 1, x]
                else:
                    result[:, y, x] = 0
        return result

    def compute(self, inputs: Arrays) -> Arrays:
        self._check_shape(inputs["image"], (IMAGE, IMAGE), "image")
        scores = self._forward(inputs, self._activation)
        return {"scores": scores.astype(np.int32),
                "label": np.array([int(np.argmax(scores))], dtype=np.int32)}

    def reference(self, inputs: Arrays) -> Arrays:
        """Float forward pass with the exact (non-LUT) activations."""
        float_inputs = {k: v.astype(np.float64) / Q15_ONE
                        for k, v in inputs.items()}
        image = float_inputs["image"]

        def activation(x):
            if self.approximate:
                return np.clip(x, -1.0, 1.0)
            return np.tanh(x)

        conv1 = np.stack([
            _conv2d_valid(image, float_inputs["w1"][m]) + float_inputs["b1"][m]
            for m in range(CONV1_MAPS)])
        act1 = activation(conv1)
        pool1 = (act1[:, 0::2, 0::2] + act1[:, 0::2, 1::2]
                 + act1[:, 1::2, 0::2] + act1[:, 1::2, 1::2]) / 4
        conv2 = np.zeros((CONV2_MAPS, _CONV2_OUT, _CONV2_OUT))
        for out_map in range(CONV2_MAPS):
            for in_map in range(CONV1_MAPS):
                if self._connections[out_map, in_map]:
                    conv2[out_map] += _conv2d_valid(
                        pool1[in_map], float_inputs["w2"][out_map, in_map])
            conv2[out_map] += float_inputs["b2"][out_map]
        act2 = activation(conv2)
        pool2 = (act2[:, 0::2, 0::2] + act2[:, 0::2, 1::2]
                 + act2[:, 1::2, 0::2] + act2[:, 1::2, 1::2]) / 4
        flat = pool2.reshape(-1)
        hidden = activation(float_inputs["w3"] @ flat + float_inputs["b3"])
        scores = float_inputs["w4"] @ hidden + float_inputs["b4"]
        return {"scores": scores,
                "label": np.array([int(np.argmax(scores))], dtype=np.int32)}

    # -- marshalling ---------------------------------------------------------------

    def serialize_inputs(self, inputs: Arrays) -> bytes:
        return inputs["image"].tobytes()

    def serialize_outputs(self, outputs: Arrays) -> bytes:
        return outputs["scores"].tobytes()

    # -- architectural path -----------------------------------------------------------

    def weight_bytes(self) -> int:
        """Model constants shipped in the binary."""
        conv1 = CONV1_MAPS * (KERNEL_SIZE ** 2 + 1) * 2
        kept = int(round(CONV1_MAPS * CONV2_CONNECTIVITY))
        conv2 = CONV2_MAPS * kept * KERNEL_SIZE ** 2 * 2 + CONV2_MAPS * 2
        fc1 = FC_HIDDEN * (_FC_IN + 1) * 2
        fc2 = CLASSES * (FC_HIDDEN + 1) * 2
        lut = 0 if self.approximate else TANH_TABLE_BYTES
        return conv1 + conv2 + fc1 + fc2 + lut

    def _tap_block(self) -> Block:
        """One convolution tap: per-product renormalizing fixed MAC."""
        return Block([
            load(DType.I16), load(DType.I16),
            alu(OpKind.MUL, DType.I16),
            alu(OpKind.SHIFT, DType.I32),
            alu(OpKind.ADD, DType.I32),
            addr(count=2),
        ])

    def _activation_block(self) -> Block:
        if self.approximate:
            return Block([alu(OpKind.MINMAX, DType.I32, count=2),
                          store(DType.I16), addr()])
        return Block([
            alu(OpKind.ABS, DType.I32), alu(OpKind.SHIFT, DType.I32, count=2),
            load(DType.I16, count=2),
            alu(OpKind.SUB, DType.I32), alu(OpKind.MUL, DType.I32),
            alu(OpKind.ADD, DType.I32), alu(OpKind.SELECT, DType.I32),
            store(DType.I16), addr(),
        ])

    def _pool_row(self, columns: int) -> Loop:
        return Loop(columns, [Block([
            load(DType.I16, count=4),
            alu(OpKind.ADD, DType.I32, count=3),
            alu(OpKind.SHIFT, DType.I32),
            store(DType.I16), addr(count=2),
        ])], name="pool-cols")

    def build_program(self) -> Program:
        taps = KERNEL_SIZE ** 2
        kept = int(round(CONV1_MAPS * CONV2_CONNECTIVITY))
        conv2_keep = 1.0 - (PERFORATION if self.approximate else 0.0)
        conv1 = Loop(CONV1_MAPS * _CONV1_OUT, [
            Loop(_CONV1_OUT, [
                Block([alu(OpKind.MOVE, DType.I32)]),
                Loop(taps, [self._tap_block()], name="taps"),
                self._activation_block(),
            ], name="conv1-cols"),
        ], parallelizable=True, name="conv1")
        pool1 = Loop(CONV1_MAPS * _POOL1_OUT, [self._pool_row(_POOL1_OUT)],
                     parallelizable=True, name="pool1")
        conv2_cols = max(1, int(round(_CONV2_OUT * conv2_keep)))
        conv2_body: List = [
            Block([alu(OpKind.MOVE, DType.I32)]),
            Loop(int(taps * kept), [self._tap_block()], name="taps-x-maps"),
            self._activation_block(),
        ]
        conv2 = Loop(CONV2_MAPS * _CONV2_OUT, [
            Loop(conv2_cols, conv2_body, name="conv2-cols"),
        ], parallelizable=True, name="conv2")
        if self.approximate:
            # Neighbour-fill for the perforated pixels.
            fill = Loop(CONV2_MAPS * _CONV2_OUT, [
                Loop(_CONV2_OUT - conv2_cols, [Block([
                    load(DType.I16), store(DType.I16), addr(count=2),
                ])], name="fill-cols"),
            ], parallelizable=True, name="perforation-fill")
            conv2_nodes = [conv2, fill]
        else:
            conv2_nodes = [conv2]
        pool2 = Loop(CONV2_MAPS * _POOL2_OUT, [self._pool_row(_POOL2_OUT)],
                     parallelizable=True, name="pool2")
        fc1 = Loop(FC_HIDDEN, [
            Block([alu(OpKind.MOVE, DType.I32)]),
            Loop(_FC_IN, [self._tap_block()], name="fc1-inner"),
            self._activation_block(),
        ], parallelizable=True, name="fc1")
        fc2 = Loop(CLASSES, [
            Block([alu(OpKind.MOVE, DType.I32)]),
            Loop(FC_HIDDEN, [self._tap_block()], name="fc2-inner"),
            Block([alu(OpKind.SHIFT, DType.I32), store(DType.I32), addr()]),
        ], parallelizable=True, name="fc2")
        body = [conv1, pool1, *conv2_nodes, pool2, fc1, fc2]
        buffers = (IMAGE * IMAGE * 2
                   + CONV1_MAPS * _CONV1_OUT ** 2 * 2
                   + CONV1_MAPS * _POOL1_OUT ** 2 * 2
                   + CONV2_MAPS * _CONV2_OUT ** 2 * 2
                   + CONV2_MAPS * _POOL2_OUT ** 2 * 2
                   + FC_HIDDEN * 2 + CLASSES * 4)
        return Program(
            name=self.name,
            body=body,
            input_bytes=IMAGE * IMAGE * 2,
            output_bytes=CLASSES * 4,
            const_bytes=self.weight_bytes(),
            buffer_bytes=buffers,
        )
