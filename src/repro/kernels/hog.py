"""Histogram of Oriented Gradients feature descriptor.

A fixed-point port of the VLFeat/Dalal-Triggs HOG pipeline on a 128x128
8-bit image, cell size 8, 2x2-cell blocks, 9 unsigned orientation bins:

1. **gradients** — central differences, then CORDIC vectoring (24
   iterations, on software 64-bit words) gives magnitude and angle in
   Q16.16;
2. **blocks** — every 2x2-cell block (15x15 of them, 16x16 pixels each)
   re-accumulates its Gaussian-weighted cell histograms with bilinear
   orientation interpolation, the accumulators being the paper's
   "SW-emulated 64-bit variables";
3. **normalization** — per block: L2 energy, Newton reciprocal square
   root, scaling and the 0.2 clipping of Dalal-Triggs;
4. **descriptor** — each cell emits the four block-normalized copies of
   its 9 bins (36 values), 16x16x36 Q16.16 words = the 36 kB output of
   Table I (boundary cells replicate their nearest available copy).

HOG "has the interesting property of needing a very high dynamic range,
and is thus ill-suited to fixed-point implementation; to ensure accuracy
is kept at an acceptable level, we had to employ 32-bit fixed-point
numbers and SW-emulated 64-bit variables for accumulation" — the source
of its architectural *slowdown* in Figure 4, which this kernel's
MUL64/ADD64-heavy IR reproduces.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import KernelError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, VOp, addr, alu, load, store
from repro.kernels.base import Arrays, Kernel
from repro.kernels.fixmath import (
    CORDIC_ITERATIONS,
    Q15_ONE,
    Q16_ONE,
    cordic_vectoring,
    rsqrt_q16,
)

IMAGE = 128
CELL = 8
BINS = 9
CELLS = IMAGE // CELL              # 16
BLOCKS = CELLS - 1                 # 15
BLOCK_PIXELS = (2 * CELL) ** 2     # 256
DESCRIPTOR_DIMS = 4 * BINS         # 36
#: Dalal-Triggs clipping threshold (0.2) in Q16.16.
CLIP_Q16 = int(0.2 * Q16_ONE)
#: Normalization epsilon in Q16.16.
EPSILON_Q16 = 1 << 8

_PI_Q16 = int(round(math.pi * Q16_ONE))


def gaussian_window_q15() -> np.ndarray:
    """16x16 Gaussian block window, sigma = half block width, Q1.15."""
    side = 2 * CELL
    center = (side - 1) / 2.0
    sigma = side / 2.0
    ys, xs = np.mgrid[0:side, 0:side]
    window = np.exp(-((ys - center) ** 2 + (xs - center) ** 2)
                    / (2 * sigma ** 2))
    return np.round(window * Q15_ONE).astype(np.int64)


class HogKernel(Kernel):
    """HOG feature extraction in 32-bit fixed point."""

    name = "hog"
    description = "Histogram of Oriented Gradients feature descriptor"
    field = "vision"

    def __init__(self):
        self._window = gaussian_window_q15()

    # -- functional path ---------------------------------------------------------

    def generate_inputs(self, seed: int = 0) -> Arrays:
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 256, size=(IMAGE, IMAGE))
        # Low-pass the noise a little so gradients have structure.
        smooth = (base
                  + np.roll(base, 1, axis=0) + np.roll(base, -1, axis=0)
                  + np.roll(base, 1, axis=1) + np.roll(base, -1, axis=1)) // 5
        return {"image": smooth.astype(np.uint8)}

    def _gradients(self, image: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Magnitude and angle (Q16.16) per pixel, zero at the border.

        The angle comes from CORDIC vectoring; the magnitude from an
        integer Newton square root of the 64-bit squared norm (the
        CORDIC gain-correction path loses too much precision at the
        dynamic range HOG needs — this is the paper's "SW-emulated
        64-bit" hotspot).
        """
        img = image.astype(np.int64)
        dx = np.zeros_like(img)
        dy = np.zeros_like(img)
        dx[:, 1:-1] = img[:, 2:] - img[:, :-2]
        dy[1:-1, :] = img[2:, :] - img[:-2, :]
        _, angle = cordic_vectoring(dx << 16, dy << 16, CORDIC_ITERATIONS)
        norm_q16 = (dx * dx + dy * dy) << 16
        positive = norm_q16 > 0
        magnitude = np.zeros_like(norm_q16)
        if np.any(positive):
            values = norm_q16[positive]
            # sqrt(v) = v * rsqrt(v), all Q16.16 Newton arithmetic.
            magnitude[positive] = (values * rsqrt_q16(values, iterations=5)) >> 16
        border = np.zeros_like(img, dtype=bool)
        border[0, :] = border[-1, :] = True
        border[:, 0] = border[:, -1] = True
        magnitude = np.where(border, 0, magnitude)
        angle = np.where(border, 0, angle)
        return magnitude, angle

    @staticmethod
    def _spatial_weights_q16(side: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-coordinate bilinear weights towards the low cell (Q16.16).

        Cell centers sit at 3.5 and 11.5 pixels inside the 16-pixel
        block; weight ramps linearly between them and clamps outside
        (Dalal-Triggs per-block trilinear interpolation).
        """
        position_q16 = (np.arange(side, dtype=np.int64) << 16) + (1 << 15)
        low_center = (7 << 16) >> 1          # 3.5 in Q16.16
        t = (position_q16 - low_center) >> 3  # divide by the 8-pixel pitch
        w_high = np.clip(t, 0, Q16_ONE)
        w_low = Q16_ONE - w_high
        return w_low, w_high

    def _block_histogram(self, magnitude: np.ndarray, angle: np.ndarray,
                         block_y: int, block_x: int) -> np.ndarray:
        """Gaussian-weighted, trilinearly interpolated 2x2x9 histogram of
        one block (software 64-bit accumulators)."""
        y0 = block_y * CELL
        x0 = block_x * CELL
        side = 2 * CELL
        mag = magnitude[y0:y0 + side, x0:x0 + side]
        ang = angle[y0:y0 + side, x0:x0 + side]
        # Fold angle into [0, pi) (unsigned orientations).
        folded = np.where(ang < 0, ang + _PI_Q16, ang)
        folded = np.where(folded >= _PI_Q16, folded - _PI_Q16, folded)
        # t = angle * BINS / pi in Q16.16.
        t = (folded * BINS << 16) // _PI_Q16
        bin_low = (t >> 16) % BINS
        frac = t & (Q16_ONE - 1)
        weighted = (mag * self._window) >> 15
        orientation_parts = (
            (bin_low, (weighted * (Q16_ONE - frac)) >> 16),
            ((bin_low + 1) % BINS, (weighted * frac) >> 16),
        )
        w_low, w_high = self._spatial_weights_q16(side)
        wy = np.stack([w_low, w_high])   # [cell_y, pixel_y]
        wx = np.stack([w_low, w_high])
        histogram = np.zeros((4, BINS), dtype=np.int64)
        for bins, contribution in orientation_parts:
            for cell_y in range(2):
                for cell_x in range(2):
                    spatial = (wy[cell_y][:, None] * wx[cell_x][None, :]) >> 16
                    value = (contribution * spatial) >> 16
                    np.add.at(histogram[2 * cell_y + cell_x],
                              bins.ravel(), value.ravel())
        return histogram

    def compute(self, inputs: Arrays) -> Arrays:
        image = inputs["image"]
        self._check_shape(image, (IMAGE, IMAGE), "image")
        if image.dtype != np.uint8:
            raise KernelError("hog expects a uint8 image")
        magnitude, angle = self._gradients(image)
        # descriptor[cy, cx, slot, bin]; slot = cell position in block.
        descriptor = np.zeros((CELLS, CELLS, 4, BINS), dtype=np.int64)
        filled = np.zeros((CELLS, CELLS, 4), dtype=bool)
        for block_y in range(BLOCKS):
            for block_x in range(BLOCKS):
                histogram = self._block_histogram(magnitude, angle,
                                                  block_y, block_x)
                energy = ((histogram * histogram) >> 16).sum() + EPSILON_Q16
                norm = rsqrt_q16(np.array([energy]))[0]
                normalized = np.minimum((histogram * norm) >> 16, CLIP_Q16)
                for slot in range(4):
                    cy = block_y + slot // 2
                    cx = block_x + slot % 2
                    # The cell's position inside this block indexes the
                    # descriptor slot (top-left block -> slot 3, etc).
                    descriptor[cy, cx, 3 - slot] = normalized[slot]
                    filled[cy, cx, 3 - slot] = True
        self._fill_boundary(descriptor, filled)
        return {"descriptor": descriptor.astype(np.int32)}

    @staticmethod
    def _fill_boundary(descriptor: np.ndarray, filled: np.ndarray) -> None:
        """Boundary cells belong to fewer than four blocks; replicate the
        nearest available normalized copy into the empty slots."""
        for cy in range(CELLS):
            for cx in range(CELLS):
                available = [s for s in range(4) if filled[cy, cx, s]]
                if not available:
                    continue
                source = descriptor[cy, cx, available[0]]
                for slot in range(4):
                    if not filled[cy, cx, slot]:
                        descriptor[cy, cx, slot] = source

    def reference(self, inputs: Arrays) -> Arrays:
        """Floating-point HOG with the same block structure."""
        image = inputs["image"].astype(np.float64)
        dx = np.zeros_like(image)
        dy = np.zeros_like(image)
        dx[:, 1:-1] = image[:, 2:] - image[:, :-2]
        dy[1:-1, :] = image[2:, :] - image[:-2, :]
        magnitude = np.hypot(dx, dy)
        angle = np.arctan2(dy, dx)
        magnitude[0, :] = magnitude[-1, :] = 0
        magnitude[:, 0] = magnitude[:, -1] = 0
        window = gaussian_window_q15() / Q15_ONE
        descriptor = np.zeros((CELLS, CELLS, 4, BINS))
        filled = np.zeros((CELLS, CELLS, 4), dtype=bool)
        side = 2 * CELL
        positions = np.arange(side) + 0.5
        w_high_1d = np.clip((positions - 3.5) / 8.0, 0.0, 1.0)
        w_low_1d = 1.0 - w_high_1d
        wy = np.stack([w_low_1d, w_high_1d])
        wx = np.stack([w_low_1d, w_high_1d])
        for block_y in range(BLOCKS):
            for block_x in range(BLOCKS):
                y0, x0 = block_y * CELL, block_x * CELL
                mag = magnitude[y0:y0 + side, x0:x0 + side] * window
                ang = angle[y0:y0 + side, x0:x0 + side] % math.pi
                t = ang * BINS / math.pi
                bin_low = np.floor(t).astype(int) % BINS
                frac = t - np.floor(t)
                histogram = np.zeros((4, BINS))
                for bins, contribution in ((bin_low, mag * (1 - frac)),
                                           ((bin_low + 1) % BINS, mag * frac)):
                    for cell_y in range(2):
                        for cell_x in range(2):
                            spatial = wy[cell_y][:, None] * wx[cell_x][None, :]
                            np.add.at(histogram[2 * cell_y + cell_x],
                                      bins.ravel(),
                                      (contribution * spatial).ravel())
                energy = (histogram ** 2).sum() + EPSILON_Q16 / Q16_ONE
                normalized = np.minimum(histogram / math.sqrt(energy), 0.2)
                for slot in range(4):
                    cy = block_y + slot // 2
                    cx = block_x + slot % 2
                    descriptor[cy, cx, 3 - slot] = normalized[slot]
                    filled[cy, cx, 3 - slot] = True
        for cy in range(CELLS):
            for cx in range(CELLS):
                available = [s for s in range(4) if filled[cy, cx, s]]
                if available:
                    for slot in range(4):
                        if not filled[cy, cx, slot]:
                            descriptor[cy, cx, slot] = \
                                descriptor[cy, cx, available[0]]
        return {"descriptor": descriptor}

    # -- marshalling ---------------------------------------------------------------

    def serialize_inputs(self, inputs: Arrays) -> bytes:
        return inputs["image"].tobytes()

    def serialize_outputs(self, outputs: Arrays) -> bytes:
        return outputs["descriptor"].tobytes()

    # -- architectural path -----------------------------------------------------------

    def build_program(self) -> Program:
        # Phase 1: gradients + CORDIC per pixel (parallel rows).
        cordic_iteration = Block([
            VOp(OpKind.SHIFT64, DType.I32, count=2),
            VOp(OpKind.ADD64, DType.I32, count=3),   # x, y, angle updates
            alu(OpKind.CMP, DType.I32),
            alu(OpKind.SELECT, DType.I32),
            load(DType.I32),                         # angle table
            addr(),
        ])
        newton_iteration = Block([
            # y = y * (3 - v*y*y) / 2 on software 64-bit words.
            VOp(OpKind.MUL64, DType.I32, count=2),
            VOp(OpKind.SHIFT64, DType.I32, count=2),
            VOp(OpKind.ADD64, DType.I32),
        ])
        pixel_gradient = [
            Block([
                load(DType.I8, count=4),
                alu(OpKind.SUB, DType.I32, count=2),
                VOp(OpKind.SHIFT64, DType.I32, count=2),   # promote to Q16.16
                addr(count=2),
            ]),
            Loop(CORDIC_ITERATIONS, [cordic_iteration], name="cordic"),
            # Magnitude: 64-bit squared norm + Newton reciprocal sqrt.
            Block([
                VOp(OpKind.MUL64, DType.I32, count=2),     # dx^2, dy^2
                VOp(OpKind.ADD64, DType.I32),
                alu(OpKind.CMP, DType.I32),                # rsqrt seed
                alu(OpKind.SHIFT, DType.I32, count=2),
            ]),
            Loop(5, [newton_iteration], name="newton-sqrt"),
            Block([
                VOp(OpKind.MUL64, DType.I32),              # v * rsqrt(v)
                VOp(OpKind.SHIFT64, DType.I32),
                store(DType.I32, count=2),                 # mag, angle
                addr(count=2),
            ]),
        ]
        # The device loop runs over every pixel (borders are computed
        # with clamped neighbours and later masked), parallel over rows.
        gradients = Loop(IMAGE, [Loop(IMAGE, pixel_gradient,
                                      name="grad-cols")],
                         parallelizable=True, name="gradients")
        # Phase 2: block histogramming (parallel over block rows).
        pixel_binning = Block([
            load(DType.I32, count=2),                      # mag, angle
            load(DType.I16),                               # gaussian weight
            alu(OpKind.CMP, DType.I32), alu(OpKind.SELECT, DType.I32),
            alu(OpKind.ADD, DType.I32),                    # angle fold
            VOp(OpKind.MUL64, DType.I32, count=2),         # t, weighted mag
            VOp(OpKind.SHIFT64, DType.I32, count=2),
            alu(OpKind.SUB, DType.I32, count=3),           # 1-frac, 1-wy, 1-wx
            # Spatial bilinear weights (wy, wx per coordinate).
            VOp(OpKind.MUL64, DType.I32, count=2),
            VOp(OpKind.SHIFT64, DType.I32, count=2),
            alu(OpKind.MINMAX, DType.I32, count=2),        # clamp to [0, 1]
            # 2 orientation x 4 spatial contributions, each a Q16.16
            # multiply chain plus a software 64-bit accumulate.
            VOp(OpKind.MUL64, DType.I32, count=8),
            VOp(OpKind.SHIFT64, DType.I32, count=8),
            VOp(OpKind.ADD64, DType.I32, count=8),
            load(DType.I32, count=8), store(DType.I32, count=8),
            addr(count=5),
        ])
        blocks = Loop(BLOCKS, [
            Loop(BLOCKS, [
                Block([alu(OpKind.MOVE, DType.I32, count=8)]),
                Loop(BLOCK_PIXELS, [pixel_binning], name="block-pixels"),
                # Normalization: energy, rsqrt, scale + clip 36 values.
                Loop(DESCRIPTOR_DIMS, [Block([
                    load(DType.I32),
                    VOp(OpKind.MAC64, DType.I32),
                    addr(),
                ])], name="energy"),
                Block([
                    # 4 Newton iterations of rsqrt on 64-bit words.
                    VOp(OpKind.MUL64, DType.I32, count=8),
                    VOp(OpKind.SHIFT64, DType.I32, count=8),
                    VOp(OpKind.ADD64, DType.I32, count=4),
                    alu(OpKind.MOVE, DType.I32, count=6),
                ]),
                Loop(DESCRIPTOR_DIMS, [Block([
                    load(DType.I32),
                    VOp(OpKind.MUL64, DType.I32),
                    VOp(OpKind.SHIFT64, DType.I32),
                    alu(OpKind.MINMAX, DType.I32),
                    store(DType.I32),
                    addr(count=2),
                ])], name="scale"),
            ], name="block-cols"),
        ], parallelizable=True, name="blocks")
        # Phase 3: boundary replication (parallel over cell rows).
        boundary = Loop(CELLS, [Loop(CELLS * BINS, [Block([
            load(DType.I32), store(DType.I32), addr(count=2),
        ])], name="copy")], parallelizable=True, name="boundary")
        output_bytes = CELLS * CELLS * DESCRIPTOR_DIMS * 4
        # The device implementation is strip-mined: gradients and blocks
        # are processed in 16-row strips so the working set stays small
        # and the descriptor can overwrite the input region (the 64 kB L2
        # cannot hold binary + input + full gradient planes + output at
        # once — see OffloadManager's overlapped layout).
        strip_workspace = 2 * IMAGE * (2 * CELL) * 4 + BLOCKS * 4 * BINS * 8
        return Program(
            name=self.name,
            body=[gradients, blocks, boundary],
            input_bytes=IMAGE * IMAGE,
            output_bytes=output_bytes,
            const_bytes=(2 * CELL) ** 2 * 2        # gaussian window
            + CORDIC_ITERATIONS * 4                 # angle table
            + 20 * 1024,                            # atan/orientation LUTs
            buffer_bytes=strip_workspace,
        )
