"""The benchmark kernels of Table I.

Ten kernels from "linear algebra, learning and machine vision", each
implemented twice over:

* **functionally** — a real fixed-point computation on numpy arrays
  (``compute``), checked against a floating-point reference;
* **architecturally** — a loop-nest IR program (``build_program``) from
  which the ISA targets derive cycles, the baseline target derives
  Table I's RISC ops, and the OpenMP model derives parallel timing.

The kernels:

=================  ============================================  ==========
matmul (char)      8-bit integer matrix multiply                 linear alg
matmul (short)     16-bit integer matrix multiply                linear alg
matmul (fixed)     Q1.15 fixed-point matrix multiply             linear alg
strassen           Strassen recursion on char matrices           linear alg
svm (linear)       SVM classifier, linear kernel (libsvm port)   learning
svm (poly)         SVM classifier, polynomial kernel             learning
svm (RBF)          SVM classifier, radial basis function         learning
cnn                fixed-point convolutional network (CConvNet)  learning
cnn (approx)       approximated CNN (perforated convolutions)    learning
hog                histogram of oriented gradients (VLFeat)      vision
=================  ============================================  ==========
"""

from repro.kernels.base import Kernel, KernelResult
from repro.kernels.matmul import MatmulKernel
from repro.kernels.strassen import StrassenKernel
from repro.kernels.svm import SvmKernel
from repro.kernels.cnn import CnnKernel
from repro.kernels.hog import HogKernel
from repro.kernels.registry import (
    BENCHMARK_NAMES,
    all_kernels,
    kernel_by_name,
)

__all__ = [
    "Kernel",
    "KernelResult",
    "MatmulKernel",
    "StrassenKernel",
    "SvmKernel",
    "CnnKernel",
    "HogKernel",
    "BENCHMARK_NAMES",
    "all_kernels",
    "kernel_by_name",
]
