"""Structured synthetic data generators.

The kernels' built-in ``generate_inputs`` produce uniform noise, which
exercises the arithmetic but not the *semantics*.  These generators
produce data with structure, enabling semantic end-to-end tests: images
with edges and blobs whose HOG descriptors are predictable, and
prototype-based SVM problems the fixed-point classifier must actually
solve.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import KernelError
from repro.kernels.fixmath import Q15_ONE
from repro.kernels.svm import SvmKernel


def synthetic_image(size: int = 128, kind: str = "blobs",
                    seed: int = 0) -> np.ndarray:
    """A structured uint8 test image.

    Kinds: ``"gradient"`` (smooth horizontal ramp), ``"checker"``
    (8-pixel checkerboard: strong edges on a grid), ``"blobs"``
    (Gaussian bumps on a dark background, the classic detector food).
    """
    if size < 8:
        raise KernelError(f"image size too small: {size}")
    if kind == "gradient":
        row = np.linspace(0, 255, size)
        return np.tile(row, (size, 1)).astype(np.uint8)
    if kind == "checker":
        ys, xs = np.mgrid[0:size, 0:size]
        return (((ys // 8 + xs // 8) % 2) * 200 + 20).astype(np.uint8)
    if kind == "blobs":
        rng = np.random.default_rng(seed)
        image = np.full((size, size), 20.0)
        ys, xs = np.mgrid[0:size, 0:size]
        for _ in range(6):
            cy, cx = rng.uniform(0.15, 0.85, 2) * size
            sigma = rng.uniform(0.04, 0.1) * size
            amplitude = rng.uniform(120, 220)
            image += amplitude * np.exp(
                -((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma ** 2))
        return np.clip(image, 0, 255).astype(np.uint8)
    raise KernelError(f"unknown image kind {kind!r}")


def prototype_svm_problem(kernel: SvmKernel, seed: int = 0,
                          noise: float = 0.05
                          ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """A solvable classification problem for the SVM kernel.

    Each class gets one (or more) prototype support vectors; test
    vectors are noisy copies of prototypes.  With one-vs-rest alphas of
    +1 on own-class SVs and a small negative weight elsewhere, the
    decision argmax must recover the generating class — giving the
    fixed-point classifier a *semantic* pass/fail criterion, not just
    agreement with a float twin.

    Returns ``(inputs, true_labels)`` where ``inputs`` feeds
    :meth:`SvmKernel.compute`.
    """
    rng = np.random.default_rng(seed)
    classes = kernel.classes
    nsv = kernel.support_vectors
    d = kernel.dimensions
    if nsv < classes:
        raise KernelError("need at least one support vector per class")
    # Prototypes: dense random-sign patterns (near-orthogonal classes).
    # Density matters: the kernel evaluations normalize by 1/d, so a
    # sparse prototype's contrast would vanish into the Q1.15 grid for
    # the poly/RBF kernels.
    amplitude = Q15_ONE // 2
    signs = rng.choice((-1, 1), size=(classes, d))
    prototypes = (signs * amplitude).astype(np.int64)
    sv = np.zeros((nsv, d), dtype=np.int16)
    sv_class = np.zeros(nsv, dtype=np.int64)
    for i in range(nsv):
        c = i % classes
        jitter = rng.integers(-amplitude // 8, amplitude // 8 + 1, d)
        sv[i] = np.clip(prototypes[c] + jitter, -Q15_ONE, Q15_ONE - 1)
        sv_class[i] = c
    # One-vs-rest alphas over the shared support set.  The positive
    # mass is normalized per class: classes owning two support vectors
    # must not get twice the vote (RBF's high kernel baseline would
    # otherwise bias every decision towards them).
    counts = np.bincount(sv_class, minlength=classes)
    positive = Q15_ONE // 4
    negative = -positive // max(1, classes - 1)
    alpha = np.full((classes, nsv), negative, dtype=np.int16)
    for i in range(nsv):
        c = sv_class[i]
        alpha[c, i] = positive // counts[c]
    rho = np.zeros(classes, dtype=np.int16)
    # Test vectors: noisy prototypes, round-robin over classes.
    ntest = kernel.test_vectors
    x = np.zeros((ntest, d), dtype=np.int16)
    labels = np.zeros(ntest, dtype=np.int32)
    for t in range(ntest):
        c = t % classes
        jitter = rng.normal(0, noise * Q15_ONE, d)
        x[t] = np.clip(prototypes[c] + jitter, -Q15_ONE, Q15_ONE - 1)
        labels[t] = c
    inputs = {"sv": sv, "alpha": alpha, "rho": rho, "x": x}
    return inputs, labels


def classification_accuracy(kernel: SvmKernel, seed: int = 0,
                            noise: float = 0.05) -> float:
    """Fraction of prototype-problem test vectors classified correctly."""
    inputs, labels = prototype_svm_problem(kernel, seed, noise)
    predicted = kernel.compute(inputs)["labels"]
    return float((predicted == labels).mean())
