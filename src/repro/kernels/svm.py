"""Support Vector Machine classifier kernels (linear / polynomial / RBF).

A C port of the libsvm decision function on 16-bit fixed-point data, as
the paper describes ("the svm kernels are based on a C porting of libsvm;
they work on 16-bit fixed-point data").  The embedded configuration is a
16-class one-vs-rest classifier with a *shared* compacted support set —
the shape used by the classroom-occupancy application line the paper's
benchmarks come from — so the expensive part, the ``ntest x nsv`` kernel
evaluations over ``d``-dimensional Q1.15 vectors, is computed once and
reused by every class.

Decision function per class ``c`` and test vector ``x``::

    f_c(x) = sum_i alpha[c, i] * K(sv_i, x) - rho[c]

with ``K`` one of ``linear`` (dot), ``poly`` ((gamma*dot + coef0)^3) or
``rbf`` (exp(-gamma * ||sv - x||^2)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, VOp, addr, alu, load, store
from repro.kernels.base import Arrays, Kernel
from repro.kernels.fixmath import Q15_ONE, cube_q15, exp_neg_q

_KERNELS = ("linear", "poly", "RBF")


class SvmKernel(Kernel):
    """Multi-class SVM decision over Q1.15 feature vectors."""

    field = "learning / vision"

    #: gamma in Q1.15 (0.25) shared by poly and RBF.
    GAMMA_Q15 = Q15_ONE // 4
    #: coef0 in Q1.15 (0.125) for the polynomial kernel.
    COEF0_Q15 = Q15_ONE // 8

    def __init__(self, kernel: str = "linear", dimensions: int = 144,
                 support_vectors: int = 20, test_vectors: int = 24,
                 classes: int = 16):
        if kernel not in _KERNELS:
            raise KernelError(f"unknown SVM kernel {kernel!r}")
        if min(dimensions, support_vectors, test_vectors, classes) < 1:
            raise KernelError("all SVM dimensions must be positive")
        self.kernel = kernel
        self.dimensions = int(dimensions)
        self.support_vectors = int(support_vectors)
        self.test_vectors = int(test_vectors)
        self.classes = int(classes)
        self.name = f"svm ({kernel})"
        self.description = {
            "linear": "Support Vector Machine classifier (linear kernel)",
            "poly": "Support Vector Machine classifier (polynomial kernel)",
            "RBF": "Support Vector Machine classifier (radial basis function kernel)",
        }[kernel]

    # -- functional path ---------------------------------------------------------

    def generate_inputs(self, seed: int = 0) -> Arrays:
        rng = np.random.default_rng(seed)
        # Model: part of the binary; test vectors: the marshalled input.
        sv = rng.integers(-Q15_ONE // 2, Q15_ONE // 2,
                          size=(self.support_vectors, self.dimensions)
                          ).astype(np.int16)
        alpha = rng.integers(-Q15_ONE // 4, Q15_ONE // 4,
                             size=(self.classes, self.support_vectors)
                             ).astype(np.int16)
        rho = rng.integers(-Q15_ONE // 8, Q15_ONE // 8,
                           size=self.classes).astype(np.int16)
        x = rng.integers(-Q15_ONE // 2, Q15_ONE // 2,
                         size=(self.test_vectors, self.dimensions)
                         ).astype(np.int16)
        return {"sv": sv, "alpha": alpha, "rho": rho, "x": x}

    def _kernel_matrix_q15(self, sv: np.ndarray, x: np.ndarray) -> np.ndarray:
        """K[t, i] in Q1.15 (int64)."""
        sv64 = sv.astype(np.int64)
        x64 = x.astype(np.int64)
        if self.kernel == "linear" or self.kernel == "poly":
            # Per-product renormalized dot (each product shifted before
            # accumulation), then scaled by 1/d to stay in Q1.15 range.
            products = (x64[:, None, :] * sv64[None, :, :]) >> 15
            dots_q15 = products.sum(axis=2) // self.dimensions
            if self.kernel == "linear":
                return dots_q15
            scaled = (self.GAMMA_Q15 * dots_q15) >> 15
            shifted = scaled + self.COEF0_Q15
            return cube_q15(shifted)
        # RBF: squared distances, renormalized per term and scaled by 1/d.
        diffs = x64[:, None, :] - sv64[None, :, :]
        squares = (diffs * diffs) >> 15
        distance_q15 = squares.sum(axis=2) // self.dimensions
        exponent_q16 = (self.GAMMA_Q15 * distance_q15) >> 14  # Q16.16
        return exp_neg_q(exponent_q16)

    def compute(self, inputs: Arrays) -> Arrays:
        sv = inputs["sv"]
        alpha = inputs["alpha"]
        rho = inputs["rho"]
        x = inputs["x"]
        self._check_shape(sv, (self.support_vectors, self.dimensions), "sv")
        self._check_shape(alpha, (self.classes, self.support_vectors), "alpha")
        self._check_shape(x, (self.test_vectors, self.dimensions), "x")
        kernel_q15 = self._kernel_matrix_q15(sv, x)
        # decisions[t, c] = sum_i alpha[c, i] * K[t, i] - rho[c], Q16.16.
        decisions_q30 = kernel_q15 @ alpha.astype(np.int64).T
        decisions_q16 = (decisions_q30 >> 14) - (rho.astype(np.int64) << 1)
        labels = np.argmax(decisions_q16, axis=1).astype(np.int32)
        return {
            "decisions": decisions_q16.astype(np.int32),
            "labels": labels,
        }

    def reference(self, inputs: Arrays) -> Arrays:
        sv = inputs["sv"].astype(np.float64) / Q15_ONE
        alpha = inputs["alpha"].astype(np.float64) / Q15_ONE
        rho = inputs["rho"].astype(np.float64) / Q15_ONE
        x = inputs["x"].astype(np.float64) / Q15_ONE
        gamma = self.GAMMA_Q15 / Q15_ONE
        coef0 = self.COEF0_Q15 / Q15_ONE
        if self.kernel == "linear":
            kernel = (x @ sv.T) / self.dimensions
        elif self.kernel == "poly":
            kernel = (gamma * (x @ sv.T) / self.dimensions + coef0) ** 3
        else:
            distances = ((x[:, None, :] - sv[None, :, :]) ** 2).sum(axis=2)
            kernel = np.exp(-gamma * distances / self.dimensions)
        decisions = kernel @ alpha.T - rho[None, :]
        return {
            "decisions": decisions,
            "labels": np.argmax(decisions, axis=1).astype(np.int32),
        }

    # -- marshalling ---------------------------------------------------------------

    def serialize_inputs(self, inputs: Arrays) -> bytes:
        # Only the test vectors travel: the model ships inside the binary.
        return inputs["x"].tobytes()

    def serialize_outputs(self, outputs: Arrays) -> bytes:
        return outputs["decisions"].tobytes() + outputs["labels"].tobytes()

    # -- architectural path -----------------------------------------------------------

    def model_bytes(self) -> int:
        """Bytes of the model constants shipped in the binary."""
        sv = self.support_vectors * self.dimensions * 2
        alpha = self.classes * self.support_vectors * 2
        rho = self.classes * 2
        # The libsvm port ships its generic fixed-point math tables
        # (pow/log for poly, plus exp for RBF) with every kernel build.
        math_tables = 1920
        exp_table = 514 if self.kernel == "RBF" else 0
        return sv + alpha + rho + math_tables + exp_table

    def build_program(self) -> Program:
        d = self.dimensions
        nsv = self.support_vectors
        # Inner dot/distance loop over the d dimensions (Q1.15, so every
        # product pays the renormalizing shift — the very reason the
        # paper's fixed-point kernels cannot use the fused MAC or SIMD).
        if self.kernel == "RBF":
            dot_ops = [
                load(DType.I16), load(DType.I16),
                alu(OpKind.SUB, DType.I16),
                alu(OpKind.MUL, DType.I16), alu(OpKind.SHIFT, DType.I32),
                alu(OpKind.ADD, DType.I32),
                addr(count=2),
            ]
        else:
            dot_ops = [
                load(DType.I16), load(DType.I16),
                alu(OpKind.MUL, DType.I16), alu(OpKind.SHIFT, DType.I32),
                alu(OpKind.ADD, DType.I32),
                addr(count=2),
            ]
        dot_loop = Loop(d, [Block(dot_ops)], name="dims")
        # Post-dot kernel evaluation.
        if self.kernel == "linear":
            post = Block([alu(OpKind.SHIFT, DType.I32),
                          store(DType.I32), addr()])
        elif self.kernel == "poly":
            # Generic fixed pow() path of the libsvm port: log/exp tables.
            post = Block([
                alu(OpKind.MUL, DType.I32, count=4),
                alu(OpKind.SHIFT, DType.I32, count=4),
                alu(OpKind.ADD, DType.I32, count=3),
                VOp(OpKind.LOAD, DType.I16, count=4),
                alu(OpKind.SELECT, DType.I32, count=2),
                alu(OpKind.MOVE, DType.I32, count=38),
                store(DType.I32), addr(),
            ])
        else:
            # Range reduction + exp LUT + interpolation.
            post = Block([
                alu(OpKind.MUL, DType.I32, count=3),
                alu(OpKind.SHIFT, DType.I32, count=4),
                alu(OpKind.ADD, DType.I32, count=3),
                VOp(OpKind.LOAD, DType.I16, count=2),
                alu(OpKind.SUB, DType.I32, count=2),
                alu(OpKind.SELECT, DType.I32, count=2),
                alu(OpKind.MOVE, DType.I32, count=60),
                store(DType.I32), addr(),
            ])
        sv_loop = Loop(nsv, [Block([alu(OpKind.MOVE, DType.I32)]),
                             dot_loop, post], name="sv")
        class_loop = Loop(self.classes, [
            Block([alu(OpKind.MOVE, DType.I32)]),
            Loop(nsv, [Block([
                load(DType.I16), load(DType.I32),
                alu(OpKind.MUL, DType.I32), alu(OpKind.ADD, DType.I32),
                addr(count=2),
            ])], name="acc"),
            Block([alu(OpKind.SUB, DType.I32), alu(OpKind.SHIFT, DType.I32),
                   store(DType.I32), addr()]),
        ], name="classes")
        argmax = Loop(self.classes, [Block([
            load(DType.I32), alu(OpKind.CMP, DType.I32),
            alu(OpKind.SELECT, DType.I32, count=2), addr(),
        ])], name="argmax")
        test_loop = Loop(self.test_vectors,
                         [sv_loop, class_loop, argmax,
                          Block([store(DType.I32), addr()])],
                         parallelizable=True, name="tests")
        return Program(
            name=self.name,
            body=[test_loop],
            input_bytes=self.test_vectors * d * 2,
            output_bytes=self.test_vectors * (self.classes + 1) * 4,
            const_bytes=self.model_bytes(),
            buffer_bytes=self.test_vectors * d * 2
            + self.test_vectors * (self.classes + 1) * 4
            + nsv * 4,
        )
