"""Fixed-point math routines shared by the learning/vision kernels.

These are the software building blocks an embedded fixed-point port
actually ships: a negative-exponential via table lookup with linear
interpolation (SVM RBF kernel), an integer cube with renormalization
(SVM polynomial kernel), a tanh lookup table (CNN activation), CORDIC
vectoring for magnitude/angle (HOG gradients) and a Newton-iteration
reciprocal square root (HOG block normalization).  All are vectorized
over numpy int64 arrays but perform only the integer operations a 32-bit
core would (apart from table construction, which the build process does
offline in floating point).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import FixedPointError

#: Q1.15 scale used for signals.
Q15_ONE = 1 << 15
#: Q16.16 scale used for wide values.
Q16_ONE = 1 << 16

# ---------------------------------------------------------------------------
# exp(-x) lookup table (Q3.13 input domain [0, 8), Q1.15 output)
# ---------------------------------------------------------------------------

_EXP_TABLE_BITS = 8
_EXP_TABLE_SIZE = 1 << _EXP_TABLE_BITS
_EXP_INPUT_RANGE = 8.0

_EXP_TABLE = np.array(
    [int(round(math.exp(-_EXP_INPUT_RANGE * i / _EXP_TABLE_SIZE) * Q15_ONE))
     for i in range(_EXP_TABLE_SIZE + 1)],
    dtype=np.int64)


def exp_neg_q(x_q16: np.ndarray) -> np.ndarray:
    """``exp(-x)`` for non-negative Q16.16 inputs, Q1.15 output.

    Table lookup with linear interpolation; inputs beyond the table
    domain (x >= 8) underflow to zero, as in the embedded port.
    """
    x = np.asarray(x_q16, dtype=np.int64)
    if np.any(x < 0):
        raise FixedPointError("exp_neg_q requires non-negative inputs")
    max_q = int(_EXP_INPUT_RANGE * Q16_ONE) - 1
    clipped = np.minimum(x, max_q)
    # Index into the table: x / 8 * 256 in Q16.16 -> top bits.
    step_q16 = int(_EXP_INPUT_RANGE * Q16_ONE) // _EXP_TABLE_SIZE
    index = clipped // step_q16
    frac = (clipped - index * step_q16) * Q15_ONE // step_q16
    lo = _EXP_TABLE[index]
    hi = _EXP_TABLE[index + 1]
    value = lo + ((hi - lo) * frac >> 15)
    return np.where(x > max_q, 0, value)


# ---------------------------------------------------------------------------
# Integer cube with Q1.15 renormalization (polynomial SVM kernel)
# ---------------------------------------------------------------------------

def cube_q15(x: np.ndarray) -> np.ndarray:
    """``x**3`` in Q1.15 with per-step renormalization and saturation."""
    x = np.asarray(x, dtype=np.int64)
    square = np.clip((x * x) >> 15, -(1 << 31), (1 << 31) - 1)
    cube = np.clip((square * x) >> 15, -(1 << 31), (1 << 31) - 1)
    return cube


# ---------------------------------------------------------------------------
# tanh lookup table (Q1.15 -> Q1.15)
# ---------------------------------------------------------------------------

_TANH_BITS = 9
_TANH_SIZE = 1 << _TANH_BITS
_TANH_RANGE = 4.0

_TANH_TABLE = np.array(
    [int(round(math.tanh(_TANH_RANGE * (i / _TANH_SIZE)) * (Q15_ONE - 1)))
     for i in range(_TANH_SIZE + 1)],
    dtype=np.int64)

#: Bytes of the tanh table as shipped in a kernel binary (int16 entries).
TANH_TABLE_BYTES = 2 * (_TANH_SIZE + 1)


def tanh_q15(x: np.ndarray) -> np.ndarray:
    """``tanh(x)`` for Q4.15-ish inputs (int32 accumulator values scaled
    to Q1.15 domain), odd-symmetric table lookup with interpolation."""
    x = np.asarray(x, dtype=np.int64)
    sign = np.sign(x)
    magnitude = np.abs(x)
    max_q = int(_TANH_RANGE * Q15_ONE) - 1
    clipped = np.minimum(magnitude, max_q)
    step = int(_TANH_RANGE * Q15_ONE) // _TANH_SIZE
    index = clipped // step
    frac = (clipped - index * step) * Q15_ONE // step
    lo = _TANH_TABLE[index]
    hi = _TANH_TABLE[index + 1]
    value = lo + ((hi - lo) * frac >> 15)
    return sign * value


def hardtanh_q15(x: np.ndarray) -> np.ndarray:
    """The approximated activation: clip to [-1, 1) in Q1.15 (2 ops)."""
    x = np.asarray(x, dtype=np.int64)
    return np.clip(x, -Q15_ONE, Q15_ONE - 1)


# ---------------------------------------------------------------------------
# CORDIC vectoring: (x, y) -> (magnitude, angle)
# ---------------------------------------------------------------------------

#: CORDIC iteration count: the textbook word-width configuration for a
#: 32-bit integer CORDIC (iterations past ~17 no longer move the Q16.16
#: angle, but fixed-count loops are how the embedded ports are written —
#: and how the paper's hog pays for its dynamic-range requirements).
CORDIC_ITERATIONS = 32
_CORDIC_GAIN = float(np.prod([1.0 / math.sqrt(1 + 2.0 ** (-2 * i))
                              for i in range(CORDIC_ITERATIONS)]))
#: Inverse gain in Q1.15 used to de-scale magnitudes.
CORDIC_INV_GAIN_Q15 = int(round(_CORDIC_GAIN * Q15_ONE))

_CORDIC_ANGLES_Q16 = np.array(
    [int(round(math.atan(2.0 ** (-i)) * Q16_ONE))
     for i in range(CORDIC_ITERATIONS)],
    dtype=np.int64)


def cordic_vectoring(x: np.ndarray, y: np.ndarray,
                     iterations: int = CORDIC_ITERATIONS
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectoring-mode CORDIC.

    Inputs are integer vectors (e.g. Q16.16 gradients).  Returns
    ``(magnitude, angle_q16)`` where magnitude is in the input scale
    (gain-corrected) and the angle is radians in Q16.16, in [-pi, pi].
    """
    if iterations < 1 or iterations > CORDIC_ITERATIONS:
        raise FixedPointError(f"unsupported iteration count {iterations}")
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    angle = np.zeros_like(x)
    half_pi_q16 = int(round(math.pi / 2 * Q16_ONE))
    # Pre-rotate into the right half plane.
    negative_x = x < 0
    y_positive = y >= 0
    new_x = np.where(negative_x, np.where(y_positive, y, -y), x)
    new_y = np.where(negative_x, np.where(y_positive, -x, x), y)
    angle = np.where(negative_x,
                     np.where(y_positive, half_pi_q16, -half_pi_q16),
                     0)
    x, y = new_x, new_y
    for i in range(iterations):
        shift_x = x >> i
        shift_y = y >> i
        rotate_down = y >= 0
        x = np.where(rotate_down, x + shift_y, x - shift_y)
        y = np.where(rotate_down, y - shift_x, y + shift_x)
        angle = np.where(rotate_down,
                         angle + _CORDIC_ANGLES_Q16[i],
                         angle - _CORDIC_ANGLES_Q16[i])
    magnitude = (x * CORDIC_INV_GAIN_Q15) >> 15
    return magnitude, angle


# ---------------------------------------------------------------------------
# Reciprocal square root (Q16.16) via Newton iterations
# ---------------------------------------------------------------------------

def rsqrt_q16(values: np.ndarray, iterations: int = 4) -> np.ndarray:
    """``1/sqrt(v)`` for positive Q16.16 inputs, Q16.16 output.

    Seeds from the float estimate's exponent (a bit-trick stand-in) and
    refines with Newton steps performed entirely in integer arithmetic —
    exactly the structure the embedded port uses for HOG normalization.
    """
    v = np.asarray(values, dtype=np.int64)
    if np.any(v <= 0):
        raise FixedPointError("rsqrt_q16 requires positive inputs")
    # Seed from the exponent: v ~ 2^(bits-17) in real value, so
    # rsqrt(v) ~ 2^(-(bits-17)/2).  The odd-exponent correction by
    # 1/sqrt(2) keeps the seed within ~29 % of the true value, safely
    # inside the Newton convergence basin (v*y^2 < 3).
    bits = np.frompyfunc(int.bit_length, 1, 1)(v.astype(object)).astype(np.int64)
    shift = bits - 17
    half = np.floor_divide(shift, 2)
    y = np.where(half >= 0,
                 Q16_ONE >> np.clip(half, 0, 31),
                 Q16_ONE << np.clip(-half, 0, 15))
    odd = np.mod(shift, 2) == 1
    inv_sqrt2 = 46341  # 1/sqrt(2) in Q16.16
    y = np.where(odd, (y * inv_sqrt2) >> 16, y)
    y = np.maximum(y, 1)
    for _ in range(iterations):
        # y = y * (3 - v*y*y) / 2, all Q16.16.  v*y goes first: squaring
        # a small y would underflow the Q16.16 intermediate to zero.
        vy = (v * y) >> 16
        vy2 = (vy * y) >> 16
        y = (y * ((3 << 16) - vy2)) >> 17
        y = np.maximum(y, 1)
    return y
