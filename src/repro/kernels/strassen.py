"""Strassen fast matrix multiplication on char data.

One level of the Strassen recursion over 64x64 int8 matrices: ten
submatrix additions feed seven half-size products (classic inner-product
multiplies, char SIMD-friendly), recombined with eight more additions.
In exact integer arithmetic the result equals the classic product, so the
functional output is validated against :class:`MatmulKernel` directly.

Parallelization follows the paper's OpenMP structure: the seven products
form one collapsed parallel-for over product output rows; the addition
passes are parallel loops over rows.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import KernelError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, addr, alu, load, mac, store
from repro.kernels.base import Arrays, Kernel
from repro.kernels.matmul import _saturate


def strassen_multiply(a: np.ndarray, b: np.ndarray, threshold: int = 32) -> np.ndarray:
    """Exact integer Strassen recursion (int64 arithmetic)."""
    n = a.shape[0]
    if n <= threshold or n % 2:
        return a @ b
    h = n // 2
    a11, a12, a21, a22 = a[:h, :h], a[:h, h:], a[h:, :h], a[h:, h:]
    b11, b12, b21, b22 = b[:h, :h], b[:h, h:], b[h:, :h], b[h:, h:]
    p1 = strassen_multiply(a11 + a22, b11 + b22, threshold)
    p2 = strassen_multiply(a21 + a22, b11, threshold)
    p3 = strassen_multiply(a11, b12 - b22, threshold)
    p4 = strassen_multiply(a22, b21 - b11, threshold)
    p5 = strassen_multiply(a11 + a12, b22, threshold)
    p6 = strassen_multiply(a21 - a11, b11 + b12, threshold)
    p7 = strassen_multiply(a12 - a22, b21 + b22, threshold)
    c = np.empty((n, n), dtype=np.int64)
    c[:h, :h] = p1 + p4 - p5 + p7
    c[:h, h:] = p3 + p5
    c[h:, :h] = p2 + p4
    c[h:, h:] = p1 - p2 + p3 + p6
    return c


class StrassenKernel(Kernel):
    """Strassen algorithm for fast matrix multiplication (char data)."""

    name = "strassen"
    description = "Strassen algorithm for fast matrix multiplication"
    field = "linear algebra"

    #: Output rescale, matching matmul (char).
    SHIFT = 7

    def __init__(self, n: int = 64, threshold: int = 32):
        if n < 2 or n % 2:
            raise KernelError(f"strassen needs an even size, got {n}")
        if threshold < 1:
            raise KernelError(f"invalid threshold {threshold}")
        self.n = int(n)
        self.threshold = int(threshold)

    # -- functional path ---------------------------------------------------------

    def generate_inputs(self, seed: int = 0) -> Arrays:
        rng = np.random.default_rng(seed)
        shape = (self.n, self.n)
        a = rng.integers(-128, 128, size=shape).astype(np.int8)
        b = rng.integers(-128, 128, size=shape).astype(np.int8)
        return {"a": a, "b": b}

    def compute(self, inputs: Arrays) -> Arrays:
        a = inputs["a"]
        b = inputs["b"]
        self._check_shape(a, (self.n, self.n), "a")
        self._check_shape(b, (self.n, self.n), "b")
        acc = strassen_multiply(a.astype(np.int64), b.astype(np.int64),
                                self.threshold)
        rescaled = (acc + (1 << (self.SHIFT - 1))) >> self.SHIFT
        return {"c": _saturate(rescaled, np.int8)}

    def reference(self, inputs: Arrays) -> Arrays:
        a = inputs["a"].astype(np.float64)
        b = inputs["b"].astype(np.float64)
        return {"c": (a @ b) / (1 << self.SHIFT)}

    # -- marshalling ---------------------------------------------------------------

    def serialize_inputs(self, inputs: Arrays) -> bytes:
        return inputs["a"].tobytes() + inputs["b"].tobytes()

    def serialize_outputs(self, outputs: Arrays) -> bytes:
        return outputs["c"].tobytes()

    # -- architectural path -----------------------------------------------------------

    def build_program(self) -> Program:
        h = self.n // 2
        body: List = []
        # Ten submatrix additions/subtractions feeding the products.
        body.append(self._add_pass(rows=h, columns=h, passes=10,
                                   name="pre-adds"))
        # The seven half-size products, collapsed into one parallel-for
        # over all product output rows (``collapse(2)`` in the OpenMP
        # source): rows are independent across products, and the
        # collapsed space balances perfectly on four cores.
        body.append(self._products(h))
        # Eight recombination additions.
        body.append(self._add_pass(rows=h, columns=h, passes=8,
                                   name="combine"))
        in_bytes = 2 * self.n * self.n
        out_bytes = self.n * self.n
        return Program(
            name=self.name,
            body=body,
            input_bytes=in_bytes,
            output_bytes=out_bytes,
            const_bytes=3584,       # embedded golden checksum block
            buffer_bytes=in_bytes + out_bytes + 7 * h * h,
        )

    def _add_pass(self, rows: int, columns: int, passes: int,
                  name: str) -> Loop:
        """`passes` element-wise matrix additions, parallel over rows."""
        inner = Loop(columns, [Block([
            load(DType.I8), load(DType.I8),
            alu(OpKind.ADD, DType.I8),
            store(DType.I8),
            addr(count=2),
        ])], vectorizable=True, simd_dtype=DType.I8, name=f"{name}-cols")
        return Loop(rows * passes, [inner], parallelizable=True, name=name)

    def _products(self, n: int) -> Loop:
        """All 7 classic char matmuls of size n, as one collapsed
        parallel-for over the 7 * n output rows."""
        k_loop = Loop(n, [Block([
            load(DType.I8), load(DType.I8),
            mac(DType.I8),
            addr(count=3),
        ])], name="k")
        j_loop = Loop(n, [
            Block([alu(OpKind.MOVE, DType.I32)]),
            k_loop,
            Block([
                # Scalar shifts of the 32-bit accumulators, then one
                # packed saturating store (vectorizable on OR10N).
                alu(OpKind.SHIFT, DType.I32, vector=False),
                alu(OpKind.SELECT, DType.I32),
                store(DType.I8),
                addr(),
            ]),
        ], vectorizable=True, simd_dtype=DType.I8, name="j")
        return Loop(7 * n, [j_loop], parallelizable=True, name="products")
