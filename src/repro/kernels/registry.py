"""Registry of the ten Table-I benchmark kernels."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import KernelError
from repro.kernels.base import Kernel
from repro.kernels.cnn import CnnKernel
from repro.kernels.hog import HogKernel
from repro.kernels.matmul import MatmulKernel
from repro.kernels.strassen import StrassenKernel
from repro.kernels.svm import SvmKernel

_FACTORIES: Dict[str, Callable[[], Kernel]] = {
    "matmul": lambda: MatmulKernel("char"),
    "matmul (short)": lambda: MatmulKernel("short"),
    "matmul (fixed)": lambda: MatmulKernel("fixed"),
    "strassen": StrassenKernel,
    "svm (linear)": lambda: SvmKernel("linear"),
    "svm (poly)": lambda: SvmKernel("poly"),
    "svm (RBF)": lambda: SvmKernel("RBF"),
    "cnn": lambda: CnnKernel(approximate=False),
    "cnn (approx)": lambda: CnnKernel(approximate=True),
    "hog": HogKernel,
}

#: Benchmark names in Table-I order.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(_FACTORIES)

#: Paper-reported Table I values: (input kB, output B, binary kB, RISC ops).
PAPER_TABLE1: Dict[str, Tuple[float, float, float, float]] = {
    "matmul": (8.0, 4096, 11.0, 2.4e6),
    "matmul (short)": (16.0, 8192, 11.0, 2.4e6),
    "matmul (fixed)": (16.0, 8192, 13.0, 2.7e6),
    "strassen": (8.0, 4096, 6.7, 2.3e6),
    "svm (linear)": (6.9, 1638, 11.4, 650e3),
    "svm (poly)": (6.9, 1638, 11.5, 684e3),
    "svm (RBF)": (6.9, 1638, 11.6, 781e3),
    "cnn": (2.0, 40, 48.1, 3.3e6),
    "cnn (approx)": (2.0, 40, 48.1, 2.6e6),
    "hog": (16.0, 36864, 31.2, 31e6),
}


def kernel_by_name(name: str) -> Kernel:
    """Instantiate a registered benchmark kernel."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES)
        raise KernelError(f"unknown benchmark {name!r}; known: {known}") from None


def all_kernels() -> List[Kernel]:
    """All ten benchmarks, Table-I order."""
    return [factory() for factory in _FACTORIES.values()]
