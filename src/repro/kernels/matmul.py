"""Matrix multiplication kernels (char / short / 16-bit fixed-point).

The three Table-I ``matmul`` variants share one loop nest (i over rows,
j over columns — vectorizable for the integer variants — k reduction
innermost) and differ in element type and inner-product arithmetic:

* **char**: 8-bit operands, 32-bit accumulation, final rescale ``>> 7``
  and saturation to int8;
* **short**: 16-bit operands, 32-bit accumulation, rescale ``>> 15`` and
  saturation to int16;
* **fixed**: Q1.15 operands with *per-product renormalization* (multiply,
  shift, add — there is no multiply-shift-add instruction, which is the
  paper's explanation for the lower fixed-point architectural speedup).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, addr, alu, load, mac, store
from repro.kernels.base import Arrays, Kernel

_VARIANTS = {
    "char": dict(dtype=DType.I8, np_dtype=np.int8, shift=7,
                 element_bytes=1, embedded_const=8192),
    "short": dict(dtype=DType.I16, np_dtype=np.int16, shift=15,
                  element_bytes=2, embedded_const=8192),
    "fixed": dict(dtype=DType.I16, np_dtype=np.int16, shift=15,
                  element_bytes=2, embedded_const=10240),
}


def _saturate(values: np.ndarray, np_dtype) -> np.ndarray:
    info = np.iinfo(np_dtype)
    return np.clip(values, info.min, info.max).astype(np_dtype)


class MatmulKernel(Kernel):
    """C = A x B with per-variant fixed-point discipline."""

    field = "linear algebra"

    def __init__(self, variant: str = "char", n: int = 64):
        if variant not in _VARIANTS:
            raise KernelError(f"unknown matmul variant {variant!r}")
        if n < 1:
            raise KernelError(f"invalid matrix size {n}")
        self.variant = variant
        self.n = int(n)
        self._spec = _VARIANTS[variant]
        self.name = "matmul" if variant == "char" else f"matmul ({variant})"
        self.description = {
            "char": "Matrix multiplication on char data",
            "short": "Matrix multiplication on short data",
            "fixed": "Matrix multiplication on 16-bit fixed-point data",
        }[variant]

    # -- functional path ---------------------------------------------------------

    def generate_inputs(self, seed: int = 0) -> Arrays:
        rng = np.random.default_rng(seed)
        np_dtype = self._spec["np_dtype"]
        info = np.iinfo(np_dtype)
        shape = (self.n, self.n)
        a = rng.integers(info.min, info.max + 1, size=shape).astype(np_dtype)
        b = rng.integers(info.min, info.max + 1, size=shape).astype(np_dtype)
        return {"a": a, "b": b}

    def compute(self, inputs: Arrays) -> Arrays:
        a = inputs["a"]
        b = inputs["b"]
        self._check_shape(a, (self.n, self.n), "a")
        self._check_shape(b, (self.n, self.n), "b")
        np_dtype = self._spec["np_dtype"]
        shift = self._spec["shift"]
        if self.variant == "fixed":
            # Per-product renormalization with round-half-up, then a
            # 32-bit accumulate and a final saturation (the sequence the
            # fixed-point C kernel executes).
            # products[i, k, j] = a[i, k] * b[k, j]
            products = (a.astype(np.int64)[:, :, None]
                        * b.astype(np.int64)[None, :, :])
            renormalized = (products + (1 << (shift - 1))) >> shift
            acc = renormalized.sum(axis=1)
            return {"c": _saturate(acc, np_dtype)}
        acc = a.astype(np.int64) @ b.astype(np.int64)
        rescaled = (acc + (1 << (shift - 1))) >> shift
        return {"c": _saturate(rescaled, np_dtype)}

    def reference(self, inputs: Arrays) -> Arrays:
        a = inputs["a"].astype(np.float64)
        b = inputs["b"].astype(np.float64)
        return {"c": (a @ b) / (1 << self._spec["shift"])}

    # -- marshalling ---------------------------------------------------------------

    def serialize_inputs(self, inputs: Arrays) -> bytes:
        return inputs["a"].tobytes() + inputs["b"].tobytes()

    def serialize_outputs(self, outputs: Arrays) -> bytes:
        return outputs["c"].tobytes()

    # -- architectural path -----------------------------------------------------------

    def build_program(self) -> Program:
        n = self.n
        dtype = self._spec["dtype"]
        element_bytes = self._spec["element_bytes"]
        if self.variant == "fixed":
            inner_body = Block([
                load(dtype), load(dtype),
                alu(OpKind.MUL, dtype), alu(OpKind.SHIFT, dtype),
                alu(OpKind.ADD, DType.I32),
                addr(count=3),
            ])
            vectorizable = False
        else:
            inner_body = Block([
                load(dtype), load(dtype),
                mac(dtype),
                addr(count=3),
            ])
            vectorizable = True
        k_loop = Loop(n, [inner_body], name="k")
        j_body = [
            Block([alu(OpKind.MOVE, DType.I32)]),
            k_loop,
            Block([
                # Scalar shifts of the 32-bit accumulators, then one
                # packed saturating store (vectorizable on OR10N).
                alu(OpKind.SHIFT, DType.I32, vector=False),
                alu(OpKind.SELECT, DType.I32),
                store(dtype),
                addr(),
            ]),
        ]
        j_loop = Loop(n, j_body, vectorizable=vectorizable,
                      simd_dtype=dtype, name="j")
        i_loop = Loop(n, [j_loop], parallelizable=True, name="i")
        in_bytes = 2 * n * n * element_bytes
        out_bytes = n * n * element_bytes
        return Program(
            name=self.name,
            body=[i_loop],
            input_bytes=in_bytes,
            output_bytes=out_bytes,
            const_bytes=self._spec["embedded_const"],
            buffer_bytes=in_bytes + out_bytes,
        )
