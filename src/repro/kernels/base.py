"""Kernel abstract base class.

A kernel binds together everything the system needs to offload and
evaluate one benchmark: input generation, the functional fixed-point
computation, a floating-point reference, the loop-nest IR program, and
the serialized input/output marshalling used by the offload path.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import KernelError
from repro.isa.program import Program

Arrays = Dict[str, np.ndarray]


@dataclass(frozen=True)
class KernelResult:
    """Functional outputs plus marshalling metadata."""

    outputs: Arrays
    output_payload: bytes

    @property
    def output_bytes(self) -> int:
        """Serialized output size."""
        return len(self.output_payload)


class Kernel(abc.ABC):
    """One benchmark kernel."""

    #: Paper name, e.g. ``"matmul (fixed)"``.
    name: str = ""
    #: One-line description (Table I column 2).
    description: str = ""
    #: Application field (Table I column 3).
    field: str = ""

    # -- functional path ---------------------------------------------------------

    @abc.abstractmethod
    def generate_inputs(self, seed: int = 0) -> Arrays:
        """Deterministic synthetic inputs for *seed*."""

    @abc.abstractmethod
    def compute(self, inputs: Arrays) -> Arrays:
        """The fixed-point computation the accelerator would run."""

    @abc.abstractmethod
    def reference(self, inputs: Arrays) -> Arrays:
        """Floating-point reference for accuracy validation."""

    def run(self, seed: int = 0) -> KernelResult:
        """Generate inputs, compute, and serialize the outputs."""
        inputs = self.generate_inputs(seed)
        outputs = self.compute(inputs)
        return KernelResult(outputs=outputs,
                            output_payload=self.serialize_outputs(outputs))

    # -- marshalling ---------------------------------------------------------------

    @abc.abstractmethod
    def serialize_inputs(self, inputs: Arrays) -> bytes:
        """Input payload as marshalled over the link (``map(to:)``)."""

    @abc.abstractmethod
    def serialize_outputs(self, outputs: Arrays) -> bytes:
        """Output payload as marshalled back (``map(from:)``)."""

    # -- architectural path -----------------------------------------------------------

    @abc.abstractmethod
    def build_program(self) -> Program:
        """The loop-nest IR of the kernel."""

    # -- shared helpers -----------------------------------------------------------------

    def _check_shape(self, array: np.ndarray, shape, label: str) -> None:
        if tuple(array.shape) != tuple(shape):
            raise KernelError(
                f"{self.name}: {label} has shape {array.shape}, expected {shape}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
