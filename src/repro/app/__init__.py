"""Application layer: composing kernels into processing pipelines.

"Real applications are generally composed by a sequence of kernels
(i.e. basic algorithmic elements)" (Section III-A).  This package models
that composition: a :class:`~repro.app.pipeline.Pipeline` chains kernel
stages, decides per stage whether to offload or stay on the host, and
answers steady-state questions — throughput, per-item energy, and which
stage bottlenecks the system within the power envelope.
"""

from repro.app.pipeline import (
    Pipeline,
    PipelineReport,
    Placement,
    Stage,
    StageReport,
)

__all__ = ["Placement", "Stage", "StageReport", "Pipeline",
           "PipelineReport"]
