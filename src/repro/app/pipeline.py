"""Kernel pipelines: placement, steady-state throughput and energy.

A pipeline processes a stream of items (frames, batches, windows); each
stage runs one kernel, placed either on the accelerator (offloaded, with
per-item data transfers amortized by double buffering) or on the host
(small control-flow-heavy stages often aren't worth the transfer).  The
analysis finds the steady-state period — the slowest stage — and the
energy per item, and can auto-place stages by trying both options.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, OffloadError
from repro.core.system import HeterogeneousSystem
from repro.kernels.base import Kernel
from repro.units import mhz

#: Iterations per offload assumed for steady-state amortization.
_STEADY_ITERATIONS = 64


class Placement(enum.Enum):
    """Where a stage executes."""

    HOST = "host"
    ACCELERATOR = "accelerator"
    AUTO = "auto"


@dataclass
class Stage:
    """One pipeline stage."""

    kernel: Kernel
    placement: Placement = Placement.AUTO

    @property
    def name(self) -> str:
        """Stage name (the kernel's)."""
        return self.kernel.name


@dataclass
class StageReport:
    """Steady-state cost of one placed stage."""

    name: str
    placement: Placement
    time_per_item: float
    energy_per_item: float
    speedup_vs_host: float


@dataclass
class PipelineReport:
    """Whole-pipeline steady state."""

    stages: List[StageReport]
    host_frequency: float

    @property
    def period(self) -> float:
        """Steady-state seconds per item (stages run in sequence on the
        shared accelerator, so the period is the *sum* of stage times)."""
        return sum(stage.time_per_item for stage in self.stages)

    @property
    def throughput(self) -> float:
        """Items per second."""
        period = self.period
        if period == 0:
            return 0.0
        return 1.0 / period

    @property
    def energy_per_item(self) -> float:
        """Joules per processed item."""
        return sum(stage.energy_per_item for stage in self.stages)

    @property
    def bottleneck(self) -> StageReport:
        """The stage dominating the period."""
        return max(self.stages, key=lambda stage: stage.time_per_item)


class Pipeline:
    """A sequence of kernel stages on one heterogeneous system."""

    def __init__(self, stages: Sequence[Stage],
                 system: Optional[HeterogeneousSystem] = None):
        if not stages:
            raise ConfigurationError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self.system = system if system is not None else HeterogeneousSystem()

    def analyze(self, host_frequency: float = mhz(8)) -> PipelineReport:
        """Steady-state analysis with per-stage placement resolution."""
        reports: List[StageReport] = []
        for stage in self.stages:
            reports.append(self._place(stage, host_frequency))
        return PipelineReport(stages=reports, host_frequency=host_frequency)

    # -- internals -------------------------------------------------------------

    def _place(self, stage: Stage, host_frequency: float) -> StageReport:
        if stage.placement is Placement.HOST:
            return self._host_report(stage, host_frequency)
        if stage.placement is Placement.ACCELERATOR:
            return self._accelerator_report(stage, host_frequency)
        # AUTO: pick the faster option (host execution is always
        # available; offload may be impossible at this host clock).
        host = self._host_report(stage, host_frequency)
        try:
            accelerated = self._accelerator_report(stage, host_frequency)
        except OffloadError:
            return host
        return accelerated \
            if accelerated.time_per_item < host.time_per_item else host

    def _host_report(self, stage: Stage, host_frequency: float) -> StageReport:
        run = self.system.run_on_host(stage.kernel, host_frequency)
        return StageReport(
            name=stage.name,
            placement=Placement.HOST,
            time_per_item=run.time,
            energy_per_item=run.energy,
            speedup_vs_host=1.0,
        )

    def _accelerator_report(self, stage: Stage,
                            host_frequency: float) -> StageReport:
        result = self.system.offload(
            stage.kernel, host_frequency=host_frequency,
            iterations=_STEADY_ITERATIONS, double_buffered=True)
        per_item = result.timing.total_time / _STEADY_ITERATIONS
        energy = result.timing.energy.total_energy / _STEADY_ITERATIONS
        host_time = self.system.run_on_host(
            stage.kernel, host_frequency).time
        return StageReport(
            name=stage.name,
            placement=Placement.ACCELERATOR,
            time_per_item=per_item,
            energy_per_item=energy,
            speedup_vs_host=host_time / per_item if per_item else 0.0,
        )


def render_pipeline(report: PipelineReport) -> str:
    """Text rendering of a pipeline analysis."""
    lines = [f"pipeline @ host {report.host_frequency / 1e6:.0f} MHz: "
             f"{report.throughput:.1f} items/s, "
             f"{report.energy_per_item * 1e6:.1f} uJ/item"]
    for stage in report.stages:
        marker = " <- bottleneck" if stage is report.bottleneck else ""
        lines.append(
            f"  {stage.name:16s} [{stage.placement.value:11s}] "
            f"{stage.time_per_item * 1e3:8.2f} ms  "
            f"{stage.energy_per_item * 1e6:8.1f} uJ  "
            f"x{stage.speedup_vs_host:5.1f}{marker}")
    return "\n".join(lines)
