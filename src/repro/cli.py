"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro table1
    python -m repro figure3
    python -m repro figure4
    python -m repro figure5a
    python -m repro figure5b [--kernel matmul]
    python -m repro offload --kernel "svm (RBF)" --host-mhz 8 --iterations 32
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.system import HeterogeneousSystem
from repro.experiments import figure3, figure4, figure5, table1
from repro.kernels import BENCHMARK_NAMES, kernel_by_name
from repro.units import mhz


def _cmd_table1(_args) -> str:
    return table1.render()


def _cmd_figure3(_args) -> str:
    return figure3.render()


def _cmd_figure4(_args) -> str:
    return figure4.render()


def _cmd_figure5a(_args) -> str:
    return figure5.render_figure5a()


def _cmd_figure5b(args) -> str:
    kernel = kernel_by_name(args.kernel) if args.kernel else None
    return figure5.render_figure5b(figure5.run_figure5b(kernel))


def _cmd_offload(args) -> str:
    system = HeterogeneousSystem()
    kernel = kernel_by_name(args.kernel)
    result = system.offload(kernel, host_frequency=mhz(args.host_mhz),
                            iterations=args.iterations,
                            double_buffered=args.double_buffer)
    return result.report()


def _cmd_report(_args) -> str:
    from repro.experiments.report import build_report
    return build_report()


def _cmd_all(args) -> str:
    sections = [
        ("Table I", _cmd_table1(args)),
        ("Figure 3", _cmd_figure3(args)),
        ("Figure 4", _cmd_figure4(args)),
        ("Figure 5a", _cmd_figure5a(args)),
        ("Figure 5b", figure5.render_figure5b()),
    ]
    blocks = []
    for title, body in sections:
        blocks.append(f"{'=' * 12} {title} {'=' * 12}\n{body}")
    return "\n\n".join(blocks)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DATE 2016 heterogeneous-accelerator "
                    "paper's evaluation.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table I: benchmark summary")
    sub.add_parser("figure3", help="Figure 3: GOPS vs power on matmul")
    sub.add_parser("figure4", help="Figure 4: architectural/parallel speedup")
    sub.add_parser("figure5a", help="Figure 5a: speedup within 10 mW")
    f5b = sub.add_parser("figure5b",
                         help="Figure 5b: efficiency vs iterations/offload")
    f5b.add_argument("--kernel", choices=BENCHMARK_NAMES, default=None,
                     help="benchmark to sweep (default: cnn)")
    off = sub.add_parser("offload", help="run one offload and report it")
    off.add_argument("--kernel", choices=BENCHMARK_NAMES, default="matmul")
    off.add_argument("--host-mhz", type=float, default=8.0)
    off.add_argument("--iterations", type=int, default=1)
    off.add_argument("--double-buffer", action="store_true")
    sub.add_parser("all", help="everything, in paper order")
    sub.add_parser("report",
                   help="markdown reproduction report with anchor checks")
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5a": _cmd_figure5a,
    "figure5b": _cmd_figure5b,
    "offload": _cmd_offload,
    "all": _cmd_all,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        print(_COMMANDS[args.command](args))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
