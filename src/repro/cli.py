"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro table1 [--json]
    python -m repro figure3 [--json]
    python -m repro figure4 [--json]
    python -m repro figure5a [--json]
    python -m repro figure5b [--kernel matmul] [--json]
    python -m repro offload --kernel "svm (RBF)" --host-mhz 8 --iterations 32
    python -m repro trace matmul --out trace.json [--flame flame.txt]
    python -m repro metrics [--kernel matmul] [--json]
    python -m repro lint kernel.s [--format json|sarif] [--entry-regs r1,r2]
    python -m repro lint kernel.s --cores 4 --preset r5=0@8 [--dma-out 0x700:0x780]
    python -m repro lint --all-builtin
    python -m repro faults --scenarios 11 --seed 1 [--json] [--trace t.json]
    python -m repro dse --host-mhz 2,4,8 --budget-mw 5,10 --jobs 4 \
        --cache-dir .dse-cache [--json]
    python -m repro dse --spec space.json --jobs 4
    python -m repro serve --nodes 4 --policy power-cap --arrival-rate 250 \
        --faults on --seed 7 [--json] [--trace serve.json]
    python -m repro chaos [--json] [--alerts alerts.log]
    python -m repro chaos --plan storm.json --chaos-seed 7 --nodes 4
    python -m repro chaos --empty --serve-json report.json
    python -m repro bench [--quick] [--check] [--profile bench.json]
    python -m repro bench --compare BENCH_7.json BENCH_8.json
    python -m repro learn dataset --out ds.json [--tiny] [--jobs 4]
    python -m repro learn train --dataset ds.json --out model.json
    python -m repro learn eval --dataset ds.json [--max-regret 0.15]
    python -m repro learn predict --model model.json --program dwconv3_i8
    python -m repro serve --scheduler predicted --model model.json
    python -m repro capacity plan --arrival-rate 300 --power-budget 40
    python -m repro capacity validate [--tolerance 0.10] [--json]
    python -m repro capacity sweep --nodes 4 --rates 50:700:50
    python -m repro all

Every experiment subcommand accepts ``--json`` for a machine-readable
dump of the same results.  ``trace`` runs one offload under the unified
telemetry hub plus a DES replay of the cluster and writes a Chrome
trace-event JSON loadable in Perfetto; ``metrics`` prints the telemetry
counters/lane/phase snapshot.

``lint`` exits 1 when any ERROR-severity finding exists (any finding at
all with ``--strict``), so it can gate CI.

``faults`` runs a seeded fault-injection campaign against the resilient
offload runtime and prints the survival/recovery matrix.  It exits 0
when every scenario ends clean or recovered, 3 when any scenario needed
the degraded OpenMP host fallback, and 4 when any scenario produced no
result at all.

``serve`` drives a fleet of accelerator nodes from a seeded request
stream (see ``docs/SERVING.md``) and prints queueing statistics.  It
exits 0 when the run is healthy and 3 when the deadline-miss rate
(misses plus drops, over arrivals) exceeds ``--miss-threshold``.

``chaos`` replays fleet-scope fault campaigns (crash storms, brownout
droop, flapping nodes, arrival surges) through the same serving engine
with the resilience machinery armed, and prints a per-scenario
resilience scorecard (see ``docs/RELIABILITY.md``).  It exits 0 when
every scenario stays healthy, 3 when an SLO error budget is exhausted,
and 4 on fleet collapse (availability under ``--collapse-threshold``).
With ``--empty`` (and ``--resilience auto``) the run is bit-identical
to a plain ``serve`` of the same spec and seed.

``learn`` builds labeled datasets from the DSE oracle, trains the
seeded models, and scores them leave-one-kernel-out (see
``docs/LEARNING.md``).  ``learn eval`` exits 3 when the primary model's
mean energy regret exceeds ``--max-regret``; ``serve --scheduler
predicted --model model.json`` routes the fleet through the trained
model's operating points.

``capacity`` is the analytic fast path over the serving fleet (see
``docs/CAPACITY.md``): ``plan`` searches heterogeneous fleet
compositions under a power budget and re-verifies the Pareto frontier
through the DES, ``validate`` runs the pinned analytic-vs-DES grid,
and ``sweep`` answers what-if arrival-rate questions in milliseconds.
``validate`` (and ``plan``, unless ``--no-verify``) exits 3 when a
tolerance is breached.

``bench`` times every engine's hot path under pinned seeds and writes
the next ``BENCH_<n>.json`` trajectory entry (see
``docs/BENCHMARKS.md``).  ``--check`` compares the fresh run against
the latest committed entry and exits 5 when any suite's median
throughput regressed by more than ``--threshold`` (default 20%);
``--compare OLD NEW`` judges two existing files without running.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.system import HeterogeneousSystem
from repro.experiments import figure3, figure4, figure5, table1
from repro.kernels import BENCHMARK_NAMES, kernel_by_name
from repro.units import mhz


def _json_dump(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=False)


def _cmd_table1(args) -> str:
    rows = table1.run()
    if getattr(args, "json", False):
        return _json_dump(table1.to_json_dict(rows))
    return table1.render(rows)


def _cmd_figure3(args) -> str:
    result = figure3.run()
    if getattr(args, "json", False):
        return _json_dump(figure3.to_json_dict(result))
    return figure3.render(result)


def _cmd_figure4(args) -> str:
    result = figure4.run()
    if getattr(args, "json", False):
        return _json_dump(figure4.to_json_dict(result))
    return figure4.render(result)


def _cmd_figure5a(args) -> str:
    result = figure5.run_figure5a()
    if getattr(args, "json", False):
        return _json_dump(figure5.figure5a_to_json_dict(result))
    return figure5.render_figure5a(result)


def _cmd_figure5b(args) -> str:
    kernel = kernel_by_name(args.kernel) if args.kernel else None
    result = figure5.run_figure5b(kernel)
    if getattr(args, "json", False):
        return _json_dump(figure5.figure5b_to_json_dict(result))
    return figure5.render_figure5b(result)


def _cmd_offload(args) -> str:
    system = HeterogeneousSystem()
    kernel = kernel_by_name(args.kernel)
    result = system.offload(kernel, host_frequency=mhz(args.host_mhz),
                            iterations=args.iterations,
                            double_buffered=args.double_buffer)
    if getattr(args, "json", False):
        return _json_dump(result.to_json_dict())
    return result.report()


# -- telemetry commands ---------------------------------------------------------

#: Benchmark -> built-in machine program used for the flamegraph view
#: (the instruction-level counterpart where one exists).
_FLAME_PROGRAMS = {"matmul": "matmul_i8"}

#: DES replay cap: chunk cycles are scaled down so one replay stays
#: interactive while preserving the compute/memory mix.
_DES_CYCLE_CAP = 20_000.0


def _des_cluster_lanes(hub, kernel, target) -> None:
    """Replay the kernel's first parallel loop on the DES cluster and
    route per-core / per-bank / per-DMA-channel lanes into *hub*."""
    from repro.obs.bridge import route_recorder
    from repro.pulp.cluster import Cluster
    from repro.pulp.timing import kernel_op_streams
    from repro.sim.tracing import TraceRecorder

    streams = kernel_op_streams(kernel.build_program(), target,
                                Cluster.CORES, cycle_cap=_DES_CYCLE_CAP)
    recorder = TraceRecorder()
    cluster = Cluster()
    run = cluster.run(streams,
                      dma_jobs=[(0, 0, 1024, True), (0, 4096, 1024, False)],
                      recorder=recorder)
    route_recorder(recorder, hub)
    hub.gauge("cluster.wall_cycles", run.wall_cycles, domain="cycles")
    hub.gauge("cluster.conflict_rate", run.conflict_rate, domain="cycles")


def _traced_offload(args):
    """Run one offload (plus the DES cluster replay) under a live hub."""
    from repro.obs import Telemetry, use_telemetry

    hub = Telemetry(enabled=True)
    system = HeterogeneousSystem()
    kernel = kernel_by_name(args.kernel)
    with use_telemetry(hub):
        result = system.offload(kernel, host_frequency=mhz(args.host_mhz),
                                iterations=args.iterations,
                                double_buffered=args.double_buffer)
        _des_cluster_lanes(hub, kernel, system.target)
    return hub, result


def _cmd_trace(args) -> str:
    from repro.obs import (
        TraceAnalyzer,
        render_span_timeline,
        write_chrome_trace,
        write_flamegraph,
    )

    hub, result = _traced_offload(args)
    write_chrome_trace(hub, args.out)
    lines = [f"wrote Chrome trace to {args.out} "
             f"({len(hub.spans)} spans, {len(hub.lanes())} lanes) — "
             f"open in https://ui.perfetto.dev"]
    if args.flame:
        from repro.machine.programs import profile_builtin

        builtin = _FLAME_PROGRAMS.get(args.kernel, "matmul_i8")
        profiled = profile_builtin(builtin)
        write_flamegraph(profiled, args.flame, root=builtin)
        lines.append(f"wrote collapsed stacks of {builtin!r} to {args.flame}")
    analyzer = TraceAnalyzer(hub)
    phase, share = analyzer.critical_phase()
    lines.append("")
    lines.append(result.report())
    lines.append("")
    lines.append(f"critical phase {phase!r} ({share:.1%} of phase time), "
                 f"overlap efficiency {analyzer.overlap_efficiency():.1%}, "
                 f"attributed energy {hub.total_energy():.6g} J")
    if args.ascii:
        lines.append("")
        lines.append(render_span_timeline(hub, domain="wall"))
        lines.append("")
        lines.append(render_span_timeline(hub, domain="cycles"))
    return "\n".join(lines)


def _cmd_metrics(args) -> str:
    from repro.obs import metrics_snapshot, render_metrics

    hub, result = _traced_offload(args)
    snapshot = metrics_snapshot(hub, extra={
        "kernel": result.kernel_name,
        "verified": result.verified,
        "model_energy_j": result.timing.energy.total_energy,
    })
    if getattr(args, "json", False):
        return _json_dump(snapshot)
    return render_metrics(snapshot)


def _cmd_report(_args) -> str:
    from repro.experiments.report import build_report
    return build_report()


def _parse_entry_regs(text: str):
    registers = set()
    for token in filter(None, (t.strip() for t in text.split(","))):
        name = token.lower().lstrip("r")
        try:
            index = int(name)
        except ValueError:
            raise SystemExit(f"lint: bad register {token!r} in --entry-regs")
        if not 0 <= index < 32:
            raise SystemExit(f"lint: register {token!r} out of range")
        registers.add(index)
    return frozenset(registers)


def _parse_presets(tokens, cores: int):
    """``--preset rN=base[@step]`` -> per-core register preset dicts.

    Core *c* gets ``base + c * step`` (the SPMD static-schedule idiom:
    one register carries the core's chunk start).
    """
    presets = [dict() for _ in range(cores)]
    for token in tokens or ():
        try:
            register_text, value_text = token.split("=", 1)
            step = 0
            if "@" in value_text:
                value_text, step_text = value_text.split("@", 1)
                step = int(step_text, 0)
            base = int(value_text, 0)
            register = int(register_text.lower().lstrip("r"))
            if not 0 <= register < 32:
                raise ValueError(token)
        except ValueError:
            raise SystemExit(f"lint: bad --preset {token!r} "
                             "(expected rN=base[@step])")
        for core in range(cores):
            presets[core][register] = base + core * step
    return presets


def _parse_dma_out(text):
    if not text:
        return None
    try:
        lo_text, hi_text = text.split(":", 1)
        region = (int(lo_text, 0), int(hi_text, 0))
    except ValueError:
        raise SystemExit(f"lint: bad --dma-out {text!r} (expected lo:hi)")
    if region[0] >= region[1]:
        raise SystemExit(f"lint: empty --dma-out region {text!r}")
    return region


def _spmd_findings(instructions, lines, args):
    from repro.analysis.concurrency import analyze_spmd

    report = analyze_spmd(
        instructions, cores=args.cores,
        presets=_parse_presets(args.preset, args.cores), lines=lines,
        dma_out=_parse_dma_out(args.dma_out), banks=args.banks)
    return report.findings


def _cmd_lint(args) -> str:
    from repro.analysis.concurrency import analyze_spmd
    from repro.analysis.dataflow import ALL_REGISTERS
    from repro.analysis.linter import lint_instructions, lint_source
    from repro.errors import IsaError
    from repro.isa.validate import Severity
    from repro.machine.parallel import PARALLEL_PROGRAMS
    from repro.machine.programs import BUILTIN_PROGRAMS

    if args.cores < 0:
        raise SystemExit("lint: --cores must be >= 0")
    entry_regs = _parse_entry_regs(args.entry_regs or "")
    reports = []
    if args.all_builtin:
        for program in BUILTIN_PROGRAMS.values():
            reports.append(lint_source(
                program.source, name=program.name,
                entry_regs=program.entry_regs,
                exit_live=program.exit_live if program.exit_live is not None
                else ALL_REGISTERS))
        for parallel in PARALLEL_PROGRAMS.values():
            cores = args.cores if args.cores >= 2 else 4
            report = lint_instructions(
                parallel.unit.instructions, name=parallel.name,
                lines=parallel.unit.lines, entry_regs=parallel.entry_regs)
            spmd = analyze_spmd(
                parallel.unit.instructions, cores=cores,
                presets=parallel.presets(cores), lines=parallel.unit.lines,
                dma_out=parallel.dma_out)
            report.findings.extend(spmd.findings)
            reports.append(report)
    if not args.all_builtin and not args.files:
        raise SystemExit("lint: give one or more .s files or --all-builtin")
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise SystemExit(f"lint: cannot read {path}: {exc}")
        try:
            report = lint_source(source, name=path, entry_regs=entry_regs)
        except IsaError as exc:
            # Assembly itself failed; surface it like a finding and fail.
            args._exit_code = 1
            reports.append(None)
            print(f"{path}: assembly error: {exc}", file=sys.stderr)
            continue
        if args.cores >= 2 and report.cfg is not None:
            from repro.machine.assembler import assemble_unit

            unit = assemble_unit(source)
            report.findings.extend(
                _spmd_findings(unit.instructions, unit.lines, args))
        reports.append(report)

    failed = any(report is None or not report.ok for report in reports)
    if args.strict:
        failed = failed or any(
            report is not None and any(
                f.severity is not Severity.INFO for f in report.findings)
            for report in reports)
    if failed:
        args._exit_code = 1
    good = [report for report in reports if report is not None]
    if args.format == "json":
        return "[" + ",\n".join(r.to_json() for r in good) + "]"
    if args.format == "sarif":
        from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif

        runs = []
        for report in good:
            runs.extend(to_sarif(report.findings, uri=report.name)["runs"])
        return _json_dump({"$schema": SARIF_SCHEMA,
                           "version": SARIF_VERSION, "runs": runs})
    return "\n\n".join(r.render() for r in good)


# -- fault campaigns ------------------------------------------------------------

#: ``faults`` exit codes: degraded (host fallback happened) vs failed
#: (a scenario produced no result at all) are distinct and non-zero so
#: CI can gate on either.
FAULTS_EXIT_DEGRADED = 3
FAULTS_EXIT_FAILED = 4


def _cmd_faults(args) -> str:
    from repro.faults import CampaignRunner, build_campaign

    scenarios = build_campaign(
        args.scenarios, seed=args.seed, kernel=args.kernel,
        host_mhz=args.host_mhz, iterations=args.iterations,
        bit_error_rate=args.ber)
    runner = CampaignRunner(fallback_enabled=not args.no_fallback)
    if args.trace:
        from repro.obs import Telemetry, use_telemetry, write_chrome_trace

        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            result = runner.run(scenarios)
        write_chrome_trace(hub, args.trace)
    else:
        result = runner.run(scenarios)
    if result.failed:
        args._exit_code = FAULTS_EXIT_FAILED
    elif result.degraded:
        args._exit_code = FAULTS_EXIT_DEGRADED
    if getattr(args, "json", False):
        return _json_dump(result.to_json_dict())
    return result.render()


# -- serving --------------------------------------------------------------------

#: ``serve`` exit code when the miss rate breaches ``--miss-threshold``.
SERVE_EXIT_MISSES = 3

#: The ``--faults on`` per-node plans, cycled across the fleet: a clean
#: node, a transiently hanging one, one that dies (three consecutive
#: boot failures exhaust the ladder), and a browned-out slow one.
_SERVE_FAULT_PLANS = (
    ("clean", ()),
    ("kernel_hang", (2,)),
    ("boot_failure", (3,)),
    ("brownout", (0.85,)),
)


def _serve_workload(args):
    from repro.serve import (
        ClosedLoopWorkload,
        MmppWorkload,
        PoissonWorkload,
        TraceWorkload,
    )

    if args.replay:
        return TraceWorkload.from_json(args.replay)
    requests = args.requests if args.requests > 0 else None
    if requests is None and args.duration is None:
        raise SystemExit("serve: give --requests > 0 or a --duration")
    common = dict(
        deadline_factor=(args.deadline_factor
                         if args.deadline_factor > 0 else None),
        iterations=args.iterations, seed=args.seed)
    if args.workload == "mmpp":
        return MmppWorkload(
            rates=(args.arrival_rate, args.arrival_rate * args.burst),
            requests=requests, duration=args.duration, **common)
    if args.workload == "closed":
        per_client = max(1, (requests or args.clients) // args.clients)
        return ClosedLoopWorkload(
            clients=args.clients, think_s=args.think_ms * 1e-3,
            requests_per_client=per_client, **common)
    return PoissonWorkload(rate=args.arrival_rate, requests=requests,
                           duration=args.duration, **common)


def _serve_book_and_policy(args):
    """Resolve the pricing backend and dispatch policy of a serve run."""
    from repro.serve import AnalyticServiceBook
    from repro.serve.scheduler import Policy

    if args.scheduler is None and args.model is None:
        return AnalyticServiceBook(host_mhz=args.host_mhz), \
            Policy(args.policy)
    # Extension territory: the learned book and/or a registered policy.
    import repro.learn.service as learn_service
    from repro.serve.scheduler import registered_policies

    policy = args.scheduler if args.scheduler is not None \
        else Policy(args.policy)
    if isinstance(policy, str) and policy not in registered_policies():
        known = ", ".join(registered_policies())
        raise SystemExit(f"serve: unknown --scheduler {policy!r}; "
                         f"registered: {known}")
    if args.model is None:
        raise SystemExit(
            f"serve: --scheduler {args.scheduler} needs --model "
            "<trained model JSON> (train one with: python -m repro "
            "learn train)")
    from repro.errors import ReproError

    try:
        fitted = learn_service.predictor_from_file(args.model)
        book = learn_service.PredictedServiceBook(
            fitted, confidence=args.confidence, host_mhz=args.host_mhz)
    except (OSError, ReproError) as exc:
        raise SystemExit(f"serve: cannot use model {args.model}: {exc}")
    return book, policy


def _serve_config_from_args(args):
    """The :class:`ServeConfig` of the shared serve-spec flags.

    Used verbatim by ``serve`` and by ``chaos`` (which layers a fleet
    fault plan and the resilience machinery on top), so a chaos run
    under the empty plan prices exactly the run ``serve`` would.
    """
    from repro.faults.plan import FaultPlan
    from repro.serve.engine import ServeConfig, default_power_budget
    from repro.serve.scheduler import Policy, SchedulerConfig
    from repro.units import mw

    book, policy = _serve_book_and_policy(args)
    budget = mw(args.power_budget) if args.power_budget is not None else None
    if budget is None and policy is Policy.POWER_CAP:
        budget = default_power_budget(book, args.nodes)
    plans = None
    if args.faults == "on":
        plans = [getattr(FaultPlan, name)(*plan_args)
                 for name, plan_args in _SERVE_FAULT_PLANS]
    return ServeConfig(
        workload=_serve_workload(args),
        nodes=args.nodes,
        scheduler=SchedulerConfig(
            policy=policy, queue_capacity=args.queue_capacity,
            max_batch=args.max_batch, power_budget_w=budget,
            drop_late=args.drop_late),
        fault_plans=plans, seed=args.seed, book=book)


def _cmd_serve(args) -> str:
    from repro.serve.engine import ServeEngine

    config = _serve_config_from_args(args)
    if args.trace:
        from repro.obs import Telemetry, use_telemetry, write_chrome_trace

        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            report = ServeEngine(config).run()
        write_chrome_trace(hub, args.trace)
    else:
        report = ServeEngine(config).run()
    if report.miss_rate > args.miss_threshold:
        args._exit_code = SERVE_EXIT_MISSES
    if getattr(args, "json", False):
        return report.to_json()
    return report.render()


# -- chaos campaigns ------------------------------------------------------------

def _chaos_plans(args):
    """The fleet plans a ``chaos`` invocation runs (None = pinned)."""
    import json

    from repro.faults.plan import FleetPlan

    if args.empty:
        return [FleetPlan.empty()], False
    if args.plan:
        try:
            with open(args.plan, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"chaos: cannot read --plan {args.plan}: {exc}")
        plans = payload if isinstance(payload, list) else [payload]
        from repro.errors import ReproError

        try:
            return [FleetPlan.from_dict(plan) for plan in plans], False
        except ReproError as exc:
            raise SystemExit(f"chaos: bad --plan {args.plan}: {exc}")
    return None, True


def _cmd_chaos(args) -> str:
    import dataclasses

    from repro.serve.chaos import (
        pinned_campaign_config,
        pinned_campaign_plans,
        run_campaign,
    )
    from repro.serve.resilience import ResilienceConfig

    plans, pinned = _chaos_plans(args)
    if pinned:
        config = pinned_campaign_config(nodes=args.nodes, seed=args.seed)
        plans = pinned_campaign_plans()
        armed = args.resilience != "off"
    else:
        config = _serve_config_from_args(args)
        armed = args.resilience == "on" or (
            args.resilience == "auto"
            and any(plan.events for plan in plans))
        if armed:
            config = dataclasses.replace(
                config, resilience=ResilienceConfig())
    if not armed:
        config = dataclasses.replace(config, resilience=None)
    if armed and args.slo_factor is not None:
        resilience = config.resilience
        config = dataclasses.replace(config, resilience=dataclasses.replace(
            resilience,
            slo=dataclasses.replace(resilience.slo,
                                    latency_factor=args.slo_factor)))
    result = run_campaign(config, plans, chaos_seed=args.chaos_seed,
                          collapse_threshold=args.collapse_threshold)
    if args.serve_json:
        with open(args.serve_json, "w", encoding="utf-8") as handle:
            handle.write(result.runs[0].report.to_json() + "\n")
    if args.alerts:
        with open(args.alerts, "w", encoding="utf-8") as handle:
            for run in result.runs:
                for alert in run.alerts:
                    handle.write(f"{run.scenario}: {alert.render()}\n")
    args._exit_code = result.exit_code
    if args.json:
        return result.to_json()
    return result.render()


# -- design-space exploration ---------------------------------------------------

def _parse_values(text: str, parse):
    values = []
    for token in filter(None, (t.strip() for t in text.split(","))):
        try:
            values.append(parse(token))
        except ValueError:
            raise SystemExit(f"dse: bad value {token!r}")
    if not values:
        raise SystemExit(f"dse: empty value list {text!r}")
    return values


def _parse_bool(token: str) -> bool:
    if token.lower() in ("true", "1", "yes"):
        return True
    if token.lower() in ("false", "0", "no"):
        return False
    raise ValueError(token)


#: dse inline options: (argparse dest, knob name, element parser).
_DSE_KNOB_OPTIONS = (
    ("kernel", "kernel", str),
    ("host_mhz", "host_mhz", float),
    ("budget_mw", "budget_mw", float),
    ("spi", "spi_mode", str),
    ("tying", "link_tying", str),
    ("untied_clock_mhz", "untied_clock_mhz", float),
    ("cluster", "cluster_size", int),
    ("iterations", "iterations", int),
    ("double_buffer", "double_buffered", _parse_bool),
)


def _dse_space(args):
    from repro.dse import ParameterSpace
    from repro.errors import ConfigurationError

    if args.spec:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"dse: cannot load spec {args.spec}: {exc}")
    else:
        grid = {}
        for dest, knob, parse in _DSE_KNOB_OPTIONS:
            text = getattr(args, dest)
            if text is not None:
                grid[knob] = _parse_values(text, parse)
        if not grid:
            raise SystemExit("dse: give --spec or at least one knob option "
                             "(e.g. --host-mhz 2,4,8)")
        spec = {"grid": grid}
    try:
        return ParameterSpace.from_dict(spec)
    except ConfigurationError as exc:
        raise SystemExit(f"dse: invalid space: {exc}")


def _cmd_dse(args) -> str:
    from repro.dse import (
        ExplorationEngine,
        ResultCache,
        render,
        to_json_dict,
    )
    from repro.errors import ConfigurationError

    space = _dse_space(args)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    try:
        engine = ExplorationEngine(cache=cache, jobs=args.jobs)
        result = engine.run(space)
    except ConfigurationError as exc:
        raise SystemExit(f"dse: {exc}")
    if getattr(args, "json", False):
        return _json_dump(to_json_dict(result))
    return render(result)


# -- benchmarks ------------------------------------------------------------------

#: ``bench`` exit code when ``--check`` / ``--compare`` find a
#: beyond-threshold throughput regression.
BENCH_EXIT_REGRESSION = 5


def _cmd_bench(args) -> str:
    from repro.bench import (
        BenchOptions,
        BenchRunner,
        DEFAULT_REPEATS,
        QUICK_REPEATS,
        compare,
        latest_bench,
        load_report,
        next_index,
        render_comparison,
        render_report,
        write_report,
    )
    from repro.errors import BenchmarkError

    try:
        if args.compare:
            old_path, new_path = args.compare
            comparison = compare(load_report(old_path),
                                 load_report(new_path),
                                 threshold=args.threshold)
            if not comparison.ok:
                args._exit_code = BENCH_EXIT_REGRESSION
            if getattr(args, "json", False):
                return _json_dump(comparison.to_json_dict())
            return render_comparison(comparison, old_label=old_path,
                                     new_label=new_path)
        repeats = args.repeats if args.repeats is not None else (
            QUICK_REPEATS if args.quick else DEFAULT_REPEATS)
        suites = None
        if args.suites:
            suites = [name for name in
                      (token.strip() for token in args.suites.split(","))
                      if name]
        # Resolve the baseline before writing, so a fresh entry never
        # becomes its own baseline.
        baseline_path = args.baseline or latest_bench(args.out_dir)
        runner = BenchRunner(BenchOptions(
            repeats=repeats, quick=args.quick, suites=suites,
            profile_path=args.profile, flame_path=args.flame))
        doc = runner.run(index=next_index(args.out_dir))
        lines = [render_report(doc)]
        path = None
        if not args.no_write:
            path = write_report(doc, args.out_dir)
            lines.append(f"wrote {path}")
        lines.extend(f"wrote {artifact}" for artifact in runner.artifacts)
        comparison = None
        if args.check:
            if baseline_path is None:
                lines.append("check: no baseline BENCH_*.json in "
                             f"{args.out_dir} — nothing to gate against")
            else:
                comparison = compare(load_report(baseline_path), doc,
                                     threshold=args.threshold)
                lines.append("")
                lines.append(render_comparison(
                    comparison, old_label=baseline_path,
                    new_label=f"BENCH_{doc['bench_index']}"))
                if not comparison.ok:
                    args._exit_code = BENCH_EXIT_REGRESSION
    except BenchmarkError as exc:
        raise SystemExit(f"bench: {exc}")
    if getattr(args, "json", False):
        payload = {"report": doc, "path": path,
                   "artifacts": runner.artifacts}
        if args.check:
            payload["baseline"] = baseline_path
            payload["check"] = (comparison.to_json_dict()
                                if comparison is not None else None)
        return _json_dump(payload)
    return "\n".join(lines)


# -- learned configuration prediction --------------------------------------------

def _cmd_learn(args) -> str:
    from repro.learn.cli import cmd_learn

    return cmd_learn(args)


def _cmd_capacity(args) -> str:
    from repro.capacity.cli import cmd_capacity

    return cmd_capacity(args)


def _cmd_all(args) -> str:
    sections = [
        ("Table I", _cmd_table1(args)),
        ("Figure 3", _cmd_figure3(args)),
        ("Figure 4", _cmd_figure4(args)),
        ("Figure 5a", _cmd_figure5a(args)),
        ("Figure 5b", figure5.render_figure5b()),
    ]
    blocks = []
    for title, body in sections:
        blocks.append(f"{'=' * 12} {title} {'=' * 12}\n{body}")
    return "\n\n".join(blocks)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DATE 2016 heterogeneous-accelerator "
                    "paper's evaluation.")
    sub = parser.add_subparsers(dest="command", required=True)

    def experiment(name: str, help_text: str) -> argparse.ArgumentParser:
        sp = sub.add_parser(name, help=help_text)
        sp.add_argument("--json", action="store_true",
                        help="machine-readable JSON instead of text")
        return sp

    experiment("table1", "Table I: benchmark summary")
    experiment("figure3", "Figure 3: GOPS vs power on matmul")
    experiment("figure4", "Figure 4: architectural/parallel speedup")
    experiment("figure5a", "Figure 5a: speedup within 10 mW")
    f5b = experiment("figure5b",
                     "Figure 5b: efficiency vs iterations/offload")
    f5b.add_argument("--kernel", choices=BENCHMARK_NAMES, default=None,
                     help="benchmark to sweep (default: cnn)")
    off = experiment("offload", "run one offload and report it")
    off.add_argument("--kernel", choices=BENCHMARK_NAMES, default="matmul")
    off.add_argument("--host-mhz", type=float, default=8.0)
    off.add_argument("--iterations", type=int, default=1)
    off.add_argument("--double-buffer", action="store_true")
    trace = sub.add_parser(
        "trace", help="offload under telemetry; export a Perfetto trace")
    trace.add_argument("kernel", nargs="?", choices=BENCHMARK_NAMES,
                       default="matmul", help="benchmark to trace")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace-event JSON output path")
    trace.add_argument("--flame", default=None, metavar="PATH",
                       help="also write flamegraph collapsed stacks of the "
                            "kernel's machine-level counterpart")
    trace.add_argument("--ascii", action="store_true",
                       help="print ASCII span timelines too")
    trace.add_argument("--host-mhz", type=float, default=8.0)
    trace.add_argument("--iterations", type=int, default=4)
    trace.add_argument("--double-buffer", action="store_true")
    metrics = sub.add_parser(
        "metrics", help="telemetry counters/lanes/phases of one offload")
    metrics.add_argument("--kernel", choices=BENCHMARK_NAMES,
                         default="matmul")
    metrics.add_argument("--json", action="store_true",
                         help="machine-readable JSON instead of tables")
    metrics.add_argument("--host-mhz", type=float, default=8.0)
    metrics.add_argument("--iterations", type=int, default=4)
    metrics.add_argument("--double-buffer", action="store_true")
    lint = sub.add_parser(
        "lint", help="static CFG/dataflow analysis of OR10N-mini assembly")
    lint.add_argument("files", nargs="*",
                      help="assembly source files to analyze")
    lint.add_argument("--all-builtin", action="store_true",
                      help="lint every built-in machine program")
    lint.add_argument("--format", choices=("pretty", "json", "sarif"),
                      default="pretty", help="output format")
    lint.add_argument("--entry-regs", default="",
                      help="comma-separated registers preset at entry, "
                           "e.g. r1,r2,r4")
    lint.add_argument("--cores", type=int, default=0,
                      help="also run the SPMD concurrency analysis "
                           "(OR011..OR014) with this many cores")
    lint.add_argument("--preset", action="append", default=[],
                      metavar="rN=BASE[@STEP]",
                      help="per-core entry value: core c gets BASE + "
                           "c*STEP (repeatable; needs --cores)")
    lint.add_argument("--dma-out", default=None, metavar="LO:HI",
                      help="byte region a DMA ships out after the "
                           "program ends (enables OR013; needs --cores)")
    lint.add_argument("--banks", type=int, default=8,
                      help="TCDM banks for the OR014 conflict model")
    lint.add_argument("--strict", action="store_true",
                      help="fail on warnings too, not only errors")
    faults = sub.add_parser(
        "faults", help="seeded fault-injection campaign on the resilient "
                       "offload runtime")
    faults.add_argument("--scenarios", type=int, default=11,
                        help="number of seeded scenarios (cycles through "
                             "the fault taxonomy)")
    faults.add_argument("--seed", type=int, default=1,
                        help="campaign seed (same seed => identical matrix)")
    faults.add_argument("--kernel", choices=BENCHMARK_NAMES,
                        default="matmul")
    faults.add_argument("--host-mhz", type=float, default=8.0)
    faults.add_argument("--iterations", type=int, default=1)
    faults.add_argument("--ber", type=float, default=2e-5,
                        help="bit error rate of the bit-error scenarios")
    faults.add_argument("--no-fallback", action="store_true",
                        help="disable the OpenMP host fallback (exhausted "
                             "ladders then count as failed)")
    faults.add_argument("--trace", default=None, metavar="PATH",
                        help="also write a Chrome trace of the campaign")
    faults.add_argument("--json", action="store_true",
                        help="machine-readable JSON instead of the matrix")
    dse = sub.add_parser(
        "dse", help="design-space exploration: parallel, cached sweeps "
                    "with Pareto analysis")
    dse.add_argument("--spec", default=None, metavar="PATH",
                     help="JSON parameter-space spec "
                          '({"grid": {...}, "points": [...]})')
    dse.add_argument("--kernel", default=None,
                     help="comma-separated kernel names")
    dse.add_argument("--host-mhz", default=None,
                     help="comma-separated host frequencies (MHz)")
    dse.add_argument("--budget-mw", default=None,
                     help="comma-separated power budgets (mW)")
    dse.add_argument("--spi", default=None,
                     help="comma-separated link widths: single,quad")
    dse.add_argument("--tying", default=None,
                     help="comma-separated link tying: tied,untied")
    dse.add_argument("--untied-clock-mhz", default=None,
                     help="comma-separated untied SPI clocks (MHz)")
    dse.add_argument("--cluster", default=None,
                     help="comma-separated cluster sizes")
    dse.add_argument("--iterations", default=None,
                     help="comma-separated iterations-per-offload values")
    dse.add_argument("--double-buffer", default=None,
                     help="comma-separated schedules: false,true")
    dse.add_argument("--jobs", type=int, default=1,
                     help="worker processes (1 = in-process, deterministic "
                          "fallback)")
    dse.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persistent result cache directory")
    dse.add_argument("--json", action="store_true",
                     help="machine-readable JSON instead of tables")
    def serve_spec(sp: argparse.ArgumentParser) -> None:
        # The shared serving-run specification: `serve` runs it as-is,
        # `chaos` layers fleet fault plans and resilience on top.
        sp.add_argument("--nodes", type=int, default=4,
                        help="accelerator nodes in the fleet")
        sp.add_argument("--policy",
                        choices=("fifo", "sjf", "edf", "power-cap"),
                        default="fifo", help="dispatch policy")
        sp.add_argument("--workload", choices=("poisson", "mmpp", "closed"),
                        default="poisson", help="request-stream generator")
        sp.add_argument("--arrival-rate", type=float, default=250.0,
                        help="open-loop arrival rate (requests/s)")
        sp.add_argument("--requests", type=int, default=600,
                        help="request-count bound (0 = duration-bound only)")
        sp.add_argument("--duration", type=float, default=None,
                        help="arrival-window bound in simulated seconds")
        sp.add_argument("--burst", type=float, default=4.0,
                        help="mmpp burst-state rate multiplier")
        sp.add_argument("--clients", type=int, default=8,
                        help="closed-loop client count")
        sp.add_argument("--think-ms", type=float, default=10.0,
                        help="closed-loop mean think time (ms)")
        sp.add_argument("--iterations", type=int, default=1,
                        help="kernel iterations per request")
        sp.add_argument("--deadline-factor", type=float, default=25.0,
                        help="deadline = arrival + factor x expected "
                             "service (0 disables deadlines)")
        sp.add_argument("--max-batch", type=int, default=8,
                        help="same-kernel requests coalesced per dispatch")
        sp.add_argument("--queue-capacity", type=int, default=0,
                        help="admission-control queue bound (0 = unbounded)")
        sp.add_argument("--drop-late", action="store_true",
                        help="drop requests already past their deadline at "
                             "dispatch time")
        sp.add_argument("--power-budget", type=float, default=None,
                        metavar="MW", help="fleet power budget in mW "
                        "(power-cap default: sized from the fleet)")
        sp.add_argument("--faults", choices=("on", "off"), default="off",
                        help="cycle canned per-node fault plans across "
                             "the fleet")
        sp.add_argument("--seed", type=int, default=1,
                        help="run seed (same seed => identical report)")
        sp.add_argument("--host-mhz", type=float, default=8.0)
        sp.add_argument("--scheduler", default=None, metavar="NAME",
                        help="extension dispatch policy registered by name "
                             "(e.g. 'predicted'; overrides --policy and "
                             "needs --model)")
        sp.add_argument("--model", default=None, metavar="PATH",
                        help="trained repro.learn model JSON: price the "
                             "fast tier at the predicted operating points")
        sp.add_argument("--confidence", type=float, default=0.5,
                        help="minimum model confidence before trusting a "
                             "prediction over the analytic point")
        sp.add_argument("--replay", default=None, metavar="PATH",
                        help="replay a JSON request trace instead of a "
                             "generator")

    serve = sub.add_parser(
        "serve", help="multi-accelerator serving simulation: workload -> "
                      "scheduler -> node fleet")
    serve_spec(serve)
    serve.add_argument("--miss-threshold", type=float, default=0.05,
                       help="miss-rate ceiling before exiting "
                            f"{SERVE_EXIT_MISSES}")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="also write a Chrome trace of the run")
    serve.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of the summary")
    chaos = sub.add_parser(
        "chaos", help="fleet fault campaigns over the serving runtime: "
                      "crash storms, brownouts, flapping, surges -> "
                      "resilience scorecard")
    serve_spec(chaos)
    chaos.add_argument("--plan", default=None, metavar="PATH",
                       help="JSON fleet plan (object or list of objects) "
                            "instead of the pinned campaign")
    chaos.add_argument("--empty", action="store_true",
                       help="run the empty plan only: bit-identical to a "
                            "plain `serve` of the same spec")
    chaos.add_argument("--chaos-seed", type=int, default=1,
                       help="seed of the fleet-plan expansion (independent "
                            "of the serve --seed)")
    chaos.add_argument("--resilience", choices=("auto", "on", "off"),
                       default="auto",
                       help="arm breakers/hedging/overload/SLO machinery "
                            "(auto: only when the plan has events)")
    chaos.add_argument("--collapse-threshold", type=float, default=0.5,
                       help="availability floor under which a scenario "
                            "counts as fleet collapse")
    chaos.add_argument("--slo-factor", type=float, default=None,
                       help="override the latency SLO factor "
                            "(target = factor x expected service)")
    chaos.add_argument("--serve-json", default=None, metavar="PATH",
                       help="write the first scenario's full serve report "
                            "JSON to PATH")
    chaos.add_argument("--alerts", default=None, metavar="PATH",
                       help="write the alerts.log-style event stream to "
                            "PATH")
    chaos.add_argument("--json", action="store_true",
                       help="machine-readable campaign JSON instead of "
                            "the scorecard table")
    bench = sub.add_parser(
        "bench", help="tracked performance benchmarks: write the next "
                      "BENCH_<n>.json, gate on regressions")
    bench.add_argument("--quick", action="store_true",
                       help="median-of-3 instead of median-of-5 (same "
                            "pinned workloads, so results stay comparable)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="explicit timed repeats per suite")
    bench.add_argument("--suites", default=None,
                       help="comma-separated suite subset (default: all; "
                            "sim,serve,dse_cold,dse_cached,faults,analysis,"
                            "learn,chaos,capacity)")
    bench.add_argument("--out-dir", default="benchmarks/results",
                       metavar="DIR",
                       help="trajectory directory for BENCH_<n>.json")
    bench.add_argument("--no-write", action="store_true",
                       help="run and report without writing a trajectory "
                            "entry")
    bench.add_argument("--check", action="store_true",
                       help="compare against the latest committed entry "
                            f"(or --baseline); exit {BENCH_EXIT_REGRESSION} "
                            "on regression")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="explicit baseline file for --check")
    bench.add_argument("--threshold", type=float, default=0.20,
                       help="median-throughput loss treated as a "
                            "regression (default 0.20)")
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                       default=None,
                       help="judge two existing BENCH files; no run")
    bench.add_argument("--profile", default=None, metavar="PATH",
                       help="write per-suite Chrome traces of the "
                            "instrumented pass (PATH gets the suite name "
                            "inserted)")
    bench.add_argument("--flame", default=None, metavar="PATH",
                       help="write a collapsed-stack flamegraph of the "
                            "per-phase totals")
    bench.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of tables")
    from repro.capacity.cli import add_capacity_parser
    from repro.learn.cli import add_learn_parser

    add_learn_parser(sub)
    add_capacity_parser(sub)
    sub.add_parser("all", help="everything, in paper order")
    sub.add_parser("report",
                   help="markdown reproduction report with anchor checks")
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5a": _cmd_figure5a,
    "figure5b": _cmd_figure5b,
    "offload": _cmd_offload,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "lint": _cmd_lint,
    "faults": _cmd_faults,
    "dse": _cmd_dse,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "learn": _cmd_learn,
    "capacity": _cmd_capacity,
    "all": _cmd_all,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        print(_COMMANDS[args.command](args))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
    return getattr(args, "_exit_code", 0)


if __name__ == "__main__":
    sys.exit(main())
