"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro table1
    python -m repro figure3
    python -m repro figure4
    python -m repro figure5a
    python -m repro figure5b [--kernel matmul]
    python -m repro offload --kernel "svm (RBF)" --host-mhz 8 --iterations 32
    python -m repro lint kernel.s [--format json] [--entry-regs r1,r2]
    python -m repro lint --all-builtin
    python -m repro all

``lint`` exits 1 when any ERROR-severity finding exists (any finding at
all with ``--strict``), so it can gate CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.system import HeterogeneousSystem
from repro.experiments import figure3, figure4, figure5, table1
from repro.kernels import BENCHMARK_NAMES, kernel_by_name
from repro.units import mhz


def _cmd_table1(_args) -> str:
    return table1.render()


def _cmd_figure3(_args) -> str:
    return figure3.render()


def _cmd_figure4(_args) -> str:
    return figure4.render()


def _cmd_figure5a(_args) -> str:
    return figure5.render_figure5a()


def _cmd_figure5b(args) -> str:
    kernel = kernel_by_name(args.kernel) if args.kernel else None
    return figure5.render_figure5b(figure5.run_figure5b(kernel))


def _cmd_offload(args) -> str:
    system = HeterogeneousSystem()
    kernel = kernel_by_name(args.kernel)
    result = system.offload(kernel, host_frequency=mhz(args.host_mhz),
                            iterations=args.iterations,
                            double_buffered=args.double_buffer)
    return result.report()


def _cmd_report(_args) -> str:
    from repro.experiments.report import build_report
    return build_report()


def _parse_entry_regs(text: str):
    registers = set()
    for token in filter(None, (t.strip() for t in text.split(","))):
        name = token.lower().lstrip("r")
        try:
            index = int(name)
        except ValueError:
            raise SystemExit(f"lint: bad register {token!r} in --entry-regs")
        if not 0 <= index < 32:
            raise SystemExit(f"lint: register {token!r} out of range")
        registers.add(index)
    return frozenset(registers)


def _cmd_lint(args) -> str:
    from repro.analysis.dataflow import ALL_REGISTERS
    from repro.analysis.linter import lint_source
    from repro.errors import IsaError
    from repro.isa.validate import Severity
    from repro.machine.programs import BUILTIN_PROGRAMS

    entry_regs = _parse_entry_regs(args.entry_regs or "")
    reports = []
    if args.all_builtin:
        for program in BUILTIN_PROGRAMS.values():
            reports.append(lint_source(
                program.source, name=program.name,
                entry_regs=program.entry_regs,
                exit_live=program.exit_live if program.exit_live is not None
                else ALL_REGISTERS))
    if not args.all_builtin and not args.files:
        raise SystemExit("lint: give one or more .s files or --all-builtin")
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise SystemExit(f"lint: cannot read {path}: {exc}")
        try:
            reports.append(lint_source(source, name=path,
                                       entry_regs=entry_regs))
        except IsaError as exc:
            # Assembly itself failed; surface it like a finding and fail.
            args._exit_code = 1
            reports.append(None)
            print(f"{path}: assembly error: {exc}", file=sys.stderr)

    failed = any(report is None or not report.ok for report in reports)
    if args.strict:
        failed = failed or any(
            report is not None and any(
                f.severity is not Severity.INFO for f in report.findings)
            for report in reports)
    if failed:
        args._exit_code = 1
    good = [report for report in reports if report is not None]
    if args.format == "json":
        return "[" + ",\n".join(r.to_json() for r in good) + "]"
    return "\n\n".join(r.render() for r in good)


def _cmd_all(args) -> str:
    sections = [
        ("Table I", _cmd_table1(args)),
        ("Figure 3", _cmd_figure3(args)),
        ("Figure 4", _cmd_figure4(args)),
        ("Figure 5a", _cmd_figure5a(args)),
        ("Figure 5b", figure5.render_figure5b()),
    ]
    blocks = []
    for title, body in sections:
        blocks.append(f"{'=' * 12} {title} {'=' * 12}\n{body}")
    return "\n\n".join(blocks)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DATE 2016 heterogeneous-accelerator "
                    "paper's evaluation.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table I: benchmark summary")
    sub.add_parser("figure3", help="Figure 3: GOPS vs power on matmul")
    sub.add_parser("figure4", help="Figure 4: architectural/parallel speedup")
    sub.add_parser("figure5a", help="Figure 5a: speedup within 10 mW")
    f5b = sub.add_parser("figure5b",
                         help="Figure 5b: efficiency vs iterations/offload")
    f5b.add_argument("--kernel", choices=BENCHMARK_NAMES, default=None,
                     help="benchmark to sweep (default: cnn)")
    off = sub.add_parser("offload", help="run one offload and report it")
    off.add_argument("--kernel", choices=BENCHMARK_NAMES, default="matmul")
    off.add_argument("--host-mhz", type=float, default=8.0)
    off.add_argument("--iterations", type=int, default=1)
    off.add_argument("--double-buffer", action="store_true")
    lint = sub.add_parser(
        "lint", help="static CFG/dataflow analysis of OR10N-mini assembly")
    lint.add_argument("files", nargs="*",
                      help="assembly source files to analyze")
    lint.add_argument("--all-builtin", action="store_true",
                      help="lint every built-in machine program")
    lint.add_argument("--format", choices=("pretty", "json"),
                      default="pretty", help="output format")
    lint.add_argument("--entry-regs", default="",
                      help="comma-separated registers preset at entry, "
                           "e.g. r1,r2,r4")
    lint.add_argument("--strict", action="store_true",
                      help="fail on warnings too, not only errors")
    sub.add_parser("all", help="everything, in paper order")
    sub.add_parser("report",
                   help="markdown reproduction report with anchor checks")
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5a": _cmd_figure5a,
    "figure5b": _cmd_figure5b,
    "offload": _cmd_offload,
    "lint": _cmd_lint,
    "all": _cmd_all,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        print(_COMMANDS[args.command](args))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
    return getattr(args, "_exit_code", 0)


if __name__ == "__main__":
    sys.exit(main())
