"""Pareto frontiers, per-knob sensitivity and exports for DSE results.

Pareto semantics: over the *feasible* records, maximize end-to-end
speedup while minimizing energy per iteration and total system power.
A point survives if no other point is at least as good on every
objective and strictly better on one.  Ties collapse — of several
points with identical objective vectors, the one whose configuration
hash sorts first represents the group — so the frontier is a canonical,
order-independent set.

Sensitivity: for each knob that takes more than one value, group the
records that agree on every *other* knob and measure how much the
objective moves within each group when only that knob changes.  The
reported spread is that within-group movement (mean and max), plus its
size relative to the overall mean objective — a quick ranking of which
knob is worth an architect's attention.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

from repro.dse.space import KNOB_ORDER

#: Objectives to maximize / minimize, as keys into ``record["metrics"]``.
MAXIMIZE: Tuple[str, ...] = ("effective_speedup",)
MINIMIZE: Tuple[str, ...] = ("energy_per_iteration_j", "total_power_w")

#: Default objective for sensitivity ranking.
DEFAULT_OBJECTIVE = "effective_speedup"


def objective_vector(record: Mapping[str, Any],
                     maximize: Tuple[str, ...] = MAXIMIZE,
                     minimize: Tuple[str, ...] = MINIMIZE,
                     ) -> Tuple[float, ...]:
    """The record's objectives, sign-folded so larger is always better."""
    metrics = record["metrics"]
    return tuple([metrics[key] for key in maximize]
                 + [-metrics[key] for key in minimize])


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """Whether folded vector *a* Pareto-dominates *b*."""
    return all(x >= y for x, y in zip(a, b)) and a != b


def pareto_frontier(records: List[Mapping[str, Any]],
                    maximize: Tuple[str, ...] = MAXIMIZE,
                    minimize: Tuple[str, ...] = MINIMIZE,
                    ) -> List[Dict[str, Any]]:
    """The non-dominated feasible records, in canonical order.

    Objectives default to the offload-DSE triple (maximize speedup,
    minimize energy and power); callers with different metrics — the
    fleet-composition planner maximizes throughput while minimizing
    energy/request and p95 — pass their own *maximize*/*minimize* keys.

    Canonical order: the folded objective vector, best first, then
    ascending configuration hash — identical for serial, parallel and
    cached runs over the same space.  Ties collapse deterministically:
    of several points with identical objective vectors, the smallest
    configuration hash represents the group (the scan below visits
    records in hash order, so the first holder of a vector wins).
    """
    feasible = [r for r in records if r.get("feasible")]
    vectors = {r["config_hash"]: objective_vector(r, maximize, minimize)
               for r in feasible}
    frontier = []
    seen_vectors = set()
    for record in sorted(feasible, key=lambda r: r["config_hash"]):
        vector = vectors[record["config_hash"]]
        if vector in seen_vectors:
            continue
        if any(_dominates(vectors[other["config_hash"]], vector)
               for other in feasible):
            continue
        seen_vectors.add(vector)
        frontier.append(dict(record))
    frontier.sort(key=lambda r: (
        tuple(-v for v in vectors[r["config_hash"]]), r["config_hash"]))
    return frontier


def sensitivity(records: List[Mapping[str, Any]],
                objective: str = DEFAULT_OBJECTIVE) -> Dict[str, Dict[str, Any]]:
    """Per-knob effect on *objective* across the feasible records."""
    feasible = [r for r in records if r.get("feasible")]
    if not feasible:
        return {}
    overall_mean = (sum(r["metrics"][objective] for r in feasible)
                    / len(feasible))
    summary: Dict[str, Dict[str, Any]] = {}
    for knob in KNOB_ORDER:
        values = {json.dumps(r["config"][knob]) for r in feasible}
        if len(values) < 2:
            continue
        groups: Dict[str, Dict[str, float]] = {}
        for record in feasible:
            rest = {k: v for k, v in record["config"].items() if k != knob}
            key = json.dumps(rest, sort_keys=True)
            groups.setdefault(key, {})[json.dumps(record["config"][knob])] \
                = record["metrics"][objective]
        spreads = [max(group.values()) - min(group.values())
                   for group in groups.values() if len(group) >= 2]
        if not spreads:
            continue
        mean_spread = sum(spreads) / len(spreads)
        summary[knob] = {
            "values": len(values),
            "groups": len(spreads),
            "mean_spread": mean_spread,
            "max_spread": max(spreads),
            "relative_effect": (mean_spread / overall_mean
                                if overall_mean else 0.0),
        }
    return summary


# -- exports --------------------------------------------------------------------

def to_rows(result) -> List[Dict[str, Any]]:
    """Every evaluated configuration as one flat JSON row.

    One row per record — feasible or not, no Pareto filtering — in
    deterministic config-hash order.  Knobs spread to ``knob.<name>``
    columns and metrics to ``metric.<name>`` columns so the rows land
    in a dataframe or a ``repro.learn`` dataset without unpacking
    nested dicts.  This is the full-sweep export surface; callers never
    need to reach into :class:`~repro.dse.engine.ExplorationResult`
    internals.
    """
    rows: List[Dict[str, Any]] = []
    for record in sorted(result.records, key=lambda r: r["config_hash"]):
        row: Dict[str, Any] = {
            "config_hash": record["config_hash"],
            "model_version": record.get("model_version",
                                        result.model_version),
            "feasible": bool(record.get("feasible")),
            "error": record.get("error"),
        }
        for knob in KNOB_ORDER:
            row[f"knob.{knob}"] = record["config"][knob]
        for key, value in sorted((record.get("metrics") or {}).items()):
            row[f"metric.{key}"] = value
        rows.append(row)
    return rows


def to_json_dict(result, objective: str = DEFAULT_OBJECTIVE) -> Dict[str, Any]:
    """The machine-readable exploration document (the ``--json`` surface)."""
    return {
        "spec": result.spec,
        "model_version": result.model_version,
        "stats": result.stats.to_dict(),
        "pareto": [_frontier_entry(r) for r in pareto_frontier(result.records)],
        "sensitivity": sensitivity(result.records, objective),
        "records": result.records,
    }


def _frontier_entry(record: Mapping[str, Any]) -> Dict[str, Any]:
    metrics = record["metrics"]
    return {
        "config": dict(record["config"]),
        "config_hash": record["config_hash"],
        "effective_speedup": metrics["effective_speedup"],
        "energy_per_iteration_j": metrics["energy_per_iteration_j"],
        "total_power_w": metrics["total_power_w"],
    }


def render(result, objective: str = DEFAULT_OBJECTIVE) -> str:
    """Human-readable exploration summary: stats, frontier, sensitivity."""
    stats = result.stats
    lines = [
        f"explored {stats.configurations} configuration(s) with "
        f"{stats.jobs} job(s) in {stats.elapsed_s:.2f} s",
        f"  cache: {stats.cache_hits} hit(s), {stats.cache_misses} miss(es) "
        f"({stats.hit_rate:.0%} hit rate); "
        f"{stats.infeasible} infeasible point(s)",
        "",
        "Pareto frontier (max speedup, min energy/iter, min power):",
    ]
    frontier = pareto_frontier(result.records)
    if not frontier:
        lines.append("  (empty — no feasible points)")
    for record in frontier:
        metrics = record["metrics"]
        knobs = record["config"]
        label = (f"{knobs['kernel']} host={knobs['host_mhz']:g}MHz "
                 f"budget={knobs['budget_mw']:g}mW {knobs['spi_mode']} "
                 f"{knobs['link_tying']} x{knobs['cluster_size']} "
                 f"i{knobs['iterations']}"
                 + (" dbuf" if knobs["double_buffered"] else ""))
        lines.append(f"  {label:58s} speedup {metrics['effective_speedup']:7.2f}x  "
                     f"energy/iter {metrics['energy_per_iteration_j']:.3e} J  "
                     f"power {metrics['total_power_w'] * 1e3:6.2f} mW")
    knob_summary = sensitivity(result.records, objective)
    if knob_summary:
        lines.append("")
        lines.append(f"sensitivity of {objective} (within-group spread):")
        ranked = sorted(knob_summary.items(),
                        key=lambda item: -item[1]["relative_effect"])
        for knob, info in ranked:
            lines.append(f"  {knob:18s} {info['values']} value(s), "
                         f"mean spread {info['mean_spread']:9.3f}, "
                         f"max {info['max_spread']:9.3f} "
                         f"({info['relative_effect']:.0%} of mean)")
    return "\n".join(lines)
