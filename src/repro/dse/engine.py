"""The exploration engine: cache lookup, fan-out evaluation, telemetry.

:class:`ExplorationEngine` turns a :class:`~repro.dse.space.ParameterSpace`
into a list of evaluation records:

1. expand the space into canonical configurations (deterministic order);
2. look every configuration up in the :class:`~repro.dse.cache.ResultCache`
   under the current model version;
3. fan the misses out across a ``ProcessPoolExecutor`` (``jobs > 1``) or
   evaluate them in-process (``jobs == 1`` — the deterministic fallback
   that needs no fork support);
4. persist fresh records to the cache and reassemble everything in
   configuration order, so parallel, serial and fully cached runs return
   bit-identical results.

Progress is reported through the active :mod:`repro.obs` hub: a
``dse.run`` span around the whole exploration, a ``dse.evaluate`` span
around the miss batch, ``dse.cache.hits`` / ``dse.cache.misses`` /
``dse.evaluations`` counters and a streaming ``dse.progress`` gauge.
"""

from __future__ import annotations

import functools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs import get_telemetry, monotonic

from repro.dse import evaluate as _evaluate
from repro.dse.cache import ResultCache
from repro.dse.space import Configuration, ParameterSpace


@dataclass(frozen=True)
class ExplorationStats:
    """Bookkeeping of one engine run."""

    configurations: int
    cache_hits: int
    cache_misses: int
    evaluated: int
    infeasible: int
    jobs: int
    elapsed_s: float

    @property
    def hit_rate(self) -> float:
        """Fraction of configurations served from the cache."""
        if self.configurations == 0:
            return 0.0
        return self.cache_hits / self.configurations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "configurations": self.configurations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evaluated": self.evaluated,
            "infeasible": self.infeasible,
            "jobs": self.jobs,
            "elapsed_s": self.elapsed_s,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ExplorationResult:
    """Everything one exploration produced, in configuration order."""

    spec: Dict[str, Any]
    model_version: str
    records: List[Dict[str, Any]]
    stats: ExplorationStats

    @property
    def feasible_records(self) -> List[Dict[str, Any]]:
        """Records of points where the offload was actually possible."""
        return [r for r in self.records if r["feasible"]]


class ExplorationEngine:
    """High-throughput evaluator over a declarative parameter space."""

    def __init__(self, cache: Optional[ResultCache] = None, jobs: int = 1):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.jobs = jobs

    def run(self, space: ParameterSpace) -> ExplorationResult:
        """Evaluate every configuration of *space*; cached where possible."""
        model_version = _evaluate.MODEL_VERSION
        configs = space.expand()
        hub = get_telemetry()
        started = monotonic()
        by_hash: Dict[str, Dict[str, Any]] = {}
        misses: List[Configuration] = []
        with hub.timed("dse.run", "dse", total=len(configs),
                       jobs=self.jobs):
            for config in configs:
                cached = (self.cache.get(config.hash, model_version)
                          if self.cache is not None else None)
                if cached is not None:
                    by_hash[config.hash] = cached
                    hub.count("dse.cache.hits")
                else:
                    misses.append(config)
                    hub.count("dse.cache.misses")
            fresh = self._evaluate_all(misses, model_version, hub)
            for record in fresh:
                by_hash[record["config_hash"]] = record
                if self.cache is not None:
                    self.cache.put(record)
        records = [by_hash[config.hash] for config in configs]
        stats = ExplorationStats(
            configurations=len(configs),
            cache_hits=len(configs) - len(misses),
            cache_misses=len(misses),
            evaluated=len(misses),
            infeasible=sum(1 for r in records if not r["feasible"]),
            jobs=self.jobs,
            elapsed_s=monotonic() - started,
        )
        return ExplorationResult(spec=space.to_dict(),
                                 model_version=model_version,
                                 records=records, stats=stats)

    def _evaluate_all(self, misses: List[Configuration], model_version: str,
                      hub) -> List[Dict[str, Any]]:
        """Evaluate the cache misses, in parallel when it pays off."""
        if not misses:
            return []
        worker = functools.partial(_evaluate.evaluate_config,
                                   model_version=model_version)
        knob_dicts = [config.as_dict() for config in misses]
        results: List[Dict[str, Any]] = []
        with hub.timed("dse.evaluate", "dse", count=len(misses)):
            if self.jobs == 1 or len(misses) == 1:
                for index, knobs in enumerate(knob_dicts):
                    results.append(worker(knobs))
                    hub.count("dse.evaluations")
                    hub.gauge("dse.progress", (index + 1) / len(misses))
            else:
                workers = min(self.jobs, len(misses))
                chunk = max(1, len(misses) // (4 * workers))
                with ProcessPoolExecutor(max_workers=workers) as executor:
                    for index, record in enumerate(
                            executor.map(worker, knob_dicts,
                                         chunksize=chunk)):
                        results.append(record)
                        hub.count("dse.evaluations")
                        hub.gauge("dse.progress",
                                  (index + 1) / len(misses))
        return results
