"""Design-space exploration: declarative sweeps over the paper's knobs.

The subsystem behind ``python -m repro dse``:

- :class:`~repro.dse.space.ParameterSpace` / ``Configuration`` — a
  declarative grid + explicit points over host frequency, power budget,
  link width/tying, cluster size, kernel and schedule, with validation
  and stable content hashing;
- :func:`~repro.dse.evaluate.evaluate_config` — one deterministic,
  picklable model evaluation (``MODEL_VERSION`` names its semantics);
- :class:`~repro.dse.cache.ResultCache` — content-addressed persistent
  cache keyed on configuration hash + model version;
- :class:`~repro.dse.engine.ExplorationEngine` — cache-aware fan-out
  across a process pool, with :mod:`repro.obs` progress telemetry;
- :mod:`~repro.dse.pareto` — Pareto frontiers, per-knob sensitivity,
  JSON/table export.

See ``docs/DSE.md`` for the spec format and semantics.
"""

from repro.dse.cache import ResultCache
from repro.dse.engine import (
    ExplorationEngine,
    ExplorationResult,
    ExplorationStats,
)
from repro.dse.evaluate import MODEL_VERSION, build_system, evaluate_config
from repro.dse.pareto import (
    pareto_frontier,
    render,
    sensitivity,
    to_json_dict,
    to_rows,
)
from repro.dse.space import (
    DEFAULTS,
    KNOB_ORDER,
    Configuration,
    ParameterSpace,
    canonicalize,
    config_hash,
)

__all__ = [
    "Configuration",
    "DEFAULTS",
    "ExplorationEngine",
    "ExplorationResult",
    "ExplorationStats",
    "KNOB_ORDER",
    "MODEL_VERSION",
    "ParameterSpace",
    "ResultCache",
    "build_system",
    "canonicalize",
    "config_hash",
    "evaluate_config",
    "pareto_frontier",
    "render",
    "sensitivity",
    "to_json_dict",
    "to_rows",
]
