"""Evaluate one design-space configuration with the analytic models.

:func:`evaluate_config` is a pure module-level function over a canonical
knob dict, so it is picklable and can run inside
``ProcessPoolExecutor`` workers; each worker builds its own
:class:`~repro.core.system.HeterogeneousSystem` from the knobs.  The
evaluation is deterministic — the same configuration always produces a
bit-identical record — which is what makes content-addressed caching
(:mod:`repro.dse.cache`) sound.

``MODEL_VERSION`` names the behaviour of the underlying models.  It is
part of every record and every cache key: bump it whenever a model
change may move any metric, and all previously cached results become
stale automatically.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro import __version__
from repro.core.system import HeterogeneousSystem
from repro.errors import ReproError
from repro.kernels import kernel_by_name
from repro.link.spi import SpiLink, SpiMode
from repro.mcu.stm32l476 import Stm32L476, UntiedSpiHost
from repro.units import mhz, mw

from repro.dse.space import canonicalize, config_hash

#: Version of the evaluation semantics; part of every cache key.
MODEL_VERSION = f"repro-{__version__}/dse-1"

_SPI_MODES = {"single": SpiMode.SINGLE, "quad": SpiMode.QUAD}


def build_system(knobs: Mapping[str, Any]) -> HeterogeneousSystem:
    """Construct the heterogeneous system a canonical config describes."""
    if knobs["link_tying"] == "untied":
        host = UntiedSpiHost(serial_clock=mhz(knobs["untied_clock_mhz"]))
    else:
        host = Stm32L476()
    return HeterogeneousSystem(
        host=host,
        link=SpiLink(_SPI_MODES[knobs["spi_mode"]]),
        threads=knobs["cluster_size"],
        budget=mw(knobs["budget_mw"]),
    )


def evaluate_config(knobs: Mapping[str, Any],
                    model_version: str = None) -> Dict[str, Any]:
    """Run one configuration end to end and return its result record.

    Infeasible points (e.g. a host frequency whose own power exhausts
    the budget) are *results*, not errors: the record comes back with
    ``feasible`` false and the failure message, so sweeps that cross the
    feasibility boundary still complete and cache cleanly.
    """
    canonical = canonicalize(knobs)
    record: Dict[str, Any] = {
        "config": canonical,
        "config_hash": config_hash(canonical),
        "model_version": (MODEL_VERSION if model_version is None
                          else model_version),
        "feasible": False,
        "error": None,
        "metrics": None,
    }
    try:
        system = build_system(canonical)
        result = system.offload(
            kernel_by_name(canonical["kernel"]),
            host_frequency=mhz(canonical["host_mhz"]),
            iterations=canonical["iterations"],
            double_buffered=canonical["double_buffered"],
        )
    except ReproError as exc:
        record["error"] = f"{type(exc).__name__}: {exc}"
        return record
    record["feasible"] = True
    record["metrics"] = result.metrics()
    return record
