"""Content-addressed result cache for design-space exploration.

Each evaluated configuration is persisted as one JSON document named by
its configuration hash, written and read through
:mod:`repro.experiments.store` so cached records use the same on-disk
format as every other stored run.  A hit requires both the hash *and*
the model version to match — bumping
:data:`repro.dse.evaluate.MODEL_VERSION` invalidates every stale entry
without touching the filesystem.

Corrupt or foreign files in the cache directory are treated as misses,
never as errors: a cache must not be able to break an exploration.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.experiments import store

PathLike = Union[str, pathlib.Path]


class ResultCache:
    """Persistent configuration-hash -> evaluation-record store."""

    def __init__(self, directory: PathLike):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, config_hash: str) -> pathlib.Path:
        return self.directory / f"{config_hash}.json"

    def get(self, config_hash: str,
            model_version: str) -> Optional[Dict[str, Any]]:
        """The cached record, or ``None`` on miss / version mismatch."""
        path = self._path(config_hash)
        if not path.exists():
            return None
        try:
            document = store.load_results(path)
        except (ConfigurationError, ValueError, OSError):
            return None
        metadata = document.get("metadata", {})
        if metadata.get("model_version") != model_version:
            return None
        record = document["results"]
        if not isinstance(record, dict) \
                or record.get("config_hash") != config_hash:
            return None
        return record

    def put(self, record: Dict[str, Any]) -> None:
        """Persist one evaluation record under its configuration hash."""
        store.save_results(record, self._path(record["config_hash"]),
                           metadata={
                               "kind": "dse-record",
                               "config_hash": record["config_hash"],
                               "model_version": record["model_version"],
                           })

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete all cached entries; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
