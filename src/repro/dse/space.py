"""Declarative parameter-space specification for design-space exploration.

A :class:`ParameterSpace` names the knobs the paper's Section V argues
about — host frequency, power budget, link width and tying, cluster
size, kernel, schedule — as a *grid* (cross product of per-knob value
lists) plus optional *explicit points*.  Every expanded
:class:`Configuration` is validated, normalized to a canonical form and
given a stable content hash, so overlapping sweeps, cache lookups and
stored results all agree on configuration identity.

Canonicalization rules that matter for hashing:

* every knob is present (defaults fill the gaps) with a normalized type;
* ``untied_clock_mhz`` is forced to its default while ``link_tying`` is
  ``"tied"`` — the knob is inert there, and two specs that differ only
  in an inert knob must hash identically.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.kernels import BENCHMARK_NAMES

#: Knob names in canonical (display and expansion) order.
KNOB_ORDER: Tuple[str, ...] = (
    "kernel", "host_mhz", "budget_mw", "spi_mode", "link_tying",
    "untied_clock_mhz", "cluster_size", "iterations", "double_buffered",
)

#: Default value of every knob (the paper's prototype configuration).
DEFAULTS: Dict[str, Any] = {
    "kernel": "matmul",
    "host_mhz": 8.0,
    "budget_mw": 10.0,
    "spi_mode": "quad",
    "link_tying": "tied",
    "untied_clock_mhz": 24.0,
    "cluster_size": 4,
    "iterations": 1,
    "double_buffered": False,
}

_SPI_MODES = ("single", "quad")
_TYINGS = ("tied", "untied")


def _norm_kernel(value: Any) -> str:
    if value not in BENCHMARK_NAMES:
        known = ", ".join(BENCHMARK_NAMES)
        raise ConfigurationError(f"unknown kernel {value!r}; known: {known}")
    return str(value)


def _norm_positive_float(name: str):
    def norm(value: Any) -> float:
        try:
            number = float(value)
        except (TypeError, ValueError):
            raise ConfigurationError(f"{name} must be a number, got {value!r}")
        if number <= 0 or number != number:
            raise ConfigurationError(f"{name} must be positive, got {value!r}")
        return number
    return norm


def _norm_choice(name: str, choices: Sequence[str]):
    def norm(value: Any) -> str:
        text = str(value).lower()
        if text not in choices:
            raise ConfigurationError(
                f"{name} must be one of {', '.join(choices)}; got {value!r}")
        return text
    return norm


def _norm_int(name: str, lo: int, hi: int):
    def norm(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or int(value) != value:
            raise ConfigurationError(f"{name} must be an integer, got {value!r}")
        number = int(value)
        if not lo <= number <= hi:
            raise ConfigurationError(
                f"{name} must be in [{lo}, {hi}], got {number}")
        return number
    return norm


def _norm_bool(name: str):
    def norm(value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise ConfigurationError(f"{name} must be a boolean, got {value!r}")
    return norm


_NORMALIZERS = {
    "kernel": _norm_kernel,
    "host_mhz": _norm_positive_float("host_mhz"),
    "budget_mw": _norm_positive_float("budget_mw"),
    "spi_mode": _norm_choice("spi_mode", _SPI_MODES),
    "link_tying": _norm_choice("link_tying", _TYINGS),
    "untied_clock_mhz": _norm_positive_float("untied_clock_mhz"),
    "cluster_size": _norm_int("cluster_size", 1, 8),
    "iterations": _norm_int("iterations", 1, 1_000_000),
    "double_buffered": _norm_bool("double_buffered"),
}


def canonicalize(knobs: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate *knobs* and return the complete canonical configuration."""
    unknown = set(knobs) - set(KNOB_ORDER)
    if unknown:
        raise ConfigurationError(
            f"unknown knob(s) {sorted(unknown)}; known: {list(KNOB_ORDER)}")
    canonical: Dict[str, Any] = {}
    for name in KNOB_ORDER:
        value = knobs.get(name, DEFAULTS[name])
        canonical[name] = _NORMALIZERS[name](value)
    if canonical["link_tying"] == "tied":
        canonical["untied_clock_mhz"] = DEFAULTS["untied_clock_mhz"]
    return canonical


def config_hash(canonical: Mapping[str, Any]) -> str:
    """Stable content hash of a canonical configuration."""
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Configuration:
    """One validated point of the design space."""

    knobs: Tuple[Tuple[str, Any], ...]
    hash: str

    @classmethod
    def from_knobs(cls, knobs: Mapping[str, Any]) -> "Configuration":
        canonical = canonicalize(knobs)
        return cls(knobs=tuple(canonical.items()),
                   hash=config_hash(canonical))

    def as_dict(self) -> Dict[str, Any]:
        """The canonical knob dict (KNOB_ORDER key order)."""
        return dict(self.knobs)

    def label(self) -> str:
        """Compact human-readable identity for tables and spans."""
        knobs = self.as_dict()
        parts = [knobs["kernel"], f"{knobs['host_mhz']:g}MHz",
                 f"{knobs['budget_mw']:g}mW", knobs["spi_mode"],
                 knobs["link_tying"], f"x{knobs['cluster_size']}",
                 f"i{knobs['iterations']}"]
        if knobs["double_buffered"]:
            parts.append("dbuf")
        return "/".join(parts)


@dataclass
class ParameterSpace:
    """A grid plus explicit points over the exploration knobs."""

    grid: Dict[str, List[Any]] = field(default_factory=dict)
    points: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, values in self.grid.items():
            if name not in KNOB_ORDER:
                raise ConfigurationError(
                    f"unknown grid knob {name!r}; known: {list(KNOB_ORDER)}")
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigurationError(
                    f"grid knob {name!r} needs a non-empty value list, "
                    f"got {values!r}")

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "ParameterSpace":
        """Build a space from a spec document ``{"grid": ..., "points": ...}``."""
        if not isinstance(spec, Mapping):
            raise ConfigurationError(f"spec must be a mapping, got {spec!r}")
        unknown = set(spec) - {"grid", "points"}
        if unknown:
            raise ConfigurationError(
                f"unknown spec key(s) {sorted(unknown)}; "
                f"expected 'grid' and/or 'points'")
        grid = spec.get("grid", {})
        points = spec.get("points", [])
        if not isinstance(grid, Mapping):
            raise ConfigurationError("spec 'grid' must be a mapping")
        if not isinstance(points, (list, tuple)):
            raise ConfigurationError("spec 'points' must be a list")
        return cls(grid={k: list(v) for k, v in grid.items()},
                   points=[dict(p) for p in points])

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-safe spec document this space was built from."""
        return {"grid": {k: list(v) for k, v in self.grid.items()},
                "points": [dict(p) for p in self.points]}

    def expand(self) -> List[Configuration]:
        """All configurations: grid cross product, then explicit points.

        Deterministic order; duplicates (by content hash) keep only
        their first occurrence, so overlapping grids and points are
        evaluated once.
        """
        configs: List[Configuration] = []
        seen: set = set()

        def add(knobs: Mapping[str, Any]) -> None:
            config = Configuration.from_knobs(knobs)
            if config.hash not in seen:
                seen.add(config.hash)
                configs.append(config)

        names = [name for name in KNOB_ORDER if name in self.grid]
        if names:
            for combo in itertools.product(*(self.grid[n] for n in names)):
                add(dict(zip(names, combo)))
        elif not self.points:
            add({})
        for point in self.points:
            add(point)
        return configs

    def __len__(self) -> int:
        return len(self.expand())
