"""Kernel binary model.

The paper offloads "the strictly required kernel alone" — one binary per
kernel, whose size (Table I, "Binary Size") directly prices the code
offload of Figure 5b.  A :class:`KernelBinary` models that image as the
sum of its link-map segments:

* ``.text`` — code, estimated at 4 bytes per static instruction of the
  kernel program plus the OpenMP device runtime stub and boot code;
* ``.rodata`` — constants shipped with the kernel (SVM model, CNN
  weights, LUTs);
* ``.bss/.data`` — the working buffers the linker reserves in L2.

``to_bytes`` renders a deterministic fake image so the offload path can
actually push real bytes through the wire protocol into L2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.program import Program

#: Device-side OpenMP runtime stub linked into every binary.
RUNTIME_STUB_BYTES = 2560
#: Boot/startup code.
BOOT_BYTES = 512
#: Bytes per encoded instruction.
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class KernelBinary:
    """One offloadable kernel image."""

    name: str
    code_bytes: int
    const_bytes: int = 0
    buffer_bytes: int = 0
    entry_offset: int = 0

    def __post_init__(self) -> None:
        if min(self.code_bytes, self.const_bytes, self.buffer_bytes) < 0:
            raise ConfigurationError(f"negative segment in binary {self.name!r}")

    @classmethod
    def from_program(cls, program: Program,
                     extra_code_bytes: int = 0) -> "KernelBinary":
        """Build the image descriptor for a kernel program."""
        code = (program.static_instruction_estimate() * INSTRUCTION_BYTES
                + RUNTIME_STUB_BYTES + BOOT_BYTES + extra_code_bytes)
        return cls(
            name=program.name,
            code_bytes=code,
            const_bytes=program.const_bytes,
            buffer_bytes=program.buffer_bytes,
        )

    @property
    def image_bytes(self) -> int:
        """Bytes that must actually travel over the link (.text + .rodata)."""
        return self.code_bytes + self.const_bytes

    @property
    def footprint_bytes(self) -> int:
        """Total L2 footprint, including buffers (Table I's binary size)."""
        return self.code_bytes + self.const_bytes + self.buffer_bytes

    def to_bytes(self) -> bytes:
        """A deterministic stand-in image of ``image_bytes`` length."""
        seed = hashlib.sha256(self.name.encode("utf-8")).digest()
        chunks = []
        remaining = self.image_bytes
        counter = 0
        while remaining > 0:
            block = hashlib.sha256(seed + counter.to_bytes(4, "little")).digest()
            chunks.append(block[:min(32, remaining)])
            remaining -= 32
            counter += 1
        return b"".join(chunks)
