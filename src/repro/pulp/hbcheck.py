"""Happens-before race checking over cluster memory traffic.

The dynamic cross-validator of the static OR011 rule
(:mod:`repro.analysis.concurrency`): every granted TCDM access feeds a
vector-clock checker; barrier completions join the clocks.  A pair of
accesses to a common byte from different cores, at least one a store,
with neither ordered before the other, is a *witnessed* race — ground
truth the static analysis must never miss (dynamic races must be a
subset of the statically reported ones; the reverse can over-report).

Clock discipline: core ``c`` starts with ``VC[c][c] = 1``.  A cluster
barrier is a release-acquire by every participant — all clocks join to
their elementwise maximum, then each core increments its own
component.  Access A on core ``i`` happened-before access B elsewhere
iff ``VC_B[i] >= VC_A[i]`` at the respective access times; with
all-core barriers that reduces to "a barrier completed in between",
which is exactly the ordering the hardware provides.

Shadow state is byte-granular: the last write (with its writer's
epoch) and the last read per core since that write.  That is enough
for detection — any race has a witness against the most recent
conflicting access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SimulationError

#: (core, tag) identity of one access; tag is the site pc when known.
AccessId = Tuple[int, Optional[int]]


@dataclass(frozen=True)
class DynamicRace:
    """One witnessed unordered conflicting pair."""

    address: int
    first: AccessId
    second: AccessId
    first_is_store: bool
    second_is_store: bool

    @property
    def pc_pair(self) -> Optional[Tuple[int, int]]:
        """Sorted (pc, pc) of the two sites, when both are tagged."""
        if self.first[1] is None or self.second[1] is None:
            return None
        return (min(self.first[1], self.second[1]),
                max(self.first[1], self.second[1]))


@dataclass
class _ByteState:
    """Shadow cell for one byte of shared memory."""

    write: Optional[Tuple[int, Optional[int], int]] = None  # core, tag, epoch
    #: Last read per core since the last write: core -> (tag, epoch).
    reads: Dict[int, Tuple[Optional[int], int]] = field(default_factory=dict)


class RaceChecker:
    """Vector-clock happens-before checker for one cluster run."""

    def __init__(self, cores: int):
        if cores < 1:
            raise SimulationError(f"need >= 1 core, got {cores}")
        self.cores = cores
        self.clocks = [[1 if i == c else 0 for i in range(cores)]
                       for c in range(cores)]
        self.races: List[DynamicRace] = []
        self.accesses = 0
        self.barriers = 0
        self._shadow: Dict[int, _ByteState] = {}
        self._seen: Set[frozenset] = set()

    # -- synchronization -------------------------------------------------------

    def on_barrier(self, barriers_completed: Optional[int] = None) -> None:
        """All cores release-acquire through a completed barrier.

        Signature matches the :class:`HardwareSynchronizer` observer
        protocol (the argument is informational only).
        """
        joined = [max(clock[i] for clock in self.clocks)
                  for i in range(self.cores)]
        for core in range(self.cores):
            self.clocks[core] = list(joined)
            self.clocks[core][core] += 1
        self.barriers += 1

    # -- accesses ----------------------------------------------------------------

    def on_access(self, core: int, address: int, width: int, is_store: bool,
                  tag: Optional[int] = None) -> Optional[DynamicRace]:
        """Check one granted access; returns the race it witnessed, if
        any (also appended to :attr:`races`)."""
        if not 0 <= core < self.cores:
            raise SimulationError(f"core {core} out of range")
        self.accesses += 1
        clock = self.clocks[core]
        epoch = clock[core]
        found: Optional[DynamicRace] = None
        for byte in range(address, address + width):
            cell = self._shadow.setdefault(byte, _ByteState())
            if cell.write is not None:
                w_core, w_tag, w_epoch = cell.write
                if w_core != core and clock[w_core] < w_epoch:
                    found = self._record(byte, (w_core, w_tag), True,
                                         (core, tag), is_store) or found
            if is_store:
                for r_core, (r_tag, r_epoch) in cell.reads.items():
                    if r_core != core and clock[r_core] < r_epoch:
                        found = self._record(byte, (r_core, r_tag), False,
                                             (core, tag), True) or found
                cell.write = (core, tag, epoch)
                cell.reads = {}
            else:
                cell.reads[core] = (tag, epoch)
        return found

    def _record(self, address: int, first: AccessId, first_is_store: bool,
                second: AccessId, second_is_store: bool
                ) -> Optional[DynamicRace]:
        key = frozenset((first, second))
        if key in self._seen:
            return None
        self._seen.add(key)
        race = DynamicRace(address=address, first=first, second=second,
                           first_is_store=first_is_store,
                           second_is_store=second_is_store)
        self.races.append(race)
        return race

    # -- results ----------------------------------------------------------------

    @property
    def race_free(self) -> bool:
        """True when no race was witnessed."""
        return not self.races

    def race_pc_pairs(self) -> Set[Tuple[int, int]]:
        """All distinct (pc, pc) site pairs that raced (tagged only)."""
        return {race.pc_pair for race in self.races
                if race.pc_pair is not None}


def check_lockstep_trace(trace: Iterable, cores: int) -> RaceChecker:
    """Replay a :class:`~repro.machine.multicore.MemoryAccess` trace.

    The lockstep cluster stamps each access with the core's barrier
    epoch; since all cores cross each barrier in the same cycle, an
    epoch increase anywhere in the (cycle-ordered) trace marks a
    cluster-wide barrier.  The access pc becomes the checker tag, so
    :meth:`RaceChecker.race_pc_pairs` compares 1:1 against static
    OR011 sites.
    """
    checker = RaceChecker(cores)
    current_epoch = 0
    for access in trace:
        while access.epoch > current_epoch:
            checker.on_barrier()
            current_epoch += 1
        checker.on_access(access.core, access.address, access.width,
                          access.is_store, tag=access.pc)
    return checker
