"""The shared instruction cache of the PULP cluster.

The four cores fetch through one shared I$.  For the small, loop-heavy
kernels of the paper the steady state is a 100 % hit rate; what matters
is the cold-start refill (the kernel binary streams in from L2 once per
offload) and the refill stalls it causes.  The model charges a per-line
refill cost on first touch of each line and tracks hit statistics.
"""

from __future__ import annotations

from typing import Set

from repro.errors import ConfigurationError
from repro.units import kib


class SharedICache:
    """Shared I$ with cold-miss accounting."""

    def __init__(self, size: int = kib(4), line_bytes: int = 16,
                 refill_cycles: float = 10.0):
        if size <= 0 or line_bytes <= 0 or size % line_bytes:
            raise ConfigurationError(
                f"invalid I$ geometry: size={size}, line={line_bytes}")
        self.size = int(size)
        self.line_bytes = int(line_bytes)
        self.refill_cycles = float(refill_cycles)
        self._resident: Set[int] = set()
        self.hits = 0
        self.misses = 0

    @property
    def lines(self) -> int:
        """Total cache lines."""
        return self.size // self.line_bytes

    def fetch(self, address: int) -> float:
        """Fetch one instruction; returns the stall cycles it incurs."""
        line = address // self.line_bytes
        if line in self._resident:
            self.hits += 1
            return 0.0
        if len(self._resident) >= self.lines:
            # FIFO-ish eviction; fine for cold-miss accounting.
            self._resident.pop()
        self._resident.add(line)
        self.misses += 1
        return self.refill_cycles

    def warmup_cycles(self, code_bytes: int) -> float:
        """Total cold-start stall cycles to stream *code_bytes* of kernel
        code through the cache (the analytic model's one-off charge)."""
        if code_bytes < 0:
            raise ConfigurationError(f"negative code size {code_bytes}")
        resident = min(code_bytes, self.size)
        lines = -(-resident // self.line_bytes)
        return lines * self.refill_cycles

    def invalidate(self) -> None:
        """Flush the cache (a new binary was offloaded)."""
        self._resident.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over all fetches so far."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
