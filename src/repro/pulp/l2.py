"""The PULP3 L2 memory: 64 kB of SRAM behind the system bus.

Functional byte-addressable storage with bounds checking.  It holds the
offloaded kernel binary and the marshalled input/output buffers; the
cluster DMA moves data between here and the TCDM.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError
from repro.units import kib


class L2Memory:
    """Byte-addressable SRAM with simple allocation bookkeeping."""

    DEFAULT_SIZE = kib(64)

    def __init__(self, size: int = DEFAULT_SIZE):
        if size <= 0:
            raise ConfigurationError(f"invalid L2 size {size}")
        self.size = int(size)
        self._data = bytearray(self.size)
        self._alloc_cursor = 0

    def write(self, address: int, data: bytes) -> None:
        """Write *data* at *address*."""
        self._check_range(address, len(data))
        self._data[address:address + len(data)] = data

    def read(self, address: int, length: int) -> bytes:
        """Read *length* bytes at *address*."""
        self._check_range(address, length)
        return bytes(self._data[address:address + length])

    def fill(self, address: int, length: int, value: int = 0) -> None:
        """Fill a range with a constant byte."""
        self._check_range(address, length)
        self._data[address:address + length] = bytes([value]) * length

    def allocate(self, length: int, align: int = 4) -> int:
        """Bump-allocate *length* bytes; returns the base address.

        The real chip has no allocator — the linker script lays the
        binary out — but the offload manager needs somewhere to place
        code, inputs and outputs, and running out of the 64 kB is a real
        failure mode the paper designs around ("the limited amount of
        memory available in typical ULP systems").
        """
        if length < 0:
            raise ConfigurationError(f"negative allocation: {length}")
        base = -(-self._alloc_cursor // align) * align
        if base + length > self.size:
            raise SimulationError(
                f"L2 exhausted: need {length} bytes at {base:#x}, size {self.size:#x}")
        self._alloc_cursor = base + length
        return base

    def reset_allocator(self) -> None:
        """Forget all allocations (a new offload session)."""
        self._alloc_cursor = 0

    @property
    def bytes_allocated(self) -> int:
        """High-water mark of the bump allocator."""
        return self._alloc_cursor

    @property
    def bytes_free(self) -> int:
        """Remaining allocatable bytes."""
        return self.size - self._alloc_cursor

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size:
            raise SimulationError(
                f"L2 access out of range: {length} bytes at {address:#x} "
                f"(size {self.size:#x})")
