"""The cluster's hardware synchronizer.

"The cluster also contains a HW synchronizer used to accelerate
synchronization between the cores, making sure that they can be put to
sleep and woken up in just a few cycles."  The model provides a
reusable barrier: arriving cores go to sleep (clock-gated, costing no
active power) and the last arrival wakes everyone within
``wakeup_cycles``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator, Timeout


class HardwareSynchronizer:
    """Few-cycle hardware barrier across the cluster cores."""

    def __init__(self, simulator: Simulator, participants: int,
                 wakeup_cycles: float = 2.0):
        if participants < 1:
            raise SimulationError(f"need >= 1 participant, got {participants}")
        self.simulator = simulator
        self.participants = participants
        self.wakeup_cycles = wakeup_cycles
        self._arrived = 0
        self._generation_event: Optional[Event] = None
        self.barriers_completed = 0
        self.sleep_cycles: List[float] = []

    def barrier(self):
        """Generator: join the current barrier; resumes once all
        participants arrived plus the wakeup latency."""
        if self._generation_event is None:
            self._generation_event = self.simulator.event(name="hw-barrier")
        event = self._generation_event
        self._arrived += 1
        arrival_time = self.simulator.now
        if self._arrived == self.participants:
            self._arrived = 0
            self._generation_event = None
            self.barriers_completed += 1
            event.trigger(self.simulator.now)
        yield event
        self.sleep_cycles.append(self.simulator.now - arrival_time)
        yield Timeout(self.wakeup_cycles)

    @property
    def average_sleep(self) -> float:
        """Mean cycles a core slept per barrier crossing."""
        if not self.sleep_cycles:
            return 0.0
        return sum(self.sleep_cycles) / len(self.sleep_cycles)
