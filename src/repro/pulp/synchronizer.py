"""The cluster's hardware synchronizer.

"The cluster also contains a HW synchronizer used to accelerate
synchronization between the cores, making sure that they can be put to
sleep and woken up in just a few cycles."  The model provides a
reusable barrier: arriving cores go to sleep (clock-gated, costing no
active power) and the last arrival wakes everyone within
``wakeup_cycles``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import Interrupt, SimulationError
from repro.sim.engine import Event, Simulator, Timeout


class HardwareSynchronizer:
    """Few-cycle hardware barrier across the cluster cores.

    ``observers`` are called with the completed-barrier count each time
    a generation completes (before the sleepers wake); the
    happens-before race checker registers itself here to join its
    vector clocks at exactly the synchronization point.
    """

    def __init__(self, simulator: Simulator, participants: int,
                 wakeup_cycles: float = 2.0):
        if participants < 1:
            raise SimulationError(f"need >= 1 participant, got {participants}")
        self.simulator = simulator
        self.participants = participants
        self.wakeup_cycles = wakeup_cycles
        self._arrived = 0
        self._generation_event: Optional[Event] = None
        self.barriers_completed = 0
        self.sleep_cycles: List[float] = []
        self.observers: List[Callable[[int], None]] = []

    def barrier(self):
        """Generator: join the current barrier; resumes once all
        participants arrived plus the wakeup latency.

        An :meth:`~repro.sim.engine.Process.interrupt` delivered while
        waiting withdraws the arrival before re-raising — without the
        withdrawal a killed waiter would stay counted in the current
        generation and a later barrier could complete with fewer live
        participants than arrived.
        """
        if self._generation_event is None:
            self._generation_event = self.simulator.event(name="hw-barrier")
        event = self._generation_event
        self._arrived += 1
        arrival_time = self.simulator.now
        if self._arrived == self.participants:
            self._arrived = 0
            self._generation_event = None
            self.barriers_completed += 1
            for observer in list(self.observers):
                observer(self.barriers_completed)
            event.trigger(self.simulator.now)
        try:
            yield event
        except Interrupt:
            if self._generation_event is event and not event.triggered:
                self._arrived -= 1
            raise
        self.sleep_cycles.append(self.simulator.now - arrival_time)
        yield Timeout(self.wakeup_cycles)

    @property
    def average_sleep(self) -> float:
        """Mean cycles a core slept per barrier crossing."""
        if not self.sleep_cycles:
            return 0.0
        return sum(self.sleep_cycles) / len(self.sleep_cycles)
