"""Frequency-locked loop and clock dividers.

"To enable fine grained frequency tuning, a Frequency-Locked Loop and
two clock dividers (one for the cluster and one for peripherals) are
included in the SoC."  The FLL locks onto a multiple of a slow reference
clock; the dividers derive the cluster and peripheral domains from it.
The model validates requested frequencies against the operating-point
table and accounts the re-lock latency paid on every frequency hop.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, OperatingPointError
from repro.power.operating_point import OperatingPointTable
from repro.units import khz, us


class ClockDivider:
    """Integer divider from the FLL output to one clock domain."""

    def __init__(self, name: str, divisor: int = 1):
        self.name = name
        self.divisor = 0
        self.set_divisor(divisor)

    def set_divisor(self, divisor: int) -> None:
        """Program the divider (positive integers only)."""
        if not isinstance(divisor, int) or divisor < 1:
            raise ConfigurationError(
                f"divider {self.name!r}: invalid divisor {divisor!r}")
        self.divisor = divisor

    def output(self, fll_frequency: float) -> float:
        """Domain clock for a given FLL output frequency."""
        return fll_frequency / self.divisor


class FrequencyLockedLoop:
    """The SoC's FLL plus its two domain dividers."""

    def __init__(self, table: OperatingPointTable,
                 reference: float = khz(32.768),
                 lock_time: float = us(50)):
        if reference <= 0 or lock_time < 0:
            raise ConfigurationError("invalid FLL reference/lock time")
        self.table = table
        self.reference = reference
        self.lock_time = lock_time
        self.cluster_divider = ClockDivider("cluster", 1)
        self.peripheral_divider = ClockDivider("peripheral", 2)
        self._multiplier = 1
        self.hops = 0

    @property
    def frequency(self) -> float:
        """Current FLL output frequency."""
        return self.reference * self._multiplier

    @property
    def cluster_frequency(self) -> float:
        """Cluster domain clock."""
        return self.cluster_divider.output(self.frequency)

    @property
    def peripheral_frequency(self) -> float:
        """Peripheral domain clock."""
        return self.peripheral_divider.output(self.frequency)

    def set_frequency(self, target: float, voltage: float) -> float:
        """Re-lock the FLL as close as possible to *target* (from below),
        verifying the operating point sustains it.  Returns the lock
        latency to account for the hop."""
        if target <= 0:
            raise ConfigurationError(f"non-positive FLL target {target}")
        fmax = self.table.fmax_at(voltage)
        if target > fmax * (1 + 1e-9):
            raise OperatingPointError(
                f"{target:.3e} Hz unsustainable at {voltage} V (fmax {fmax:.3e})")
        self._multiplier = max(1, int(target / self.reference))
        self.hops += 1
        return self.lock_time
