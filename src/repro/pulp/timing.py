"""Fast analytic timing for parallel execution on the cluster.

This is the experiment harness's timing path (DESIGN.md section 5): a
kernel program is split across threads loop-chunk-wise, each chunk is
lowered by the OR10N target, and TCDM bank contention is added
analytically.  The discrete-event :class:`~repro.pulp.cluster.Cluster`
validates the contention model on scaled-down kernels.

The analytic contention term: with ``b`` word-interleaved banks and
``n`` cores issuing memory ops independently, a given access collides
with any one other core's access with probability ``1/(2b)`` (the other
core must be in its memory cycle *and* hit the same bank), so the
expected extra cycles per access are ``m * (n - 1) / (2b)`` where ``m``
is the cluster-wide memory intensity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.isa.program import Loop, Program
from repro.isa.report import LoweredReport
from repro.isa.target import Target
from repro.pulp.core import ComputeOp, MemOp, OpStream
from repro.pulp.tcdm import Tcdm, WORD_BYTES


@dataclass(frozen=True)
class ContentionModel:
    """Analytic TCDM bank-contention model."""

    banks: int = Tcdm.DEFAULT_BANKS

    def stall_factor(self, cores_active: int, memory_fraction: float) -> float:
        """Multiplier on execution cycles due to bank conflicts."""
        if cores_active < 1:
            raise ConfigurationError(f"cores_active must be >= 1, got {cores_active}")
        memory_fraction = min(max(memory_fraction, 0.0), 1.0)
        conflict_probability = (cores_active - 1) / (2.0 * self.banks)
        return 1.0 + memory_fraction ** 2 * conflict_probability


@dataclass
class ParallelTiming:
    """Wall-clock decomposition of a parallel kernel execution."""

    wall_cycles: float = 0.0
    serial_cycles: float = 0.0
    parallel_cycles: float = 0.0
    per_thread_cycles: List[float] = field(default_factory=list)
    memory_accesses: float = 0.0
    parallel_regions: int = 0

    @property
    def memory_intensity(self) -> float:
        """Cluster-wide TCDM accesses per wall cycle (capped at 1)."""
        if self.wall_cycles == 0:
            return 0.0
        return min(1.0, self.memory_accesses / self.wall_cycles)


def chunk_trips(trips: int, threads: int) -> List[int]:
    """OpenMP static schedule: split *trips* into per-thread chunks."""
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads}")
    base, extra = divmod(trips, threads)
    return [base + (1 if t < extra else 0) for t in range(threads)]


def parallel_wall_cycles(program: Program, target: Target, threads: int,
                         contention: Optional[ContentionModel] = None
                         ) -> ParallelTiming:
    """Wall cycles of *program* on *threads* cores (no runtime overheads —
    the OpenMP model adds those on top).

    Top-level parallelizable loops are split static-chunk-wise; everything
    else runs serially on the master core.
    """
    contention = contention if contention is not None else ContentionModel()
    timing = ParallelTiming()
    for node in program.body:
        if isinstance(node, Loop) and node.parallelizable and threads > 1:
            chunks = chunk_trips(node.trips, threads)
            reports = [target.lower_nodes([node.with_trips(c)])
                       for c in chunks if c > 0]
            cycles = [r.cycles for r in reports]
            intensity = _region_intensity(reports)
            factor = contention.stall_factor(len(cycles), intensity)
            region_wall = max(cycles) * factor
            timing.wall_cycles += region_wall
            timing.parallel_cycles += region_wall
            timing.per_thread_cycles = _accumulate(
                timing.per_thread_cycles, cycles, threads)
            timing.memory_accesses += sum(r.memory_accesses for r in reports)
            timing.parallel_regions += 1
        else:
            report = target.lower_nodes([node])
            timing.wall_cycles += report.cycles
            timing.serial_cycles += report.cycles
            timing.memory_accesses += report.memory_accesses
    return timing


def _region_intensity(reports: Sequence[LoweredReport]) -> float:
    total_cycles = sum(r.cycles for r in reports)
    if total_cycles == 0:
        return 0.0
    accesses = sum(r.memory_accesses for r in reports)
    # Intensity per core: accesses happen over the region's wall time.
    wall = max(r.cycles for r in reports)
    if wall == 0:
        return 0.0
    return min(1.0, accesses / (wall * len(reports)))


def _accumulate(existing: List[float], cycles: Sequence[float],
                threads: int) -> List[float]:
    if not existing:
        existing = [0.0] * threads
    for index, value in enumerate(cycles):
        existing[index] += value
    return existing


def kernel_op_streams(program: Program, target: Target, cores: int,
                      cycle_cap: Optional[float] = None) -> List[OpStream]:
    """Per-core DES op streams of *program*'s first parallelizable loop.

    The loop is split static-chunk-wise across *cores* and each chunk is
    lowered by *target*; a *cycle_cap* scales every chunk down uniformly
    (preserving the compute/memory mix) so one DES replay stays cheap.
    Cores with no chunk — or all of them, when the program has no
    parallelizable loop — get a one-cycle filler stream, matching the
    clock-gated-core convention of :meth:`repro.pulp.cluster.Cluster.run`.
    This is the shared workload builder of the ``trace`` CLI and the
    ``sim`` benchmark suite.
    """
    loops = [node for node in program.body
             if isinstance(node, Loop) and node.parallelizable]
    streams: List[OpStream] = []
    if loops:
        loop = loops[0]
        for core, trips in enumerate(chunk_trips(loop.trips, cores)):
            if trips == 0:
                continue
            report = target.lower_nodes([loop.with_trips(trips)])
            if cycle_cap is not None and report.cycles > cycle_cap:
                scale = cycle_cap / report.cycles
                report = LoweredReport(
                    target_name=report.target_name,
                    cycles=report.cycles * scale,
                    instructions=report.instructions * scale,
                    memory_accesses=report.memory_accesses * scale)
            streams.append(op_stream_from_report(report, core_index=core))
    while len(streams) < cores:
        streams.append([ComputeOp(1.0)])
    return streams


def op_stream_from_report(report: LoweredReport, core_index: int = 0,
                          tcdm_size: int = Tcdm.DEFAULT_SIZE,
                          region_bytes: int = 4096,
                          pattern: str = "strided") -> OpStream:
    """Synthesize a DES op stream reproducing a lowered report's shape.

    With ``pattern="strided"`` memory accesses walk a per-core region of
    the TCDM with a word stride — the layout a blocked kernel produces,
    under which the word-interleaved banks desynchronize the cores into
    a nearly conflict-free rotation.  With ``pattern="random"`` addresses
    come from a deterministic per-core LCG, the worst realistic case the
    analytic contention model is fitted to.  Compute cycles fill the
    gaps uniformly.
    """
    if pattern not in ("strided", "random"):
        raise ConfigurationError(f"unknown access pattern {pattern!r}")
    accesses = int(round(report.memory_accesses))
    compute_cycles = max(0.0, report.cycles - accesses)
    stream: OpStream = []
    base = (core_index * region_bytes) % max(WORD_BYTES, tcdm_size - region_bytes)
    base -= base % WORD_BYTES
    if accesses == 0:
        if compute_cycles > 0:
            stream.append(ComputeOp(compute_cycles))
        return stream
    gap = compute_cycles / accesses
    carry = 0.0
    lcg_state = 0x9E3779B9 * (core_index + 1) & 0xFFFFFFFF
    for index in range(accesses):
        carry += gap
        whole = math.floor(carry)
        if whole > 0:
            stream.append(ComputeOp(float(whole)))
            carry -= whole
        if pattern == "strided":
            address = base + (index * WORD_BYTES) % region_bytes
        else:
            lcg_state = (lcg_state * 1664525 + 1013904223) & 0xFFFFFFFF
            # Use the high LCG bits: the low bits of a power-of-two LCG
            # are periodic and would alias with the bank interleaving.
            word = (lcg_state >> 16) % (region_bytes // WORD_BYTES)
            address = base + word * WORD_BYTES
        stream.append(MemOp(address, is_store=(index % 4 == 3)))
    if carry > 1e-9:
        stream.append(ComputeOp(carry))
    return stream
