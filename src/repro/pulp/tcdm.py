"""The tightly-coupled data memory: multi-banked shared L1 scratchpad.

The PULP cores "share a L1 multi-banked tightly coupled data memory
(TCDM) acting as a shared data scratchpad" with "a word-level
interleaving scheme to reduce access contention".  In the discrete-event
model each bank is a single-server resource with one-cycle service; the
word-interleaved address mapping spreads consecutive words across banks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.tracing import TraceRecorder
from repro.units import kib

WORD_BYTES = 4


class Tcdm:
    """Multi-banked L1 data scratchpad."""

    DEFAULT_SIZE = kib(48)
    DEFAULT_BANKS = 8

    def __init__(self, simulator: Simulator, size: int = DEFAULT_SIZE,
                 banks: int = DEFAULT_BANKS,
                 recorder: Optional[TraceRecorder] = None):
        if banks < 1 or size <= 0 or size % (banks * WORD_BYTES) != 0:
            raise ConfigurationError(
                f"invalid TCDM geometry: size={size}, banks={banks}")
        self.size = int(size)
        self.banks = int(banks)
        self.recorder = recorder
        self._data = bytearray(self.size)
        self._bank_resources: List[Resource] = [
            Resource(simulator, capacity=1, name=f"tcdm-bank{i}")
            for i in range(banks)
        ]
        self.accesses = 0

    # -- address mapping -------------------------------------------------------

    def bank_of(self, address: int) -> int:
        """Bank index of a word address (word-level interleaving)."""
        self._check_range(address, 1)
        return (address // WORD_BYTES) % self.banks

    def bank_resource(self, address: int) -> Resource:
        """The DES resource guarding the bank serving *address*."""
        return self._bank_resources[self.bank_of(address)]

    def bank_resources(self) -> List[Resource]:
        """All bank resources (for statistics)."""
        return list(self._bank_resources)

    def note_access(self, time: float, address: int) -> None:
        """Report a granted bank access to the attached recorder.

        Called by initiators (cores, DMA) at grant time; one single-cycle
        ``bank`` event on the serving bank's lane.  No-op without a
        recorder.
        """
        if self.recorder is not None:
            self.recorder.record(time, f"bank{self.bank_of(address)}",
                                 "bank", f"@{address:#x}", duration=1.0)

    # -- functional storage ------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """Functional write."""
        self._check_range(address, len(data))
        self._data[address:address + len(data)] = data
        self.accesses += -(-len(data) // WORD_BYTES)

    def read(self, address: int, length: int) -> bytes:
        """Functional read."""
        self._check_range(address, length)
        self.accesses += -(-length // WORD_BYTES)
        return bytes(self._data[address:address + length])

    # -- statistics ----------------------------------------------------------------

    def conflicts_by_bank(self) -> List[int]:
        """Queued (stalled) accesses per bank, in bank order."""
        return [r.waits for r in self._bank_resources]

    def grants_by_bank(self) -> List[int]:
        """Granted accesses per bank, in bank order."""
        return [r.grants for r in self._bank_resources]

    @property
    def total_conflicts(self) -> int:
        """Accesses that had to queue behind a busy bank."""
        return sum(r.waits for r in self._bank_resources)

    @property
    def total_grants(self) -> int:
        """Accesses granted."""
        return sum(r.grants for r in self._bank_resources)

    def conflict_rate(self) -> float:
        """Fraction of DES accesses that stalled."""
        grants = self.total_grants
        if grants == 0:
            return 0.0
        return self.total_conflicts / grants

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size:
            raise SimulationError(
                f"TCDM access out of range: {length} bytes at {address:#x} "
                f"(size {self.size:#x})")
