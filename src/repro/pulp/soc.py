"""The PULP3 SoC: cluster + L2 + QSPI slave + GPIOs + FLL.

The SoC is the accelerator-side endpoint of the offload: its QSPI slave
parses the wire protocol frames the host sends, executing them against
the L2 (binary load, data marshalling) and the control plane (start /
status), while the *fetch enable* and *end of computation* GPIO lines
carry the synchronization events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ProtocolError, SimulationError
from repro.link.gpio import EventLine
from repro.link.protocol import Command, Frame
from repro.pulp.binary import KernelBinary
from repro.pulp.cluster import Cluster
from repro.pulp.fll import FrequencyLockedLoop
from repro.pulp.l2 import L2Memory
from repro.power.pulp_model import PulpPowerModel


class SocState(enum.Enum):
    """Accelerator control-plane states."""

    IDLE = "idle"
    LOADED = "loaded"
    RUNNING = "running"
    DONE = "done"


@dataclass
class LoadedBinary:
    """Bookkeeping for the binary currently resident in L2."""

    binary: KernelBinary
    base_address: int


class PulpSoc:
    """The accelerator system-on-chip."""

    def __init__(self, power_model: Optional[PulpPowerModel] = None):
        self.l2 = L2Memory()
        self.cluster = Cluster(l2=self.l2)
        self.power_model = power_model if power_model is not None else PulpPowerModel()
        self.fll = FrequencyLockedLoop(self.power_model.table)
        self.fetch_enable = EventLine("fetch-enable")
        self.end_of_computation = EventLine("end-of-computation")
        self.state = SocState.IDLE
        self.loaded: Optional[LoadedBinary] = None
        self._data_regions: Dict[int, int] = {}
        self.frames_handled = 0

    # -- QSPI slave: the wire-protocol endpoint --------------------------------

    def handle_frame(self, frame: Frame) -> bytes:
        """Execute one protocol frame; returns response payload bytes
        (non-empty only for READ_DATA / STATUS)."""
        self.frames_handled += 1
        if frame.command is Command.LOAD_BINARY:
            return self._handle_load(frame)
        if frame.command is Command.WRITE_DATA:
            return self._handle_write(frame)
        if frame.command is Command.READ_DATA:
            return self._handle_read(frame)
        if frame.command is Command.START:
            return self._handle_start(frame)
        if frame.command is Command.STATUS:
            return bytes([list(SocState).index(self.state)])
        raise ProtocolError(f"unhandled command {frame.command}")

    def _handle_load(self, frame: Frame) -> bytes:
        if self.state is SocState.RUNNING:
            raise ProtocolError("binary load while running")
        self.l2.write(frame.address, frame.payload)
        self.state = SocState.LOADED
        return b""

    def _handle_write(self, frame: Frame) -> bytes:
        if self.state is SocState.RUNNING:
            raise ProtocolError("data write while running")
        self.l2.write(frame.address, frame.payload)
        self._data_regions[frame.address] = len(frame.payload)
        return b""

    def _handle_read(self, frame: Frame) -> bytes:
        length = int.from_bytes(frame.payload[:4], "little") if frame.payload \
            else self._data_regions.get(frame.address, 0)
        if length == 0:
            raise ProtocolError(
                f"READ_DATA with unknown length at {frame.address:#x}")
        return self.l2.read(frame.address, length)

    def _handle_start(self, frame: Frame) -> bytes:
        if self.state not in (SocState.LOADED, SocState.DONE):
            raise ProtocolError(f"START in state {self.state}")
        if self.loaded is None:
            raise ProtocolError("START before binary registration")
        self.state = SocState.RUNNING
        return b""

    # -- host-visible control plane -----------------------------------------------

    def register_binary(self, binary: KernelBinary, base_address: int) -> None:
        """Record which binary lives at *base_address* (done by the
        offload manager alongside the LOAD_BINARY frames)."""
        self.loaded = LoadedBinary(binary, base_address)

    def trigger_fetch_enable(self, time: float) -> float:
        """Host pulses the fetch-enable GPIO; the cluster starts."""
        if self.state is not SocState.RUNNING:
            raise SimulationError(
                f"fetch enable in state {self.state} (send START first)")
        return self.fetch_enable.pulse(time)

    def computation_done(self, time: float) -> float:
        """Cluster signals completion; EOC wakes the host."""
        if self.state is not SocState.RUNNING:
            raise SimulationError(f"EOC in state {self.state}")
        self.state = SocState.DONE
        return self.end_of_computation.pulse(time)

    def reset(self) -> None:
        """Return to the idle state (binary stays resident)."""
        self.state = SocState.IDLE if self.loaded is None else SocState.LOADED
        self._data_regions.clear()

    def power_cycle(self) -> None:
        """Full reboot: the control plane forgets the resident binary.

        The recovery ladder's ``reboot`` rung — after this the host must
        reload the kernel image before the accelerator accepts START.
        The event lines are replaced too (a rebooted device starts with
        its GPIO levels low).
        """
        self.loaded = None
        self.state = SocState.IDLE
        self._data_regions.clear()
        self.fetch_enable = EventLine("fetch-enable")
        self.end_of_computation = EventLine("end-of-computation")
