"""Cycle-level OR10N core execution engine (discrete-event).

A core executes an :data:`OpStream` — compute bursts interleaved with
TCDM accesses.  Compute bursts advance local time; memory ops arbitrate
for their TCDM bank through the logarithmic interconnect (one cycle when
granted, queuing when another initiator holds the bank).  The stream is
produced from a kernel program by :func:`repro.pulp.timing.op_stream_of`
or hand-built in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.errors import SimulationError
from repro.pulp.tcdm import Tcdm
from repro.sim.engine import Simulator, Timeout
from repro.sim.tracing import TraceRecorder


@dataclass(frozen=True)
class ComputeOp:
    """A burst of *cycles* of pure computation."""

    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise SimulationError(f"negative compute burst: {self.cycles}")


@dataclass(frozen=True)
class MemOp:
    """One TCDM access (a word unless *width* narrows it).

    ``tag`` carries the originating site identity — the machine-level
    pc when the stream was compiled from a kernel program — so dynamic
    race witnesses can be matched against static analysis sites.
    """

    address: int
    is_store: bool = False
    width: int = 4
    tag: Optional[int] = None


@dataclass(frozen=True)
class BarrierOp:
    """Join the cluster barrier before continuing the stream."""


OpStream = List[Union[ComputeOp, MemOp, BarrierOp]]


@dataclass
class CoreStats:
    """Per-core execution statistics (the PMU counters of the paper's
    FPGA platform: active and idle cycles per component)."""

    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    stall_cycles: float = 0.0
    barrier_cycles: float = 0.0
    accesses: int = 0

    @property
    def active_cycles(self) -> float:
        """Cycles doing useful work (compute + granted memory)."""
        return self.compute_cycles + self.memory_cycles

    @property
    def total_cycles(self) -> float:
        """All accounted cycles."""
        return (self.compute_cycles + self.memory_cycles
                + self.stall_cycles + self.barrier_cycles)


class Or10nCore:
    """One OR10N core attached to the shared TCDM.

    When a *recorder* is attached, the core reports compute bursts,
    stalls and granted accesses as timed events on its ``core<N>``
    lane (the PMU-trace feed of the telemetry layer).
    """

    def __init__(self, simulator: Simulator, tcdm: Tcdm, core_id: int,
                 recorder: Optional[TraceRecorder] = None,
                 synchronizer=None, race_checker=None):
        self.simulator = simulator
        self.tcdm = tcdm
        self.core_id = core_id
        self.recorder = recorder
        #: Serves in-stream :class:`BarrierOp`s (optional; the cluster
        #: wires its :class:`~repro.pulp.synchronizer.HardwareSynchronizer`).
        self.synchronizer = synchronizer
        #: When attached, every granted access is reported to the
        #: happens-before checker (:mod:`repro.pulp.hbcheck`).
        self.race_checker = race_checker
        self.stats = CoreStats()

    @property
    def actor(self) -> str:
        """Trace lane name of this core."""
        return f"core{self.core_id}"

    def run(self, stream: Iterable[Union[ComputeOp, MemOp]]):
        """Generator process executing *stream* (register with the
        simulator via ``simulator.add_process(core.run(stream))``)."""
        for op in stream:
            if isinstance(op, ComputeOp):
                if self.recorder is not None:
                    self.recorder.record(self.simulator.now, self.actor,
                                         "compute", f"{op.cycles:.0f}cy",
                                         duration=op.cycles)
                if op.cycles > 0:
                    yield Timeout(op.cycles)
                self.stats.compute_cycles += op.cycles
            elif isinstance(op, MemOp):
                yield from self._access(op)
            elif isinstance(op, BarrierOp):
                if self.synchronizer is None:
                    raise SimulationError(
                        f"core {self.core_id}: BarrierOp in stream but no "
                        f"synchronizer attached")
                if self.recorder is not None:
                    self.recorder.record(self.simulator.now, self.actor,
                                         "barrier")
                before = self.simulator.now
                yield from self.synchronizer.barrier()
                self.stats.barrier_cycles += self.simulator.now - before
            else:
                raise SimulationError(f"core {self.core_id}: bad op {op!r}")

    def _access(self, op: MemOp):
        resource = self.tcdm.bank_resource(op.address)
        requested = self.simulator.now
        yield resource.request()
        waited = self.simulator.now - requested
        if self.recorder is not None:
            if waited > 0:
                self.recorder.record(requested, self.actor, "stall",
                                     f"{waited:.0f}cy", duration=waited)
            self.recorder.record(self.simulator.now, self.actor, "memory",
                                 f"@{op.address:#x}", duration=1.0)
        self.tcdm.note_access(self.simulator.now, op.address)
        if self.race_checker is not None:
            self.race_checker.on_access(self.core_id, op.address, op.width,
                                        op.is_store, tag=op.tag)
        self.stats.stall_cycles += waited
        yield Timeout(1.0)  # single-cycle TCDM service
        resource.release()
        self.stats.memory_cycles += 1.0
        self.stats.accesses += 1
