"""The quad-core PULP cluster (discrete-event assembly).

Wires cores, TCDM, DMA and the hardware synchronizer into one runnable
unit.  A :meth:`Cluster.run` executes one op stream per core (plus
optional concurrent DMA jobs), ends with a hardware barrier, and returns
wall cycles together with the PMU-style statistics the power model's
activity factors are derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.pulp.core import CoreStats, Or10nCore, OpStream
from repro.pulp.dma import DmaController, DmaStats
from repro.pulp.icache import SharedICache
from repro.pulp.l2 import L2Memory
from repro.pulp.synchronizer import HardwareSynchronizer
from repro.pulp.tcdm import Tcdm
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceRecorder


#: A DMA job: (l2_address, tcdm_address, length, to_tcdm).
DmaJob = Tuple[int, int, int, bool]


@dataclass
class ClusterRun:
    """Result of one cluster execution."""

    wall_cycles: float
    core_stats: List[CoreStats]
    dma_stats: DmaStats
    conflict_rate: float
    barrier_count: int
    #: Queued-access count per TCDM bank (empty for legacy callers).
    conflicts_by_bank: List[int] = field(default_factory=list)
    #: Granted-access count per TCDM bank.
    grants_by_bank: List[int] = field(default_factory=list)

    @property
    def busiest_core_cycles(self) -> float:
        """Cycles of the most loaded core (the critical path)."""
        return max((s.total_cycles for s in self.core_stats), default=0.0)

    def activity_ratio(self, core_index: int) -> float:
        """chi_run of one core: active cycles over wall cycles."""
        if self.wall_cycles == 0:
            return 0.0
        return self.core_stats[core_index].active_cycles / self.wall_cycles

    def memory_intensity(self) -> float:
        """TCDM accesses per wall cycle across the cluster (chi for the
        TCDM component, capped at 1)."""
        if self.wall_cycles == 0:
            return 0.0
        accesses = sum(s.accesses for s in self.core_stats)
        return min(1.0, accesses / self.wall_cycles)


class Cluster:
    """The PULP quad-core cluster."""

    CORES = 4

    def __init__(self, tcdm_size: int = Tcdm.DEFAULT_SIZE,
                 banks: int = Tcdm.DEFAULT_BANKS,
                 l2: Optional[L2Memory] = None,
                 icache: Optional[SharedICache] = None):
        self.tcdm_size = tcdm_size
        self.banks = banks
        self.l2 = l2 if l2 is not None else L2Memory()
        self.icache = icache if icache is not None else SharedICache()
        self.last_run: Optional[ClusterRun] = None

    def run(self, streams: Sequence[OpStream],
            dma_jobs: Sequence[DmaJob] = (),
            recorder: Optional[TraceRecorder] = None,
            race_checker=None) -> ClusterRun:
        """Execute one op stream per core plus optional DMA traffic.

        Fewer than four streams leaves the remaining cores clock-gated
        (they still join the final barrier through the synchronizer's
        participant count, which is set to the active cores only, as the
        runtime powers unused cores down at fork time).

        An optional *recorder* instruments the run: cores report compute
        bursts / stalls / granted accesses, TCDM banks report grants,
        DMA channels report transfers and barrier crossings are marked —
        the feed for :func:`repro.sim.tracing.render_timeline` and the
        telemetry bridge.

        An optional *race_checker* (:mod:`repro.pulp.hbcheck`) receives
        every granted core access and every barrier completion — the
        dynamic cross-validation hook of the static OR011 rule.
        """
        if not 1 <= len(streams) <= self.CORES:
            raise ConfigurationError(
                f"need 1..{self.CORES} streams, got {len(streams)}")
        simulator = Simulator()
        tcdm = Tcdm(simulator, self.tcdm_size, self.banks,
                    recorder=recorder)
        synchronizer = HardwareSynchronizer(simulator, participants=len(streams))
        if race_checker is not None:
            synchronizer.observers.append(race_checker.on_barrier)
        dma = DmaController(simulator, self.l2, tcdm, recorder=recorder)
        cores = [Or10nCore(simulator, tcdm, i, recorder=recorder,
                           synchronizer=synchronizer,
                           race_checker=race_checker)
                 for i in range(len(streams))]

        def core_process(core: Or10nCore, stream: OpStream):
            yield from core.run(stream)
            if recorder is not None:
                recorder.record(simulator.now, core.actor, "barrier")
            before = simulator.now
            yield from synchronizer.barrier()
            core.stats.barrier_cycles += simulator.now - before

        for core, stream in zip(cores, streams):
            simulator.add_process(core_process(core, stream),
                                  name=f"core{core.core_id}")
        for job in dma_jobs:
            l2_address, tcdm_address, length, to_tcdm = job
            simulator.add_process(
                dma.transfer(l2_address, tcdm_address, length, to_tcdm),
                name="dma")

        wall = simulator.run_all()
        run = ClusterRun(
            wall_cycles=wall,
            core_stats=[core.stats for core in cores],
            dma_stats=dma.stats,
            conflict_rate=tcdm.conflict_rate(),
            barrier_count=synchronizer.barriers_completed,
            conflicts_by_bank=tcdm.conflicts_by_bank(),
            grants_by_bank=tcdm.grants_by_bank(),
        )
        self.last_run = run
        return run
