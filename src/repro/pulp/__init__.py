"""The PULP3 accelerator model.

Models the SoC of the paper's Section III-B: a quad-core cluster of
OR10N cores with a shared instruction cache, a multi-banked word-interleaved
TCDM behind a single-cycle logarithmic interconnect, a lightweight
multi-channel DMA with a direct TCDM port, a hardware synchronizer for
few-cycle sleep/wake barriers, an FLL with cluster/peripheral clock
dividers, 64 kB of L2, and a QSPI slave + GPIOs towards the host.

Two timing paths exist (DESIGN.md section 5): the cycle-level
discrete-event :class:`~repro.pulp.cluster.Cluster`, and the fast
analytic :mod:`~repro.pulp.timing` model the experiment harness uses.
Tests cross-validate them.
"""

from repro.pulp.binary import KernelBinary
from repro.pulp.cluster import Cluster, ClusterRun
from repro.pulp.core import BarrierOp, CoreStats, MemOp, ComputeOp, OpStream
from repro.pulp.hbcheck import DynamicRace, RaceChecker, check_lockstep_trace
from repro.pulp.dma import DmaController
from repro.pulp.fll import FrequencyLockedLoop, ClockDivider
from repro.pulp.icache import SharedICache
from repro.pulp.l2 import L2Memory
from repro.pulp.soc import PulpSoc
from repro.pulp.synchronizer import HardwareSynchronizer
from repro.pulp.tcdm import Tcdm
from repro.pulp.timing import ContentionModel, parallel_wall_cycles

__all__ = [
    "KernelBinary",
    "Cluster",
    "ClusterRun",
    "BarrierOp",
    "CoreStats",
    "MemOp",
    "ComputeOp",
    "OpStream",
    "DynamicRace",
    "RaceChecker",
    "check_lockstep_trace",
    "DmaController",
    "FrequencyLockedLoop",
    "ClockDivider",
    "SharedICache",
    "L2Memory",
    "PulpSoc",
    "HardwareSynchronizer",
    "Tcdm",
    "ContentionModel",
    "parallel_wall_cycles",
]
