"""Cycle-level kernel execution: OpenMP chunks on the DES cluster.

The second timing path of DESIGN.md section 5, end to end: take a
kernel's loop-nest program, split its parallel loops the way the OpenMP
static schedule would, synthesize per-core op streams from the lowered
chunk reports, and execute them on the discrete-event cluster with real
TCDM bank arbitration and hardware-synchronizer barriers.

This path is slow (every memory access is an event), so it is exercised
on scaled-down kernel configurations; its purpose is validating the
analytic model, and producing PMU-grade activity measurements through
:mod:`repro.power.pmu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError
from repro.isa.program import Loop, Program
from repro.isa.target import Target
from repro.pulp.cluster import Cluster, ClusterRun
from repro.pulp.core import ComputeOp, OpStream
from repro.pulp.timing import chunk_trips, op_stream_from_report
from repro.runtime.omp import DeviceOpenMp
from repro.runtime.overheads import OmpOverheads


@dataclass
class DesExecution:
    """Result of a cycle-level kernel execution."""

    wall_cycles: float
    runs: List[ClusterRun]
    analytic_cycles: float

    @property
    def deviation(self) -> float:
        """Relative DES-vs-analytic disagreement."""
        if self.analytic_cycles == 0:
            return 0.0
        return abs(self.wall_cycles - self.analytic_cycles) \
            / self.analytic_cycles


class CycleLevelExecutor:
    """Executes kernel programs region-by-region on the DES cluster."""

    def __init__(self, target: Target, threads: int = 4,
                 overheads: Optional[OmpOverheads] = None,
                 access_pattern: str = "random"):
        if not 1 <= threads <= Cluster.CORES:
            raise SimulationError(f"threads must be 1..4, got {threads}")
        self.target = target
        self.threads = threads
        self.overheads = overheads if overheads is not None else OmpOverheads()
        self.access_pattern = access_pattern

    def execute(self, program: Program) -> DesExecution:
        """Run every top-level region of *program* on the cluster."""
        cluster = Cluster()
        total = 0.0
        runs: List[ClusterRun] = []
        for node in program.body:
            if isinstance(node, Loop) and node.parallelizable \
                    and self.threads > 1:
                run = self._parallel_region(cluster, node)
                total += run.wall_cycles \
                    + self.overheads.region_fixed_cost(self.threads,
                                                       node.reduction)
            else:
                run = self._serial_region(cluster, node)
                total += run.wall_cycles
            runs.append(run)
        analytic = DeviceOpenMp(self.target, self.threads,
                                self.overheads).execute(program).wall_cycles
        return DesExecution(wall_cycles=total, runs=runs,
                            analytic_cycles=analytic)

    def _parallel_region(self, cluster: Cluster, loop: Loop) -> ClusterRun:
        chunks = chunk_trips(loop.trips, self.threads)
        streams: List[OpStream] = []
        for core, chunk in enumerate(chunks):
            if chunk == 0:
                streams.append([ComputeOp(0.0)])
                continue
            report = self.target.lower_nodes([loop.with_trips(chunk)])
            streams.append(op_stream_from_report(
                report, core_index=core, pattern=self.access_pattern))
        return cluster.run(streams)

    def _serial_region(self, cluster: Cluster, node) -> ClusterRun:
        report = self.target.lower_nodes([node])
        stream = op_stream_from_report(report, core_index=0,
                                       pattern=self.access_pattern)
        if not stream:
            stream = [ComputeOp(0.0)]
        return cluster.run([stream])
