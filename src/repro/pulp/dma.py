"""The lightweight multi-channel cluster DMA.

"A lightweight multi-channel DMA enables fast communication with the L2
memory and external peripherals.  The DMA features a direct connection
to the TCDM to reduce power consumption by eliminating the need for an
internal buffer."  The model moves one word per cycle per channel
between L2 and TCDM, arbitrating for TCDM banks like any other
initiator (its direct port still contends at the banks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, SimulationError
from repro.pulp.l2 import L2Memory
from repro.pulp.tcdm import WORD_BYTES, Tcdm
from repro.sim.engine import Simulator, Timeout
from repro.sim.tracing import TraceRecorder


@dataclass
class DmaStats:
    """Per-controller transfer statistics."""

    transfers: int = 0
    bytes_moved: int = 0
    busy_cycles: float = 0.0
    stall_cycles: float = 0.0


class DmaController:
    """Multi-channel L2 <-> TCDM DMA."""

    def __init__(self, simulator: Simulator, l2: L2Memory, tcdm: Tcdm,
                 channels: int = 4, setup_cycles: float = 8.0,
                 recorder: Optional[TraceRecorder] = None):
        if channels < 1:
            raise ConfigurationError(f"need >= 1 channel, got {channels}")
        self.simulator = simulator
        self.l2 = l2
        self.tcdm = tcdm
        self.channels = channels
        self.setup_cycles = setup_cycles
        self.recorder = recorder
        self._free_channels = list(range(channels))
        self.stats = DmaStats()

    @property
    def _busy_channels(self) -> int:
        return self.channels - len(self._free_channels)

    def transfer(self, l2_address: int, tcdm_address: int, length: int,
                 to_tcdm: bool = True):
        """Generator process moving *length* bytes (word granularity).

        Functionally copies the data and costs ``setup + words`` cycles
        plus any TCDM bank stalls.
        """
        if length < 0:
            raise SimulationError(f"negative DMA length {length}")
        if not self._free_channels:
            raise SimulationError("all DMA channels busy")
        channel = self._free_channels.pop(0)
        start = self.simulator.now
        try:
            yield Timeout(self.setup_cycles)
            words = -(-length // WORD_BYTES)
            for index in range(words):
                offset = index * WORD_BYTES
                chunk = min(WORD_BYTES, length - offset)
                resource = self.tcdm.bank_resource(tcdm_address + offset)
                requested = self.simulator.now
                yield resource.request()
                self.stats.stall_cycles += self.simulator.now - requested
                self.tcdm.note_access(self.simulator.now,
                                      tcdm_address + offset)
                yield Timeout(1.0)
                resource.release()
                if to_tcdm:
                    data = self.l2.read(l2_address + offset, chunk)
                    self.tcdm.write(tcdm_address + offset, data)
                else:
                    data = self.tcdm.read(tcdm_address + offset, chunk)
                    self.l2.write(l2_address + offset, data)
            self.stats.transfers += 1
            self.stats.bytes_moved += length
        finally:
            self._free_channels.append(channel)
            self._free_channels.sort()
            elapsed = self.simulator.now - start
            self.stats.busy_cycles += elapsed
            if self.recorder is not None:
                direction = "->tcdm" if to_tcdm else "->l2"
                self.recorder.record(
                    start, f"dma.ch{channel}", "dma",
                    f"{length}B{direction}", duration=elapsed)

    def ideal_cycles(self, length: int) -> float:
        """Contention-free transfer cycles for *length* bytes."""
        return self.setup_cycles + -(-length // WORD_BYTES)
