"""Sensor data paths: through the host, or directly to the accelerator.

Figure 1 of the paper routes sensor data through the host MCU, which
"marshals data to/from the accelerator through the low-power coupling
link by means of a DMA controller".  Section V proposes the variation
this module also models: "bring data from the sensor directly to the
internal memory of the accelerator.  This requires a dedicated (and
more expensive) interface between the sensor and the accelerator, but
it also reduces the pressure on the coupling link".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, OffloadError
from repro.core.system import HeterogeneousSystem
from repro.kernels.base import Kernel
from repro.power.activity import ActivityProfile
from repro.units import mhz, uw_per_mhz


class SensorPath(enum.Enum):
    """How sensor frames reach the accelerator's memory."""

    THROUGH_HOST = "through-host"   #: sensor -> MCU -> SPI -> PULP (Fig. 1)
    DIRECT = "direct"               #: sensor -> dedicated IF -> PULP (Sec. V)


@dataclass(frozen=True)
class SensorInterface:
    """A sensor front-end (e.g. a low-power camera interface).

    ``bandwidth`` is the sustained payload rate; ``active_power`` the
    power while streaming; ``extra_idle_power`` the standing cost of the
    *dedicated* accelerator-side interface the paper calls "more
    expensive" (zero for the through-host path, which reuses existing
    peripherals).
    """

    bandwidth: float = 2e6            # bytes/s
    active_power: float = 350e-6      # W while streaming
    extra_idle_power: float = 0.0     # W, standing cost of a dedicated port

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.active_power < 0 \
                or self.extra_idle_power < 0:
            raise ConfigurationError(f"invalid sensor interface: {self}")

    def acquisition_time(self, frame_bytes: int) -> float:
        """Seconds to stream one frame out of the sensor."""
        if frame_bytes < 0:
            raise ConfigurationError(f"negative frame size {frame_bytes}")
        return frame_bytes / self.bandwidth


#: A dedicated accelerator-side sensor port (the Section V variation).
DEDICATED_SENSOR_PORT = SensorInterface(
    bandwidth=8e6, active_power=500e-6,
    extra_idle_power=uw_per_mhz(4) * mhz(10))


@dataclass
class SensorPipelineReport:
    """Per-frame cost of one sensing-and-processing configuration."""

    path: SensorPath
    frame_time: float
    frame_energy: float
    link_bytes_per_frame: int
    compute_time: float

    @property
    def frame_rate(self) -> float:
        """Achievable frames per second."""
        if self.frame_time == 0:
            return 0.0
        return 1.0 / self.frame_time


class SensorPipeline:
    """Prices the steady-state per-frame cost of both sensor paths."""

    def __init__(self, system: Optional[HeterogeneousSystem] = None,
                 sensor: Optional[SensorInterface] = None,
                 direct_port: SensorInterface = DEDICATED_SENSOR_PORT):
        self.system = system if system is not None else HeterogeneousSystem()
        self.sensor = sensor if sensor is not None else SensorInterface()
        self.direct_port = direct_port

    def evaluate(self, kernel: Kernel, path: SensorPath,
                 host_frequency: float = mhz(8)) -> SensorPipelineReport:
        """Steady-state per-frame cost of *kernel* on *path*.

        Both paths double-buffer: acquisition and transfers overlap the
        previous frame's compute.  Binary offload is amortized away
        (steady state).
        """
        program = kernel.build_program()
        execution = self.system.omp.execute(program)
        activity = ActivityProfile.compute(
            cores_active=self.system.omp.threads,
            memory_intensity=execution.memory_intensity)
        point = self.system.envelope.solve(host_frequency, activity)
        if not point.accelerator_usable:
            raise OffloadError("no accelerator budget at this host clock")
        compute_time = execution.wall_cycles / point.pulp_frequency
        pulp_active = self.system.soc.power_model.total_power(
            point.pulp_frequency, point.pulp_voltage, activity)

        sensor_iface = self.sensor if path is SensorPath.THROUGH_HOST \
            else self.direct_port
        acquisition = sensor_iface.acquisition_time(program.input_bytes)

        if path is SensorPath.THROUGH_HOST:
            # Frame crosses the SPI link twice-ish: input in, results out.
            clock = self.system.host.spi_clock(host_frequency)
            in_transfer = self.system.link.transfer(program.input_bytes, clock)
            out_transfer = self.system.link.transfer(program.output_bytes, clock)
            link_time = in_transfer.time + out_transfer.time
            link_bytes = program.input_bytes + program.output_bytes
            link_energy = in_transfer.energy + out_transfer.energy
        else:
            # Only the (small) results cross the link; input streams into
            # the accelerator directly.
            clock = self.system.host.spi_clock(host_frequency)
            out_transfer = self.system.link.transfer(program.output_bytes, clock)
            link_time = out_transfer.time
            link_bytes = program.output_bytes
            link_energy = out_transfer.energy

        # Steady-state pipeline period: the slowest stage wins.
        frame_time = max(compute_time, acquisition + link_time)
        energy = (compute_time * pulp_active
                  + acquisition * sensor_iface.active_power
                  + link_energy
                  + frame_time * sensor_iface.extra_idle_power
                  + frame_time * self.system.host.active_power(host_frequency)
                  * 0.2   # host supervises transfers ~20% of the period
                  + frame_time * self.system.host.sleep_power)
        return SensorPipelineReport(
            path=path,
            frame_time=frame_time,
            frame_energy=energy,
            link_bytes_per_frame=link_bytes,
            compute_time=compute_time,
        )

    def compare(self, kernel: Kernel,
                host_frequency: float = mhz(8)):
        """Both paths side by side."""
        return {path: self.evaluate(kernel, path, host_frequency)
                for path in SensorPath}
