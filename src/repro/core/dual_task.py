"""Concurrent host task alongside the accelerator (paper Section V).

"While in this work we mainly concentrate on a single task that is
performed either on the host or on the accelerator, we modeled our
power budget to allow for an additional, separate task to be performed
on the host at the same time.  This would allow for even more complex
functionality to be performed in the sub-10mW space, taking advantage
of the relative strengths of the host and the accelerator."

The model: the host executes its own control-oriented workload (a duty
cycle at its clock) while the accelerator crunches the offloaded
kernel; the envelope solver already keeps the host's *active* power
inside the budget, so the question this module answers is how much
host-side work fits at each operating point and what it costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import BudgetError, ConfigurationError
from repro.core.system import HeterogeneousSystem
from repro.kernels.base import Kernel
from repro.power.activity import ActivityProfile
from repro.units import mhz


@dataclass(frozen=True)
class HostTask:
    """A background task on the host: so many cycles per period."""

    name: str
    cycles_per_period: float
    period: float

    def __post_init__(self) -> None:
        if self.cycles_per_period <= 0 or self.period <= 0:
            raise ConfigurationError(f"invalid host task: {self}")

    def utilization(self, host_frequency: float) -> float:
        """Fraction of the host's cycles the task needs at *frequency*."""
        available = host_frequency * self.period
        return self.cycles_per_period / available


@dataclass
class DualTaskPoint:
    """One feasible operating point for kernel + host task."""

    host_frequency: float
    host_utilization: float
    accelerator_speedup: float
    total_power: float
    feasible: bool


class DualTaskModel:
    """Finds operating points where both workloads fit the envelope."""

    def __init__(self, system: Optional[HeterogeneousSystem] = None):
        self.system = system if system is not None else HeterogeneousSystem()

    def evaluate(self, kernel: Kernel, task: HostTask,
                 host_frequencies: Sequence[float] = (
                     mhz(2), mhz(4), mhz(8), mhz(16), mhz(26)),
                 ) -> List[DualTaskPoint]:
        """Sweep host clocks; a point is feasible when the host task's
        utilization fits (< 100 %) and the accelerator still gets power."""
        program = kernel.build_program()
        execution = self.system.omp.execute(program)
        activity = ActivityProfile.compute(
            cores_active=self.system.omp.threads,
            memory_intensity=execution.memory_intensity)
        host_cycles = self.system.host.device.lower(program).cycles
        baseline_time = host_cycles / self.system.host.BASELINE_FREQUENCY

        points: List[DualTaskPoint] = []
        for host_frequency in host_frequencies:
            utilization = task.utilization(host_frequency)
            point = self.system.envelope.solve(host_frequency, activity)
            feasible = utilization < 1.0 and point.accelerator_usable
            speedup = 0.0
            if point.accelerator_usable:
                pulp_time = execution.wall_cycles / point.pulp_frequency
                speedup = baseline_time / pulp_time
            points.append(DualTaskPoint(
                host_frequency=host_frequency,
                host_utilization=utilization,
                accelerator_speedup=speedup,
                total_power=point.total_power,
                feasible=feasible,
            ))
        return points

    def best(self, kernel: Kernel, task: HostTask, **kwargs) -> DualTaskPoint:
        """The feasible point with the highest accelerator speedup."""
        feasible = [p for p in self.evaluate(kernel, task, **kwargs)
                    if p.feasible]
        if not feasible:
            raise BudgetError(
                f"no operating point fits task {task.name!r} plus "
                f"kernel {kernel.name!r} in the envelope")
        return max(feasible, key=lambda p: p.accelerator_speedup)
