"""DVFS policies for the accelerator.

The PULP SoC's FLL and clock dividers allow "fine grained frequency
tuning" (Section III-B), and the voltage regulator tracks the chosen
frequency.  Given a workload with a deadline, two classic policies
compete:

* **race-to-idle** — run at the fastest operating point the power budget
  allows, finish early, sleep the rest of the period;
* **pace-to-deadline** — run at the slowest frequency that still meets
  the deadline, at the lowest voltage sustaining it.

Which wins depends on the leakage/idle floor versus the quadratic
dynamic savings — exactly the near-threshold trade-off of the PULP
line.  :class:`DvfsController` evaluates both (plus any explicit
operating point) and picks the energy-optimal one, accounting the FLL
re-lock cost on every frequency hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import BudgetError, ConfigurationError
from repro.power.activity import ActivityProfile
from repro.power.pulp_model import PulpPowerModel
from repro.units import us


class DvfsPolicy(enum.Enum):
    """Supported scheduling policies."""

    RACE_TO_IDLE = "race-to-idle"
    PACE_TO_DEADLINE = "pace-to-deadline"


@dataclass(frozen=True)
class DvfsDecision:
    """One evaluated policy at one operating point."""

    policy: DvfsPolicy
    frequency: float
    voltage: float
    active_time: float
    idle_time: float
    energy: float

    @property
    def average_power(self) -> float:
        """Mean power over the period."""
        period = self.active_time + self.idle_time
        if period == 0:
            return 0.0
        return self.energy / period


class DvfsController:
    """Chooses the accelerator operating point for periodic workloads."""

    def __init__(self, power_model: Optional[PulpPowerModel] = None,
                 sleep_power: float = 60e-6,
                 fll_lock_time: float = us(50)):
        if sleep_power < 0 or fll_lock_time < 0:
            raise ConfigurationError("negative sleep power / lock time")
        self.power_model = power_model if power_model is not None \
            else PulpPowerModel()
        self.sleep_power = sleep_power
        self.fll_lock_time = fll_lock_time

    def evaluate(self, policy: DvfsPolicy, cycles: float, period: float,
                 activity: ActivityProfile,
                 power_budget: Optional[float] = None) -> DvfsDecision:
        """Cost one policy for ``cycles`` of work each ``period`` seconds."""
        if cycles <= 0 or period <= 0:
            raise ConfigurationError("cycles and period must be positive")
        if policy is DvfsPolicy.RACE_TO_IDLE:
            if power_budget is not None:
                frequency, voltage = self.power_model.max_frequency_within(
                    power_budget, activity)
                if frequency == 0:
                    raise BudgetError(
                        f"budget {power_budget} W sustains no frequency")
            else:
                frequency = self.power_model.table.f_max
                voltage = self.power_model.table.v_max
        else:
            frequency = cycles / period
            if frequency > self.power_model.table.f_max:
                raise BudgetError(
                    f"deadline needs {frequency:.3e} Hz, above f_max")
            frequency = max(frequency, 1.0)
            voltage = self.power_model.table.voltage_for(frequency)
        active_time = cycles / frequency
        if active_time > period * (1 + 1e-9):
            raise BudgetError(
                f"{policy.value} misses the deadline: needs {active_time:.4g} s "
                f"of a {period:.4g} s period")
        idle_time = max(0.0, period - active_time)
        active_power = self.power_model.total_power(frequency, voltage,
                                                    activity)
        energy = (active_time * active_power
                  + idle_time * self.sleep_power
                  + self.fll_lock_time * active_power)  # the hop
        return DvfsDecision(
            policy=policy,
            frequency=frequency,
            voltage=voltage,
            active_time=active_time,
            idle_time=idle_time,
            energy=energy,
        )

    def best(self, cycles: float, period: float,
             activity: ActivityProfile,
             power_budget: Optional[float] = None) -> DvfsDecision:
        """The energy-optimal feasible policy."""
        decisions: List[DvfsDecision] = []
        for policy in DvfsPolicy:
            try:
                decisions.append(self.evaluate(policy, cycles, period,
                                               activity, power_budget))
            except BudgetError:
                continue
        if not decisions:
            raise BudgetError("no DVFS policy meets the deadline and budget")
        return min(decisions, key=lambda d: d.energy)
