"""The heterogeneous accelerator model — the paper's core contribution.

* :class:`~repro.core.offload.OffloadCostModel` — prices a complete
  offload (binary + data transfers over SPI, synchronization events,
  accelerator compute), serially or double-buffered (Figure 5b);
* :class:`~repro.core.envelope.PowerEnvelopeSolver` — splits a shared
  power budget between host, link and accelerator and finds the best
  accelerator operating point (Figure 5a);
* :class:`~repro.core.system.HeterogeneousSystem` — the user-facing
  facade: functionally executes OpenMP ``target`` offloads through the
  wire protocol into the PULP model and reports time/energy/speedup.
"""

from repro.core.envelope import EnvelopePoint, PowerEnvelopeSolver
from repro.core.offload import OffloadCostModel, OffloadTiming, TransferCost
from repro.core.system import HeterogeneousSystem, OffloadResult

__all__ = [
    "TransferCost",
    "OffloadTiming",
    "OffloadCostModel",
    "EnvelopePoint",
    "PowerEnvelopeSolver",
    "HeterogeneousSystem",
    "OffloadResult",
]
