"""The heterogeneous system facade.

:class:`HeterogeneousSystem` is the public entry point of the library:
an STM32-L476 host coupled to the PULP accelerator model over a (Q)SPI
link.  ``offload`` runs an OpenMP ``target`` region end to end —
*functionally* (real bytes travel through the wire protocol into the L2
model, the kernel computes, results come back and are verified) and
*analytically* (cycles, power and energy from the calibrated models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import OffloadError
from repro.core.envelope import EnvelopePoint, PowerEnvelopeSolver
from repro.core.offload import OffloadCostModel, OffloadTiming
from repro.isa.or10n import Or10nTarget
from repro.kernels.base import Arrays, Kernel
from repro.link.protocol import encode_frame, decode_frames
from repro.link.spi import SpiLink, SpiMode
from repro.mcu.stm32l476 import Stm32L476
from repro.pulp.binary import KernelBinary
from repro.pulp.soc import PulpSoc
from repro.power.activity import ActivityProfile
from repro.runtime.host import MapClause, MapDirection, TargetRegion
from repro.runtime.omp import DeviceOpenMp, ParallelExecution
from repro.units import format_seconds, format_watts, mhz


@dataclass
class HostRun:
    """Baseline execution of a kernel on the host MCU."""

    frequency: float
    cycles: float
    time: float
    power: float

    @property
    def energy(self) -> float:
        """Energy of the host run."""
        return self.time * self.power


@dataclass
class OffloadResult:
    """Everything one offload produced.

    The degraded-mode fields are written by the resilient runtime
    (:mod:`repro.faults`): ``degraded`` marks a result computed by the
    OpenMP host fallback on the Cortex-M cost model after the recovery
    ladder was exhausted; ``recovery_actions`` lists the ladder steps
    taken (``re-arm``, ``reboot``, ``watchdog`` ...); ``fault_attempts``
    counts failed offload attempts; ``wasted_time_s`` /
    ``wasted_energy_j`` are the latency and energy of those failed
    attempts (retransmissions, watchdog waits, backoff) — already folded
    into ``timing.total_time`` and ``timing.energy``.
    """

    kernel_name: str
    outputs: Arrays
    verified: bool
    execution: ParallelExecution
    envelope: EnvelopePoint
    timing: OffloadTiming
    host_baseline: HostRun
    degraded: bool = False
    fallback_reason: Optional[str] = None
    recovery_actions: Tuple[str, ...] = ()
    fault_attempts: int = 0
    wasted_time_s: float = 0.0
    wasted_energy_j: float = 0.0

    @property
    def compute_speedup(self) -> float:
        """Pure accelerator-vs-host speedup (Figure 5a, no offload cost)."""
        if self.timing.compute_time == 0:
            return 0.0
        return self.host_baseline.time / self.timing.compute_time

    @property
    def effective_speedup(self) -> float:
        """Speedup including binary/data offload costs (Figure 5b view)."""
        per_iteration = self.timing.total_time / self.timing.iterations
        if per_iteration == 0:
            return 0.0
        return self.host_baseline.time / per_iteration

    @property
    def efficiency(self) -> float:
        """Fraction of the ideal speedup retained."""
        return self.timing.efficiency

    def metrics(self) -> dict:
        """Flat numeric metrics of this offload.

        The analysis-friendly projection of the result: one flat dict of
        JSON-safe scalars, consumed by the design-space exploration layer
        (:mod:`repro.dse`) and usable as a generic objective surface.
        """
        timing = self.timing
        return {
            "verified": self.verified,
            "compute_speedup": self.compute_speedup,
            "effective_speedup": self.effective_speedup,
            "efficiency": self.efficiency,
            "compute_cycles": self.execution.wall_cycles,
            "total_time_s": timing.total_time,
            "time_per_iteration_s": timing.total_time / timing.iterations,
            "energy_j": timing.energy.total_energy,
            "energy_per_iteration_j":
                timing.energy.total_energy / timing.iterations,
            "average_power_w": timing.average_power,
            "total_power_w": self.envelope.total_power,
            "pulp_frequency_hz": self.envelope.pulp_frequency,
            "pulp_voltage_v": self.envelope.pulp_voltage,
            "host_power_w": self.envelope.host_power,
            "host_baseline_time_s": self.host_baseline.time,
            "host_baseline_energy_j": self.host_baseline.energy,
            "degraded": self.degraded,
            "fault_attempts": self.fault_attempts,
            "wasted_time_s": self.wasted_time_s,
            "wasted_energy_j": self.wasted_energy_j,
        }

    def to_json_dict(self) -> dict:
        """Machine-readable summary (the ``--json`` surface)."""
        timing = self.timing
        return {
            "kernel": self.kernel_name,
            "verified": self.verified,
            "schedule": ("double-buffered" if timing.double_buffered
                         else "serial"),
            "iterations": timing.iterations,
            "envelope": {
                "host_frequency_hz": self.envelope.host_frequency,
                "host_power_w": self.envelope.host_power,
                "pulp_frequency_hz": self.envelope.pulp_frequency,
                "pulp_voltage_v": self.envelope.pulp_voltage,
                "pulp_power_w": self.envelope.pulp_power,
            },
            "timing_s": {
                "binary": timing.binary_time,
                "boot": timing.boot_time,
                "input_per_iteration": timing.input_time,
                "compute_per_iteration": timing.compute_time,
                "sync_per_iteration": timing.sync_time,
                "output_per_iteration": timing.output_time,
                "total": timing.total_time,
                "ideal": timing.ideal_time,
            },
            "bytes": {
                "binary": timing.binary_bytes,
                "input": timing.input_bytes,
                "output": timing.output_bytes,
            },
            "efficiency": self.efficiency,
            "compute_speedup": self.compute_speedup,
            "effective_speedup": self.effective_speedup,
            "host_baseline": {
                "frequency_hz": self.host_baseline.frequency,
                "cycles": self.host_baseline.cycles,
                "time_s": self.host_baseline.time,
                "power_w": self.host_baseline.power,
                "energy_j": self.host_baseline.energy,
            },
            "energy": self.timing.energy.to_dict(),
            "resilience": {
                "degraded": self.degraded,
                "fallback_reason": self.fallback_reason,
                "recovery_actions": list(self.recovery_actions),
                "fault_attempts": self.fault_attempts,
                "wasted_time_s": self.wasted_time_s,
                "wasted_energy_j": self.wasted_energy_j,
            },
        }

    def report(self) -> str:
        """Human-readable summary."""
        lines = [
            f"offload of {self.kernel_name!r} "
            f"({self.timing.iterations} iteration(s), "
            f"{'double-buffered' if self.timing.double_buffered else 'serial'})",
            f"  host @ {self.envelope.host_frequency / 1e6:.0f} MHz "
            f"({format_watts(self.envelope.host_power)}), "
            f"PULP @ {self.envelope.pulp_frequency / 1e6:.0f} MHz / "
            f"{self.envelope.pulp_voltage:.2f} V "
            f"({format_watts(self.envelope.pulp_power)})",
            f"  compute {format_seconds(self.timing.compute_time)}/iter, "
            f"offload total {format_seconds(self.timing.total_time)}, "
            f"efficiency {self.efficiency:.1%}",
            f"  speedup vs host: {self.compute_speedup:.1f}x compute, "
            f"{self.effective_speedup:.1f}x end-to-end",
            f"  outputs verified: {self.verified}",
        ]
        if self.degraded:
            lines.append(
                f"  DEGRADED: host fallback ({self.fallback_reason}) after "
                f"{self.fault_attempts} failed attempt(s), "
                f"{format_seconds(self.wasted_time_s)} / "
                f"{self.wasted_energy_j:.3g} J wasted")
        elif self.recovery_actions:
            lines.append(
                f"  recovered via {' -> '.join(self.recovery_actions)} "
                f"({self.fault_attempts} failed attempt(s), "
                f"{format_seconds(self.wasted_time_s)} wasted)")
        return "\n".join(lines)


class HeterogeneousSystem:
    """STM32-L476 + PULP over (Q)SPI: the paper's system."""

    def __init__(self, host: Optional[Stm32L476] = None,
                 soc: Optional[PulpSoc] = None,
                 link: Optional[SpiLink] = None,
                 threads: int = 4,
                 budget: Optional[float] = None):
        self.host = host if host is not None else Stm32L476()
        self.soc = soc if soc is not None else PulpSoc()
        self.link = link if link is not None else SpiLink(SpiMode.QUAD)
        self.target = Or10nTarget()
        self.omp = DeviceOpenMp(self.target, threads=threads)
        self.cost_model = OffloadCostModel(self.host, self.link,
                                           self.soc.power_model)
        solver_kwargs = {} if budget is None else {"budget": budget}
        self.envelope = PowerEnvelopeSolver(
            host_device=self.host.device,
            pulp_power=self.soc.power_model, **solver_kwargs)
        self._resident_binary: Optional[str] = None
        self._event_clock = 0.0

    def _next_event_time(self) -> float:
        """Monotonic timestamps for the GPIO event lines across offloads."""
        self._event_clock += 1e-6
        return self._event_clock

    # -- baseline -----------------------------------------------------------------

    def run_on_host(self, kernel: Kernel,
                    frequency: float = Stm32L476.BASELINE_FREQUENCY) -> HostRun:
        """Run the kernel on the host alone (the paper's baseline)."""
        program = kernel.build_program()
        report = self.host.device.lower(program)
        time = report.cycles / frequency
        return HostRun(frequency=frequency, cycles=report.cycles, time=time,
                       power=self.host.active_power(frequency))

    # -- the offload --------------------------------------------------------------

    def offload(self, kernel: Kernel, seed: int = 0,
                host_frequency: float = mhz(8), iterations: int = 1,
                double_buffered: bool = False) -> OffloadResult:
        """Offload *kernel* end to end and price it.

        The functional path marshals real bytes through the wire protocol
        into the accelerator's L2, runs the kernel, reads results back
        and verifies them against a direct computation.  The analytic
        path prices the same sequence with the calibrated models.
        """
        program = kernel.build_program()
        inputs = kernel.generate_inputs(seed)
        input_payload = kernel.serialize_inputs(inputs)
        if len(input_payload) != program.input_bytes:
            raise OffloadError(
                f"{kernel.name}: serialized input is {len(input_payload)} B "
                f"but the program declares {program.input_bytes} B")

        binary = KernelBinary.from_program(program)
        region = TargetRegion(binary=binary, maps=[
            MapClause("inputs", MapDirection.TO, data=input_payload),
            MapClause("outputs", MapDirection.FROM,
                      size=program.output_bytes),
        ])
        region.place(self.soc.l2)

        # ---- functional path: push frames through the protocol ----
        include_binary = self._resident_binary != binary.name
        pre_frames, post_frames = region.to_frames(include_binary=include_binary)
        self.soc.reset()
        if include_binary:
            self.soc.register_binary(binary, region.addresses["__binary__"])
            self._resident_binary = binary.name
        for frame in pre_frames:
            # Encode/decode round-trip: the exact bytes a QSPI slave sees.
            decoded, = decode_frames(encode_frame(frame))
            self.soc.handle_frame(decoded)
        self.soc.trigger_fetch_enable(time=self._next_event_time())
        outputs = kernel.compute(inputs)
        output_payload = kernel.serialize_outputs(outputs)
        if len(output_payload) != program.output_bytes:
            raise OffloadError(
                f"{kernel.name}: serialized output is {len(output_payload)} B "
                f"but the program declares {program.output_bytes} B")
        self.soc.l2.write(region.addresses["outputs"], output_payload)
        self.soc.computation_done(time=self._next_event_time())
        read_back = b""
        for frame in post_frames:
            decoded, = decode_frames(encode_frame(frame))
            read_back += self.soc.handle_frame(decoded)
        verified = read_back == output_payload

        # ---- analytic path: cycles, envelope, offload costs ----
        execution = self.omp.execute(program)
        activity = ActivityProfile.compute(
            cores_active=self.omp.threads,
            memory_intensity=execution.memory_intensity,
            name=kernel.name)
        point = self.envelope.solve(host_frequency, activity)
        if not point.accelerator_usable:
            raise OffloadError(
                f"no accelerator power budget left with the host at "
                f"{host_frequency / 1e6:.0f} MHz")
        timing = self.cost_model.offload_timing(
            binary_bytes=binary.image_bytes if include_binary else 0,
            input_bytes=len(input_payload),
            output_bytes=len(output_payload),
            compute_cycles=execution.wall_cycles,
            pulp_frequency=point.pulp_frequency,
            pulp_voltage=point.pulp_voltage,
            activity=activity,
            host_frequency=host_frequency,
            iterations=iterations,
            double_buffered=double_buffered,
            include_binary=include_binary,
        )
        return OffloadResult(
            kernel_name=kernel.name,
            outputs=outputs,
            verified=verified,
            execution=execution,
            envelope=point,
            timing=timing,
            host_baseline=self.run_on_host(kernel),
        )
