"""Offload cost model: latency and energy of a complete offload.

"Offloading computation from the MCU to PULP is not for free, in terms
of both performance (latency) and energy.  We have two limiting factors
to take into consideration: the impact of the accelerator binary
offload, and that of the input/output data transfer between the host MCU
and the accelerator."  This module prices both, for a configurable
number of benchmark iterations per offload, serially or with the
"traditional double buffering schemes ... to overlap data transfers with
useful computation" of the paper's rightmost Figure 5b plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import OffloadError
from repro.link.spi import SpiLink
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.mcu.stm32l476 import Stm32L476
from repro.power.activity import ActivityProfile
from repro.power.energy import EnergyAccount
from repro.power.pulp_model import PulpPowerModel
from repro.pulp.icache import SharedICache

#: Device-side runtime initialization after a fresh binary boots
#: (clear .bss, set up the OpenMP team structures, install handlers).
RUNTIME_INIT_CYCLES = 3000.0


@dataclass(frozen=True)
class TransferCost:
    """Time and energy of one link transfer, host-side costs included."""

    time: float
    energy: float
    payload_bytes: int


@dataclass
class OffloadTiming:
    """Complete cost breakdown of one offload of ``iterations`` runs."""

    iterations: int
    double_buffered: bool
    binary_time: float
    boot_time: float           #: I$ warm-up + runtime init (fresh binary)
    input_time: float          #: per iteration
    output_time: float         #: per iteration
    compute_time: float        #: per iteration
    sync_time: float           #: per iteration
    total_time: float
    ideal_time: float
    energy: EnergyAccount
    binary_bytes: int = 0      #: payloads, for telemetry span attributes
    input_bytes: int = 0
    output_bytes: int = 0

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the ideal (compute-only) speedup — the
        y-axis of Figure 5b."""
        if self.total_time == 0:
            return 0.0
        return self.ideal_time / self.total_time

    @property
    def average_power(self) -> float:
        """Average system power over the offload."""
        return self.energy.average_power


class OffloadCostModel:
    """Prices offloads for a given host/link/accelerator configuration."""

    def __init__(self, host: Optional[Stm32L476] = None,
                 link: Optional[SpiLink] = None,
                 pulp_power: Optional[PulpPowerModel] = None,
                 icache: Optional[SharedICache] = None):
        self.host = host if host is not None else Stm32L476()
        self.link = link if link is not None else SpiLink()
        self.pulp_power = pulp_power if pulp_power is not None else PulpPowerModel()
        self.icache = icache if icache is not None else SharedICache()

    # -- elementary costs -------------------------------------------------------

    def transfer_cost(self, payload_bytes: int, host_frequency: float,
                      pulp_idle_power: float) -> TransferCost:
        """One DMA-driven link transfer at the given host clock.

        The host core is active (it programs and supervises the DMA), the
        link is clocking, and the accelerator sits idle waiting.
        """
        if payload_bytes == 0:
            return TransferCost(0.0, 0.0, 0)
        clock = self.host.spi_clock(host_frequency)
        transfer = self.link.transfer(payload_bytes, clock)
        time = transfer.time + self.host.dma_setup_time(host_frequency)
        energy = (transfer.energy
                  + time * self.host.active_power(host_frequency)
                  + time * pulp_idle_power)
        return TransferCost(time=time, energy=energy,
                            payload_bytes=payload_bytes)

    # -- the full offload --------------------------------------------------------

    def offload_timing(self, binary_bytes: int, input_bytes: int,
                       output_bytes: int, compute_cycles: float,
                       pulp_frequency: float, pulp_voltage: float,
                       activity: ActivityProfile, host_frequency: float,
                       iterations: int = 1, double_buffered: bool = False,
                       include_binary: bool = True) -> OffloadTiming:
        """Cost ``iterations`` kernel runs per one binary offload."""
        if iterations < 1:
            raise OffloadError(f"iterations must be >= 1, got {iterations}")
        if compute_cycles <= 0 or pulp_frequency <= 0:
            raise OffloadError("compute cycles and PULP frequency must be positive")
        pulp_idle = self.pulp_power.total_power(
            pulp_frequency, pulp_voltage, ActivityProfile.idle())
        pulp_active = self.pulp_power.total_power(
            pulp_frequency, pulp_voltage, activity)

        binary = self.transfer_cost(binary_bytes if include_binary else 0,
                                    host_frequency, pulp_idle)
        # In the double-buffered schedule transfers overlap compute, so
        # the accelerator's power during them is already accounted by the
        # compute/wait phases — charging its idle floor inside the
        # transfer energy too would double count it.
        transfer_pulp_idle = 0.0 if double_buffered else pulp_idle
        data_in = self.transfer_cost(input_bytes, host_frequency,
                                     transfer_pulp_idle)
        data_out = self.transfer_cost(output_bytes, host_frequency,
                                      transfer_pulp_idle)
        compute_time = compute_cycles / pulp_frequency
        sync_time = (2 * self.host.gpio_event_time(host_frequency)
                     + self.host.wakeup_time)
        # A freshly offloaded binary boots once: the shared I$ streams
        # the code in from L2 and the device runtime initializes.
        boot_time = 0.0
        if include_binary and binary_bytes:
            boot_cycles = (self.icache.warmup_cycles(binary_bytes)
                           + RUNTIME_INIT_CYCLES)
            boot_time = boot_cycles / pulp_frequency

        energy = EnergyAccount()
        if binary.time:
            energy.add("binary", binary.time, binary.energy / binary.time)
        if boot_time:
            energy.add("boot", boot_time,
                       pulp_active + self.host.sleep_power)

        if double_buffered:
            total = self._double_buffered(
                binary, data_in, data_out, compute_time, sync_time,
                iterations, pulp_active, pulp_idle, host_frequency, energy)
        else:
            total = self._serial(
                binary, data_in, data_out, compute_time, sync_time,
                iterations, pulp_active, host_frequency, energy)
        total += boot_time

        timing = OffloadTiming(
            iterations=iterations,
            double_buffered=double_buffered,
            binary_time=binary.time,
            boot_time=boot_time,
            input_time=data_in.time,
            output_time=data_out.time,
            compute_time=compute_time,
            sync_time=sync_time,
            total_time=total,
            ideal_time=iterations * compute_time,
            energy=energy,
            binary_bytes=binary.payload_bytes,
            input_bytes=data_in.payload_bytes,
            output_bytes=data_out.payload_bytes,
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            emit_offload_spans(telemetry, timing)
        return timing

    def _serial(self, binary: TransferCost, data_in: TransferCost,
                data_out: TransferCost, compute_time: float,
                sync_time: float, iterations: int, pulp_active: float,
                host_frequency: float, energy: EnergyAccount) -> float:
        per_iteration = (data_in.time + compute_time + sync_time
                         + data_out.time)
        if data_in.time:
            energy.add("input", iterations * data_in.time,
                       data_in.energy / data_in.time)
        if data_out.time:
            energy.add("output", iterations * data_out.time,
                       data_out.energy / data_out.time)
        # During compute the host sleeps in stop mode.
        energy.add("compute", iterations * compute_time,
                   pulp_active + self.host.sleep_power)
        energy.add("sync", iterations * sync_time,
                   self.host.active_power(host_frequency))
        return binary.time + iterations * per_iteration

    def _double_buffered(self, binary: TransferCost, data_in: TransferCost,
                         data_out: TransferCost, compute_time: float,
                         sync_time: float, iterations: int,
                         pulp_active: float, pulp_idle: float,
                         host_frequency: float,
                         energy: EnergyAccount) -> float:
        """Transfers overlap compute: while iteration *k* computes, the
        host streams iteration *k+1* in and iteration *k-1* out.  The
        steady-state period is the slower of the two pipelines."""
        transfer_time = data_in.time + data_out.time
        period = max(compute_time + sync_time, transfer_time)
        total = binary.time + data_in.time \
            + iterations * period + data_out.time
        # Energy: transfers happen regardless; compute happens regardless;
        # the overlap means the host is active (driving DMA) during the
        # accelerator's compute when the link is the bottleneck.
        if data_in.time:
            energy.add("input", iterations * data_in.time,
                       data_in.energy / data_in.time)
        if data_out.time:
            energy.add("output", iterations * data_out.time,
                       data_out.energy / data_out.time)
        energy.add("compute", iterations * compute_time, pulp_active)
        idle_gap = iterations * max(0.0, period - compute_time - sync_time)
        if idle_gap > 0:
            energy.add("accelerator-wait", idle_gap, pulp_idle)
        host_sleep = iterations * max(0.0, period - transfer_time)
        if host_sleep > 0:
            energy.add("host-sleep", host_sleep, self.host.sleep_power)
        energy.add("sync", iterations * sync_time,
                   self.host.active_power(host_frequency))
        return total


# ---------------------------------------------------------------------------
# Telemetry emission
# ---------------------------------------------------------------------------


def emit_offload_spans(telemetry: Telemetry,
                       timing: OffloadTiming) -> Optional[int]:
    """Emit the offload schedule into *telemetry* as unified spans.

    Lanes: ``host`` (root ``offload`` span plus per-iteration ``sync``),
    ``spi`` (``binary`` / ``input[k]`` / ``output[k]`` transfers with
    byte and throughput attributes), ``pulp`` (``boot`` / ``compute[k]``
    and, double-buffered, ``period[k]`` containers with ``wait[k]`` idle
    filler), ``host:idle`` (double-buffered ``host-sleep[k]``).

    Every span carries the energy its phase contributes to the
    :class:`~repro.power.energy.EnergyAccount`: span energy is duration
    times the account's per-phase power, so the sum over all spans
    equals the account's total energy (the envelope roll-up) exactly.

    Returns the root span id, or ``None`` when the hub is disabled.
    """
    if not telemetry.enabled:
        return None
    power = timing.energy.power_by_label()

    def energy_of(label: str, duration: float) -> float:
        return duration * power.get(label, 0.0)

    schedule = "double-buffered" if timing.double_buffered else "serial"
    root = telemetry.span(
        "offload", "host", 0.0, timing.total_time,
        schedule=schedule, iterations=timing.iterations)
    clock = 0.0
    if timing.binary_time > 0:
        telemetry.span(
            "binary", "spi", clock, timing.binary_time, parent=root,
            energy=energy_of("binary", timing.binary_time),
            bytes=timing.binary_bytes,
            throughput_bps=timing.binary_bytes / timing.binary_time)
        clock += timing.binary_time
    if timing.boot_time > 0:
        telemetry.span("boot", "pulp", clock, timing.boot_time, parent=root,
                       energy=energy_of("boot", timing.boot_time))
        clock += timing.boot_time

    def transfer_attrs(payload: int, duration: float) -> dict:
        return {"bytes": payload,
                "throughput_bps": payload / duration if duration else 0.0}

    if timing.double_buffered:
        _emit_double_buffered(telemetry, timing, root, clock, energy_of,
                              transfer_attrs)
    else:
        _emit_serial(telemetry, timing, root, clock, energy_of,
                     transfer_attrs)
    telemetry.gauge("offload.total_time_s", timing.total_time)
    telemetry.gauge("offload.efficiency", timing.efficiency)
    telemetry.gauge("offload.energy_j", timing.energy.total_energy)
    return root


def _emit_serial(telemetry, timing, root, clock, energy_of,
                 transfer_attrs) -> None:
    for k in range(timing.iterations):
        if timing.input_time > 0:
            telemetry.span(
                f"input[{k}]", "spi", clock, timing.input_time, parent=root,
                energy=energy_of("input", timing.input_time), iteration=k,
                **transfer_attrs(timing.input_bytes, timing.input_time))
            clock += timing.input_time
        telemetry.span(f"compute[{k}]", "pulp", clock, timing.compute_time,
                       parent=root, iteration=k,
                       energy=energy_of("compute", timing.compute_time))
        clock += timing.compute_time
        if timing.sync_time > 0:
            telemetry.span(f"sync[{k}]", "host", clock, timing.sync_time,
                           parent=root, iteration=k,
                           energy=energy_of("sync", timing.sync_time))
            clock += timing.sync_time
        if timing.output_time > 0:
            telemetry.span(
                f"output[{k}]", "spi", clock, timing.output_time, parent=root,
                energy=energy_of("output", timing.output_time), iteration=k,
                **transfer_attrs(timing.output_bytes, timing.output_time))
            clock += timing.output_time


def _emit_double_buffered(telemetry, timing, root, clock, energy_of,
                          transfer_attrs) -> None:
    """While iteration *k* computes, the SPI streams iteration *k+1* in
    and *k-1* out; ``wait``/``host-sleep`` idle filler carries the
    account's ``accelerator-wait``/``host-sleep`` energy."""
    transfer = timing.input_time + timing.output_time
    period = max(timing.compute_time + timing.sync_time, transfer)
    gap = max(0.0, period - timing.compute_time - timing.sync_time)
    host_sleep = max(0.0, period - transfer)
    if timing.input_time > 0:
        telemetry.span(
            "input[0]", "spi", clock, timing.input_time, parent=root,
            energy=energy_of("input", timing.input_time), iteration=0,
            **transfer_attrs(timing.input_bytes, timing.input_time))
    clock += timing.input_time
    for k in range(timing.iterations):
        period_span = telemetry.span(f"period[{k}]", "pulp", clock, period,
                                     parent=root, iteration=k)
        telemetry.span(f"compute[{k}]", "pulp", clock, timing.compute_time,
                       parent=period_span, iteration=k,
                       energy=energy_of("compute", timing.compute_time))
        if gap > 0:
            telemetry.span(f"wait[{k}]", "pulp",
                           clock + timing.compute_time, gap,
                           parent=period_span, iteration=k, idle=True,
                           energy=energy_of("accelerator-wait", gap))
        if timing.sync_time > 0:
            telemetry.span(f"sync[{k}]", "host",
                           clock + timing.compute_time, timing.sync_time,
                           parent=period_span, iteration=k,
                           energy=energy_of("sync", timing.sync_time))
        if host_sleep > 0:
            telemetry.span(f"host-sleep[{k}]", "host:idle",
                           clock + transfer, host_sleep,
                           parent=period_span, iteration=k, idle=True,
                           energy=energy_of("host-sleep", host_sleep))
        wire_clock = clock
        if k >= 1 and timing.output_time > 0:
            telemetry.span(
                f"output[{k - 1}]", "spi", wire_clock, timing.output_time,
                parent=period_span, iteration=k - 1,
                energy=energy_of("output", timing.output_time),
                **transfer_attrs(timing.output_bytes, timing.output_time))
            wire_clock += timing.output_time
        if k + 1 < timing.iterations and timing.input_time > 0:
            telemetry.span(
                f"input[{k + 1}]", "spi", wire_clock, timing.input_time,
                parent=period_span, iteration=k + 1,
                energy=energy_of("input", timing.input_time),
                **transfer_attrs(timing.input_bytes, timing.input_time))
        clock += period
    if timing.output_time > 0:
        telemetry.span(
            f"output[{timing.iterations - 1}]", "spi", clock,
            timing.output_time, parent=root,
            iteration=timing.iterations - 1,
            energy=energy_of("output", timing.output_time),
            **transfer_attrs(timing.output_bytes, timing.output_time))
