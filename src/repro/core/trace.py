"""Execution trace: phase timeline of an offload.

Turns an :class:`~repro.core.offload.OffloadTiming` into an ordered list
of timed phases (binary, per-iteration input / compute / sync / output)
and renders an ASCII Gantt chart — the picture the paper's Figure 5b
prose describes ("the computation time dominates" versus "the bandwidth
of the SPI link is too low").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.core.offload import OffloadTiming


@dataclass(frozen=True)
class TracePhase:
    """One phase on the timeline."""

    label: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """End time of the phase."""
        return self.start + self.duration


def trace_offload(timing: OffloadTiming,
                  max_iterations: int = 4) -> List[TracePhase]:
    """The phase timeline of a *serial* offload (first iterations only).

    Double-buffered schedules overlap phases; for those, the timeline
    shows the steady-state period structure instead.
    """
    if max_iterations < 1:
        raise ConfigurationError(f"max_iterations must be >= 1")
    phases: List[TracePhase] = []
    clock = 0.0
    if timing.binary_time > 0:
        phases.append(TracePhase("binary", clock, timing.binary_time))
        clock += timing.binary_time
    if timing.boot_time > 0:
        phases.append(TracePhase("boot", clock, timing.boot_time))
        clock += timing.boot_time
    iterations = min(timing.iterations, max_iterations)
    if timing.double_buffered:
        transfer = timing.input_time + timing.output_time
        period = max(timing.compute_time + timing.sync_time, transfer)
        phases.append(TracePhase("prologue(in)", clock, timing.input_time))
        clock += timing.input_time
        for index in range(iterations):
            phases.append(TracePhase(f"period[{index}]", clock, period))
            clock += period
        phases.append(TracePhase("epilogue(out)", clock, timing.output_time))
        return phases
    for index in range(iterations):
        for label, duration in (("in", timing.input_time),
                                ("compute", timing.compute_time),
                                ("sync", timing.sync_time),
                                ("out", timing.output_time)):
            if duration > 0:
                phases.append(TracePhase(f"{label}[{index}]", clock, duration))
                clock += duration
    return phases


def render_gantt(phases: List[TracePhase], width: int = 72) -> str:
    """ASCII Gantt chart of a phase timeline."""
    if not phases:
        return "(empty trace)"
    if width < 10:
        raise ConfigurationError(f"width too small: {width}")
    total = max(phase.end for phase in phases)
    if total <= 0:
        return "(zero-length trace)"
    label_width = max(len(phase.label) for phase in phases)
    lines = []
    for phase in phases:
        start_col = int(round(phase.start / total * width))
        bar_len = max(1, int(round(phase.duration / total * width)))
        bar = " " * start_col + "#" * min(bar_len, width - start_col)
        share = phase.duration / total
        lines.append(f"{phase.label:<{label_width}} |{bar:<{width}}| "
                     f"{share:5.1%}")
    lines.append(f"{'':<{label_width}}  total {total * 1e3:.3f} ms")
    return "\n".join(lines)
