"""Execution trace: phase timeline of an offload.

The ASCII Gantt view of an :class:`~repro.core.offload.OffloadTiming` —
the picture the paper's Figure 5b prose describes ("the computation time
dominates" versus "the bandwidth of the SPI link is too low").

Since the unified telemetry layer (:mod:`repro.obs`) this module is
*just another renderer*: :func:`trace_offload` emits the offload into a
scratch :class:`~repro.obs.telemetry.Telemetry` hub via
:func:`~repro.core.offload.emit_offload_spans` and flattens the
resulting spans back into the legacy phase list — same events that feed
the Chrome trace exporter, rendered as text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.core.offload import OffloadTiming, emit_offload_spans
from repro.obs.telemetry import Telemetry

#: Legacy phase labels per unified span base name (serial schedule).
_SERIAL_LABELS = {"input": "in", "output": "out"}

_INDEXED = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


@dataclass(frozen=True)
class TracePhase:
    """One phase on the timeline."""

    label: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """End time of the phase."""
        return self.start + self.duration


def trace_offload(timing: OffloadTiming,
                  max_iterations: int = 4) -> List[TracePhase]:
    """The phase timeline of a *serial* offload (first iterations only).

    Double-buffered schedules overlap phases; for those, the timeline
    shows the steady-state period structure instead.
    """
    if max_iterations < 1:
        raise ConfigurationError("max_iterations must be >= 1")
    hub = Telemetry(enabled=True)
    emit_offload_spans(hub, timing)
    phases: List[TracePhase] = []
    clock = 0.0

    def push(label: str, duration: float) -> None:
        nonlocal clock
        phases.append(TracePhase(label, clock, duration))
        clock += duration

    if timing.double_buffered:
        # Containers only: binary/boot, the prologue input, the
        # steady-state periods, the epilogue output.
        spans = {span.name: span for span in hub.spans}
        for name in ("binary", "boot"):
            if name in spans:
                push(name, spans[name].duration)
        push("prologue(in)",
             spans["input[0]"].duration if "input[0]" in spans else 0.0)
        for index in range(min(timing.iterations, max_iterations)):
            push(f"period[{index}]", spans[f"period[{index}]"].duration)
        last = f"output[{timing.iterations - 1}]"
        push("epilogue(out)",
             spans[last].duration if last in spans else 0.0)
        return phases

    for span in sorted(hub.leaf_spans(), key=lambda s: (s.start, s.span_id)):
        if span.duration <= 0:
            continue
        match = _INDEXED.match(span.name)
        if match is None:
            push(span.name, span.duration)
            continue
        index = int(match.group("index"))
        if index >= max_iterations:
            continue
        base = _SERIAL_LABELS.get(match.group("base"), match.group("base"))
        push(f"{base}[{index}]", span.duration)
    return phases


def render_gantt(phases: List[TracePhase], width: int = 72) -> str:
    """ASCII Gantt chart of a phase timeline."""
    if not phases:
        return "(empty trace)"
    if width < 10:
        raise ConfigurationError(f"width too small: {width}")
    total = max(phase.end for phase in phases)
    if total <= 0:
        return "(zero-length trace)"
    label_width = max(len(phase.label) for phase in phases)
    lines = []
    for phase in phases:
        start_col = int(round(phase.start / total * width))
        bar_len = max(1, int(round(phase.duration / total * width)))
        bar = " " * start_col + "#" * min(bar_len, width - start_col)
        share = phase.duration / total
        lines.append(f"{phase.label:<{label_width}} |{bar:<{width}}| "
                     f"{share:5.1%}")
    lines.append(f"{'':<{label_width}}  total {total * 1e3:.3f} ms")
    return "\n".join(lines)
