"""The shared power envelope: splitting 10 mW between host, link and PULP.

"In the case of an embedded system, one is not typically interested in
the best absolute possible performance, but rather in the best
performance achievable in a given power envelope. ... we impose a
constraint of 10 mW to the total power consumption, considering the MCU,
PULP and the SPI link between the two.  The baseline is given by
clocking the STM32-L476 MCU at 32 MHz.  ...  As the MCU frequency is
lowered, the power available for the accelerator is more, therefore it
is possible to operate it at a higher frequency."  (Section IV-B)

Note the host stays *active* inside the envelope — the paper's budget
deliberately leaves room for "an additional, separate task to be
performed on the host at the same time" (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import BudgetError
from repro.mcu.catalog import mcu_by_name
from repro.mcu.device import McuDevice
from repro.power.activity import ActivityProfile
from repro.power.pulp_model import PulpPowerModel
from repro.units import mhz, mw

#: The paper's envelope.
DEFAULT_BUDGET = mw(10)
#: Idle SPI link reservation inside the envelope.
DEFAULT_LINK_RESERVE = mw(0.05)
#: MCU frequencies swept in Figure 5a (the >32 MHz points deliberately
#: exceed the envelope, as in the paper's plot).
FIGURE5A_HOST_FREQUENCIES = (mhz(1), mhz(2), mhz(4), mhz(8), mhz(16),
                             mhz(26), mhz(32), mhz(48))


@dataclass(frozen=True)
class EnvelopePoint:
    """One operating point of the shared envelope."""

    host_frequency: float
    host_power: float
    link_power: float
    pulp_frequency: float
    pulp_voltage: float
    pulp_power: float

    @property
    def total_power(self) -> float:
        """Total system power at this point."""
        return self.host_power + self.link_power + self.pulp_power

    @property
    def accelerator_usable(self) -> bool:
        """Whether any accelerator frequency fit in the residual budget."""
        return self.pulp_frequency > 0


class PowerEnvelopeSolver:
    """Finds the best accelerator operating point for each host clock."""

    def __init__(self, budget: float = DEFAULT_BUDGET,
                 host_device: Optional[McuDevice] = None,
                 pulp_power: Optional[PulpPowerModel] = None,
                 link_reserve: float = DEFAULT_LINK_RESERVE):
        if budget <= 0 or link_reserve < 0:
            raise BudgetError(f"invalid budget {budget} / reserve {link_reserve}")
        self.budget = budget
        self.host_device = host_device if host_device is not None \
            else mcu_by_name("STM32-L476")
        self.pulp_power = pulp_power if pulp_power is not None \
            else PulpPowerModel()
        self.link_reserve = link_reserve

    def host_only_power(self, host_frequency: float) -> float:
        """Power of the host-only baseline at *host_frequency*."""
        return self.host_device.active_power(host_frequency)

    def solve(self, host_frequency: float,
              activity: ActivityProfile) -> EnvelopePoint:
        """Best PULP operating point with the host at *host_frequency*.

        Host frequencies whose own power already exceeds the budget get a
        zero-frequency accelerator (the paper's 32 MHz baseline case, and
        the beyond-budget bars of Figure 5a).
        """
        host_power = self.host_device.active_power(host_frequency)
        residual = self.budget - host_power - self.link_reserve
        if residual <= 0:
            return EnvelopePoint(
                host_frequency=host_frequency,
                host_power=host_power,
                link_power=self.link_reserve,
                pulp_frequency=0.0,
                pulp_voltage=self.pulp_power.table.v_min,
                pulp_power=0.0,
            )
        frequency, voltage = self.pulp_power.max_frequency_within(
            residual, activity)
        pulp_power = 0.0
        if frequency > 0:
            pulp_power = self.pulp_power.total_power(frequency, voltage,
                                                     activity)
        return EnvelopePoint(
            host_frequency=host_frequency,
            host_power=host_power,
            link_power=self.link_reserve,
            pulp_frequency=frequency,
            pulp_voltage=voltage,
            pulp_power=pulp_power,
        )

    def sweep(self, activity: ActivityProfile,
              host_frequencies: Sequence[float] = FIGURE5A_HOST_FREQUENCIES):
        """Solve the envelope over a host-frequency sweep (Figure 5a)."""
        return [self.solve(f, activity) for f in host_frequencies]
