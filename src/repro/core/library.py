"""Library offload: keeping multiple kernel binaries resident.

Section III-A: "A general mechanism of code offload can therefore
consist in the offload of an entire collection of kernels (a library) at
the same time, or of the strictly required kernel alone.  Due to the
limited amount of memory available in typical ULP systems ... we chose
to restrict our analysis to this second case."

This module quantifies the road not taken: given a working set of
kernels with invocation frequencies, which binaries should stay resident
in the L2 left over after the largest kernel's data buffers?  Resident
binaries skip their re-offload cost on every invocation; the selection
is a 0/1 knapsack on saved link traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.kernels.base import Kernel
from repro.link.spi import SpiLink
from repro.pulp.binary import KernelBinary
from repro.pulp.l2 import L2Memory
from repro.units import mhz


@dataclass(frozen=True)
class LibraryEntry:
    """One kernel in the working set."""

    kernel_name: str
    binary_bytes: int
    data_bytes: int              #: max(in, out) marshalling footprint
    invocations_per_second: float

    @property
    def saved_bytes_per_second(self) -> float:
        """Link traffic avoided if this binary stays resident."""
        return self.binary_bytes * self.invocations_per_second


@dataclass
class LibraryPlan:
    """The chosen resident set and its consequences."""

    resident: List[LibraryEntry]
    evicted: List[LibraryEntry]
    l2_budget: int
    data_reservation: int

    @property
    def resident_bytes(self) -> int:
        """Bytes of resident binaries."""
        return sum(entry.binary_bytes for entry in self.resident)

    @property
    def saved_traffic(self) -> float:
        """Link bytes/second avoided by residency."""
        return sum(entry.saved_bytes_per_second for entry in self.resident)

    @property
    def residual_traffic(self) -> float:
        """Binary re-offload bytes/second still paid."""
        return sum(entry.saved_bytes_per_second for entry in self.evicted)

    def offload_seconds_saved(self, link: SpiLink, spi_clock: float) -> float:
        """Link seconds/second saved (i.e. duty-cycle reduction)."""
        if self.saved_traffic == 0:
            return 0.0
        throughput = link.throughput(spi_clock)
        return self.saved_traffic / throughput


class LibraryPlanner:
    """Chooses the resident binary set for a kernel working set."""

    def __init__(self, l2: Optional[L2Memory] = None):
        self.l2_size = (l2 if l2 is not None else L2Memory()).size

    def entries_for(self, workload: Sequence[Tuple[Kernel, float]]
                    ) -> List[LibraryEntry]:
        """Build library entries from (kernel, invocations/s) pairs."""
        entries = []
        for kernel, rate in workload:
            if rate < 0:
                raise ConfigurationError(
                    f"negative invocation rate for {kernel.name}")
            program = kernel.build_program()
            binary = KernelBinary.from_program(program)
            entries.append(LibraryEntry(
                kernel_name=kernel.name,
                binary_bytes=binary.image_bytes,
                data_bytes=max(program.input_bytes, program.output_bytes),
                invocations_per_second=rate))
        return entries

    def plan(self, entries: Sequence[LibraryEntry]) -> LibraryPlan:
        """Knapsack the binaries into the L2 space left after data.

        The data reservation is the largest marshalling footprint in the
        set (any kernel must still be runnable).  Weights are binary
        sizes; values are saved link bytes/second.  Sizes are in the
        hundreds of entries at most, so the classic DP over bytes at a
        16-byte granularity is cheap.
        """
        if not entries:
            raise ConfigurationError("empty kernel working set")
        data_reservation = max(entry.data_bytes for entry in entries)
        budget = self.l2_size - data_reservation
        if budget <= 0:
            return LibraryPlan(resident=[], evicted=list(entries),
                               l2_budget=0, data_reservation=data_reservation)
        granularity = 16
        slots = budget // granularity
        weights = [-(-entry.binary_bytes // granularity) for entry in entries]
        values = [entry.saved_bytes_per_second for entry in entries]
        # 0/1 knapsack.
        table = [0.0] * (slots + 1)
        keep: List[List[bool]] = []
        for index, (weight, value) in enumerate(zip(weights, values)):
            chosen_row = [False] * (slots + 1)
            for capacity in range(slots, weight - 1, -1):
                candidate = table[capacity - weight] + value
                if candidate > table[capacity]:
                    table[capacity] = candidate
                    chosen_row[capacity] = True
            keep.append(chosen_row)
        # Backtrack.
        resident_indices = []
        capacity = slots
        for index in range(len(entries) - 1, -1, -1):
            if keep[index][capacity]:
                resident_indices.append(index)
                capacity -= weights[index]
        resident_indices.reverse()
        resident = [entries[i] for i in resident_indices]
        evicted = [entry for i, entry in enumerate(entries)
                   if i not in resident_indices]
        return LibraryPlan(resident=resident, evicted=evicted,
                           l2_budget=budget,
                           data_reservation=data_reservation)


def render_plan(plan: LibraryPlan, link: Optional[SpiLink] = None,
                spi_clock: float = mhz(8)) -> str:
    """Text rendering of a library plan."""
    link = link if link is not None else SpiLink()
    lines = [f"library plan: {plan.resident_bytes:,} B resident of "
             f"{plan.l2_budget:,} B budget "
             f"(data reservation {plan.data_reservation:,} B)"]
    for entry in plan.resident:
        lines.append(f"  resident  {entry.kernel_name:16s} "
                     f"{entry.binary_bytes:7,} B  saves "
                     f"{entry.saved_bytes_per_second / 1024:8.1f} kB/s")
    for entry in plan.evicted:
        lines.append(f"  evicted   {entry.kernel_name:16s} "
                     f"{entry.binary_bytes:7,} B  costs "
                     f"{entry.saved_bytes_per_second / 1024:8.1f} kB/s")
    saved = plan.offload_seconds_saved(link, spi_clock)
    lines.append(f"  link duty cycle saved: {saved:.1%}")
    return "\n".join(lines)
