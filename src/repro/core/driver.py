"""The host-side offload driver: a reliable protocol session.

:class:`repro.core.system.HeterogeneousSystem` assumes a clean wire.
This module is the production-shaped driver underneath: an explicit
session state machine (IDLE -> LOADED -> ARMED -> RUNNING -> COMPLETE)
that delivers every frame through the retransmitting sender, survives a
configurable bit-error rate, accounts the extra wire time retries cost,
and refuses out-of-order operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import OffloadError
from repro.link.noise import NoisyChannel, RetransmittingSender
from repro.link.protocol import Command, Frame
from repro.link.spi import SpiLink
from repro.mcu.stm32l476 import Stm32L476
from repro.pulp.binary import KernelBinary
from repro.pulp.soc import PulpSoc
from repro.runtime.host import MapClause, MapDirection, TargetRegion
from repro.units import mhz


class SessionState(enum.Enum):
    """Driver session states."""

    IDLE = "idle"
    LOADED = "loaded"        #: binary delivered
    ARMED = "armed"          #: inputs delivered, START sent
    RUNNING = "running"      #: fetch-enable pulsed
    COMPLETE = "complete"    #: EOC seen, results read


@dataclass
class SessionStats:
    """Wire statistics of one session."""

    frames_sent: int = 0
    transmissions: int = 0
    wire_bytes: int = 0
    payload_bytes: int = 0

    @property
    def retry_overhead(self) -> float:
        """Extra transmissions per frame (0 = clean channel)."""
        if self.frames_sent == 0:
            return 0.0
        return self.transmissions / self.frames_sent - 1.0


class OffloadDriver:
    """Drives one accelerator through the wire protocol, reliably."""

    def __init__(self, soc: Optional[PulpSoc] = None,
                 host: Optional[Stm32L476] = None,
                 link: Optional[SpiLink] = None,
                 bit_error_rate: float = 0.0,
                 max_attempts: int = 32,
                 seed: int = 1,
                 channel=None):
        self.soc = soc if soc is not None else PulpSoc()
        self.host = host if host is not None else Stm32L476()
        self.link = link if link is not None else SpiLink()
        # Any object with ``transmit`` + ``bit_error_rate`` works as the
        # channel (e.g. repro.faults.injector.FaultyChannel).
        self.channel = channel if channel is not None \
            else NoisyChannel(bit_error_rate, seed=seed)
        self._sender = RetransmittingSender(
            self.channel, max_attempts=max_attempts)
        self.state = SessionState.IDLE
        self.stats = SessionStats()
        self._region: Optional[TargetRegion] = None
        self._event_clock = 0.0

    # -- session steps -----------------------------------------------------------

    def load(self, binary: KernelBinary,
             input_payload: bytes, output_bytes: int) -> None:
        """Place the region in L2 and deliver the binary."""
        self._require(SessionState.IDLE, "load")
        region = TargetRegion(binary=binary, maps=[
            MapClause("inputs", MapDirection.TO, data=input_payload),
            MapClause("outputs", MapDirection.FROM, size=output_bytes),
        ])
        region.place(self.soc.l2)
        self.soc.register_binary(binary, region.addresses["__binary__"])
        self._send(Frame(Command.LOAD_BINARY,
                         region.addresses["__binary__"],
                         binary.to_bytes()))
        self._region = region
        self.state = SessionState.LOADED

    def arm(self, input_payload: bytes) -> None:
        """Deliver the inputs and send START."""
        self._require(SessionState.LOADED, "arm")
        self._send(Frame(Command.WRITE_DATA,
                         self._region.addresses["inputs"], input_payload))
        self._send(Frame(Command.START,
                         self._region.addresses["__binary__"]))
        self.state = SessionState.ARMED

    def start(self) -> None:
        """Pulse the fetch-enable line."""
        self._require(SessionState.ARMED, "start")
        self._event_clock += 1e-6
        self.soc.trigger_fetch_enable(self._event_clock)
        self.state = SessionState.RUNNING

    def complete(self, output_payload: bytes) -> bytes:
        """Device signals EOC (the caller supplies what the kernel wrote
        into the output region); read the results back reliably."""
        self._require(SessionState.RUNNING, "complete")
        self.soc.l2.write(self._region.addresses["outputs"], output_payload)
        self._event_clock += 1e-6
        self.soc.computation_done(self._event_clock)
        request = Frame(Command.READ_DATA, self._region.addresses["outputs"],
                        len(output_payload).to_bytes(4, "little"))
        delivered = self._send(request)
        response = self.soc.handle_frame(delivered)
        self.state = SessionState.COMPLETE
        return response

    def reset(self) -> None:
        """Back to IDLE (binary stays resident in the model's L2)."""
        self.soc.reset()
        self.state = SessionState.IDLE
        self._region = None

    # -- accounting --------------------------------------------------------------

    def wire_time(self, host_frequency: float = mhz(8)) -> float:
        """Seconds the wire spent, retransmissions included."""
        clock = self.host.spi_clock(host_frequency)
        return self.stats.wire_bytes * 8.0 / (self.link.width * clock)

    # -- internals ----------------------------------------------------------------

    def _send(self, frame: Frame) -> Frame:
        delivered = self._sender.send(frame)
        if frame.command is not Command.READ_DATA:
            self.soc.handle_frame(delivered)
        self._account(frame)
        return delivered

    def _account(self, frame: Frame) -> None:
        """Fold the last delivery's wire cost into the session stats."""
        entry = self._sender.log[-1]
        self.stats.frames_sent += 1
        self.stats.transmissions += entry.attempts
        self.stats.wire_bytes += entry.wire_bytes
        self.stats.payload_bytes += len(frame.payload)

    def _require(self, expected: SessionState, operation: str) -> None:
        if self.state is not expected:
            raise OffloadError(
                f"driver cannot {operation} in state {self.state.value} "
                f"(needs {expected.value})")
