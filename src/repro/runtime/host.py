"""Host-side OpenMP ``target`` construct.

"#pragma omp target ... allows to outline a block of code which needs to
be compiled for the target accelerator and the map clause allows to
specify data items from the host program that need to be made visible to
the accelerator.  In this way, we provide a distinction between program
and data offloads and hide the low-level details of the data exchange
primitives behind higher level abstractions."

A :class:`TargetRegion` is that outline: the kernel binary to run plus
named ``map`` clauses.  Its :meth:`to_frames` hands the offload manager
the exact wire-protocol frames the low-level primitives would issue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OffloadError
from repro.link.protocol import Command, Frame
from repro.pulp.binary import KernelBinary
from repro.pulp.l2 import L2Memory


class MapDirection(enum.Enum):
    """OpenMP v4.0 map directions."""

    TO = "to"          #: host -> accelerator before the region
    FROM = "from"      #: accelerator -> host after the region
    TOFROM = "tofrom"  #: both


@dataclass(frozen=True)
class MapClause:
    """One ``map(direction: name[0:size])`` clause."""

    name: str
    direction: MapDirection
    data: bytes = b""
    size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.direction in (MapDirection.TO, MapDirection.TOFROM):
            if not self.data:
                raise OffloadError(
                    f"map({self.direction.value}: {self.name}) needs host data")
        if self.direction is MapDirection.FROM and self.size is None:
            raise OffloadError(
                f"map(from: {self.name}) needs an explicit size")

    @property
    def transfer_to_bytes(self) -> int:
        """Bytes moved host -> accelerator for this clause."""
        if self.direction in (MapDirection.TO, MapDirection.TOFROM):
            return len(self.data)
        return 0

    @property
    def transfer_from_bytes(self) -> int:
        """Bytes moved accelerator -> host for this clause."""
        if self.direction is MapDirection.FROM:
            return int(self.size)
        if self.direction is MapDirection.TOFROM:
            return len(self.data)
        return 0


@dataclass
class TargetRegion:
    """An ``omp target`` region: binary + map clauses + placement."""

    binary: KernelBinary
    maps: List[MapClause] = field(default_factory=list)
    addresses: Dict[str, int] = field(default_factory=dict)
    overlapped: bool = False

    #: Working buffers live in the cluster TCDM, not in L2.
    TCDM_CAPACITY = 48 * 1024

    def place(self, l2: L2Memory) -> None:
        """Lay the region out in accelerator L2: binary image first, then
        one marshalling buffer per map clause.  The kernel's *working*
        buffers (``binary.buffer_bytes``) live in the cluster's TCDM, so
        they only get a capacity check here.

        When the flat layout does not fit the 64 kB L2 (hog: binary +
        input + output exceed it), the layout falls back to *overlapping*
        the output buffers over the input region — legal because the
        kernel consumes its input strip-wise before the descriptor
        overwrites it, and because transfers in the two directions happen
        in disjoint phases of the offload.
        """
        from repro.errors import SimulationError

        if self.binary.buffer_bytes > self.TCDM_CAPACITY:
            raise OffloadError(
                f"{self.binary.name}: working set {self.binary.buffer_bytes} B "
                f"exceeds the {self.TCDM_CAPACITY} B TCDM")
        l2.reset_allocator()
        try:
            self._place_flat(l2)
            self.overlapped = False
        except SimulationError:
            self._place_overlapped(l2)
            self.overlapped = True

    def _place_flat(self, l2: L2Memory) -> None:
        self.addresses = {
            "__binary__": l2.allocate(self.binary.image_bytes, align=16)}
        for clause in self.maps:
            size = len(clause.data) if clause.data else int(clause.size or 0)
            self.addresses[clause.name] = l2.allocate(size, align=4)

    def _place_overlapped(self, l2: L2Memory) -> None:
        l2.reset_allocator()
        self.addresses = {
            "__binary__": l2.allocate(self.binary.image_bytes, align=16)}
        to_sizes = [len(c.data) for c in self.maps
                    if c.direction in (MapDirection.TO, MapDirection.TOFROM)]
        from_sizes = [int(c.size or len(c.data)) for c in self.maps
                      if c.direction in (MapDirection.FROM, MapDirection.TOFROM)]
        shared = l2.allocate(max(sum(to_sizes), sum(from_sizes)), align=4)
        to_cursor = shared
        from_cursor = shared
        for clause in self.maps:
            if clause.direction is MapDirection.TO:
                self.addresses[clause.name] = to_cursor
                to_cursor += len(clause.data)
            elif clause.direction is MapDirection.FROM:
                self.addresses[clause.name] = from_cursor
                from_cursor += int(clause.size)
            else:  # TOFROM keeps one slot serving both directions
                self.addresses[clause.name] = to_cursor
                to_cursor += len(clause.data)
                from_cursor += len(clause.data)

    def to_frames(self, include_binary: bool = True) -> Tuple[List[Frame], List[Frame]]:
        """The (pre-region, post-region) frame sequences.

        Pre: optional LOAD_BINARY, WRITE_DATA per ``to`` clause, START.
        Post: READ_DATA per ``from`` clause.
        """
        if not self.addresses:
            raise OffloadError("TargetRegion.place() must run before to_frames()")
        pre: List[Frame] = []
        if include_binary:
            pre.append(Frame(Command.LOAD_BINARY,
                             self.addresses["__binary__"],
                             self.binary.to_bytes()))
        for clause in self.maps:
            if clause.transfer_to_bytes:
                pre.append(Frame(Command.WRITE_DATA,
                                 self.addresses[clause.name], clause.data))
        pre.append(Frame(Command.START, self.addresses["__binary__"]))
        post: List[Frame] = []
        for clause in self.maps:
            length = clause.transfer_from_bytes
            if length:
                post.append(Frame(Command.READ_DATA,
                                  self.addresses[clause.name],
                                  length.to_bytes(4, "little")))
        return pre, post

    @property
    def bytes_to_device(self) -> int:
        """Input payload bytes per region execution (excluding binary)."""
        return sum(c.transfer_to_bytes for c in self.maps)

    @property
    def bytes_from_device(self) -> int:
        """Output payload bytes per region execution."""
        return sum(c.transfer_from_bytes for c in self.maps)
