"""OpenMP runtime models.

The paper programs the accelerator with "a streamlined implementation of
the OpenMP runtime library" on the PULP cores and exposes offload through
the OpenMP v4.0 ``#pragma omp target`` directive with ``map`` clauses on
the host.  Correspondingly:

* :class:`~repro.runtime.omp.DeviceOpenMp` — the device-side runtime:
  team fork/join (clock-gating idle cores through the HW synchronizer),
  ``parallel for`` with static/dynamic schedules, barriers and
  reductions, all with cycle-cost accounting;
* :class:`~repro.runtime.host.TargetRegion` — the host-side ``target``
  construct: named ``map(to:)``/``map(from:)`` data clauses that the
  offload manager turns into wire-protocol frames.
"""

from repro.runtime.host import MapClause, MapDirection, TargetRegion
from repro.runtime.omp import (BarrierSite, DeviceOpenMp,
                               ParallelExecution, Schedule)
from repro.runtime.overheads import OmpOverheads

__all__ = [
    "OmpOverheads",
    "Schedule",
    "ParallelExecution",
    "BarrierSite",
    "DeviceOpenMp",
    "MapDirection",
    "MapClause",
    "TargetRegion",
]
