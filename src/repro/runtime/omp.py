"""Device-side OpenMP execution model.

Combines the analytic parallel timing of
:func:`repro.pulp.timing.parallel_wall_cycles` with the runtime construct
costs of :class:`~repro.runtime.overheads.OmpOverheads`, producing the
quantities Figure 4 (right) reports: parallel speedup versus a single
core, and the runtime overhead fraction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import RuntimeModelError
from repro.isa.program import Loop, Program
from repro.isa.target import Target
from repro.obs.telemetry import CYCLES, get_telemetry
from repro.pulp.timing import ContentionModel, chunk_trips
from repro.runtime.overheads import OmpOverheads


class Schedule(enum.Enum):
    """OpenMP ``for`` schedules supported by the runtime."""

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class BarrierSite:
    """One implicit join barrier: the team-wide synchronization ending a
    parallel region.  The static concurrency analyzer's barrier-phase
    intervals (``OR012``) are checked against this sequence."""

    region: int          #: parallel-region index, in program order
    cycle: float         #: wall cycle at which the team crosses the join
    threads: int         #: team size synchronizing at the barrier


@dataclass
class ParallelExecution:
    """Result of executing one kernel program on the cluster."""

    threads: int
    wall_cycles: float
    work_cycles: float          #: compute cycles on the critical path
    serial_cycles: float        #: serial (master-only) portion
    overhead_cycles: float      #: OpenMP runtime cycles
    memory_accesses: float
    parallel_regions: int
    #: Implicit join barriers crossed, one per parallel region.
    barrier_sites: List[BarrierSite] = field(default_factory=list)

    @property
    def barriers(self) -> int:
        """Team-wide barriers crossed during the execution."""
        return len(self.barrier_sites)

    @property
    def overhead_fraction(self) -> float:
        """Runtime overhead over total execution (the paper's 6 % metric)."""
        if self.wall_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.wall_cycles

    @property
    def memory_intensity(self) -> float:
        """Cluster TCDM accesses per wall cycle, capped at 1."""
        if self.wall_cycles == 0:
            return 0.0
        return min(1.0, self.memory_accesses / self.wall_cycles)


class DeviceOpenMp:
    """The streamlined OpenMP runtime running on the PULP cluster."""

    def __init__(self, target: Target, threads: int = 4,
                 overheads: Optional[OmpOverheads] = None,
                 contention: Optional[ContentionModel] = None,
                 schedule: Schedule = Schedule.STATIC):
        if threads < 1:
            raise RuntimeModelError(f"threads must be >= 1, got {threads}")
        self.target = target
        self.threads = threads
        self.overheads = overheads if overheads is not None else OmpOverheads()
        self.contention = contention if contention is not None else ContentionModel()
        self.schedule = schedule

    def execute(self, program: Program) -> ParallelExecution:
        """Execute *program*: top-level parallelizable loops run on the
        team, everything else on the master core."""
        telemetry = get_telemetry()
        wall = 0.0
        work = 0.0
        serial = 0.0
        overhead = 0.0
        accesses = 0.0
        regions = 0
        barrier_sites: List[BarrierSite] = []
        for index, node in enumerate(program.body):
            if isinstance(node, Loop) and node.parallelizable and self.threads > 1:
                region = self._parallel_region(node)
                if telemetry.enabled and region.wall > 0:
                    telemetry.span(f"parallel[{regions}]", "omp", wall,
                                   region.wall, domain=CYCLES,
                                   threads=self.threads,
                                   schedule=self.schedule.value,
                                   overhead_cycles=region.overhead,
                                   trips=node.trips)
                wall += region.wall
                work += region.work
                overhead += region.overhead
                accesses += region.accesses
                barrier_sites.append(BarrierSite(
                    region=regions, cycle=wall, threads=self.threads))
                regions += 1
            else:
                report = self.target.lower_nodes([node])
                if telemetry.enabled and report.cycles > 0:
                    telemetry.span(f"serial[{index}]", "omp", wall,
                                   report.cycles, domain=CYCLES,
                                   instructions=report.instructions)
                wall += report.cycles
                work += report.cycles
                serial += report.cycles
                accesses += report.memory_accesses
        return ParallelExecution(
            threads=self.threads,
            wall_cycles=wall,
            work_cycles=work,
            serial_cycles=serial,
            overhead_cycles=overhead,
            memory_accesses=accesses,
            parallel_regions=regions,
            barrier_sites=barrier_sites,
        )

    def speedup_vs_single(self, program: Program) -> float:
        """Parallel speedup over the same runtime with one thread."""
        single = DeviceOpenMp(self.target, 1, self.overheads,
                              self.contention, self.schedule)
        return single.execute(program).wall_cycles \
            / self.execute(program).wall_cycles

    # -- internals ---------------------------------------------------------------

    @dataclass
    class _Region:
        wall: float
        work: float
        overhead: float
        accesses: float

    def _parallel_region(self, loop: Loop) -> "DeviceOpenMp._Region":
        overhead = self.overheads.region_fixed_cost(self.threads, loop.reduction)
        if self.schedule is Schedule.STATIC:
            chunks = chunk_trips(loop.trips, self.threads)
            reports = [self.target.lower_nodes([loop.with_trips(c)])
                       for c in chunks if c > 0]
            per_thread = [r.cycles for r in reports]
        else:
            # Dynamic: unit chunks, self-balancing; cost a dequeue per chunk.
            per_iteration = self.target.lower_nodes([loop.with_trips(1)])
            chunks_per_thread = chunk_trips(loop.trips, self.threads)
            reports = []
            per_thread = []
            for count in chunks_per_thread:
                if count == 0:
                    continue
                cycles = count * (per_iteration.cycles
                                  + self.overheads.dynamic_chunk)
                per_thread.append(cycles)
                reports.append(per_iteration)
            overhead += loop.trips * self.overheads.dynamic_chunk / max(1, self.threads)
        if not per_thread:
            return self._Region(wall=overhead, work=0.0,
                                overhead=overhead, accesses=0.0)
        if self.schedule is Schedule.STATIC:
            accesses = sum(r.memory_accesses for r in reports)
            busiest = max(per_thread)
        else:
            accesses = reports[0].memory_accesses * loop.trips
            busiest = max(per_thread)
        intensity = min(1.0, accesses / (busiest * len(per_thread))) \
            if busiest > 0 else 0.0
        factor = self.contention.stall_factor(len(per_thread), intensity)
        wall = busiest * factor + overhead
        return self._Region(wall=wall, work=busiest * factor,
                            overhead=overhead, accesses=accesses)
