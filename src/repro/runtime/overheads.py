"""Cycle costs of the device-side OpenMP runtime.

The paper's runtime is "lightweight ... with reduced execution overhead
and memory footprint"; body-bias boosting and clock gating are "integrated
directly in the thread creation/destruction routine ... fully transparent
to the user", and the HW synchronizer makes barriers cost only a few
cycles of hardware latency plus the software entry/exit sequence.  The
values below are the software costs of each construct; they are the knob
behind the paper's measured "average overhead of the OpenMP runtime [of]
6 %".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OmpOverheads:
    """Per-construct software costs, in cycles."""

    #: Opening a ``parallel`` region: wake + configure the team, including
    #: the per-core body-bias/clock-gate toggle in thread creation.
    parallel_fork: float = 1200.0
    #: Closing a ``parallel`` region: join + gate idle cores again.
    parallel_join: float = 700.0
    #: ``for`` schedule initialization (bounds/chunk computation).
    for_init: float = 80.0
    #: Per-chunk dequeue cost of the ``dynamic`` schedule.
    dynamic_chunk: float = 35.0
    #: Software part of a barrier (the HW synchronizer adds ~2 cycles).
    barrier: float = 100.0
    #: Combining one thread's partial value in a ``reduction``.
    reduction_per_thread: float = 25.0

    def __post_init__(self) -> None:
        values = (self.parallel_fork, self.parallel_join, self.for_init,
                  self.dynamic_chunk, self.barrier, self.reduction_per_thread)
        if any(v < 0 for v in values):
            raise ConfigurationError(f"negative OpenMP overhead in {self}")

    def region_fixed_cost(self, threads: int, reduction: bool) -> float:
        """Fixed cycles for one ``parallel for`` region."""
        cost = self.parallel_fork + self.parallel_join + self.for_init \
            + self.barrier
        if reduction:
            cost += self.reduction_per_thread * threads
        return cost
