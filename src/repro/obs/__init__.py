"""Unified observability: telemetry hub, exporters, and analyzers.

The public surface of the telemetry subsystem:

- :class:`Telemetry`, :class:`Span`, :class:`Counter` — the event model
  (``Telemetry.timed`` wraps a block in a real-elapsed-time span);
- :func:`get_telemetry` / :func:`use_telemetry` — the active hub;
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — Perfetto export;
- :func:`collapsed_stacks` / :func:`write_flamegraph` — flamegraph export;
- :func:`metrics_snapshot` / :func:`render_metrics` — metrics surface;
- :class:`TraceAnalyzer` — utilization / critical path / overlap;
- :func:`route_recorder` — DES recorder -> hub bridge;
- :func:`render_span_timeline` — generic ASCII lanes.

See ``docs/OBSERVABILITY.md`` for the event model and formats.
"""

from repro.obs.analyzer import LaneStats, TraceAnalyzer
from repro.obs.bridge import route_recorder
from repro.obs.export import (
    chrome_trace_events,
    collapsed_stacks,
    metrics_snapshot,
    render_metrics,
    to_chrome_trace,
    write_chrome_trace,
    write_flamegraph,
)
from repro.obs.render import render_span_timeline
from repro.obs.telemetry import (
    CYCLES,
    Counter,
    Span,
    Telemetry,
    WALL,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)

__all__ = [
    "CYCLES",
    "Counter",
    "LaneStats",
    "Span",
    "Telemetry",
    "TraceAnalyzer",
    "WALL",
    "chrome_trace_events",
    "collapsed_stacks",
    "get_telemetry",
    "metrics_snapshot",
    "render_metrics",
    "render_span_timeline",
    "route_recorder",
    "set_telemetry",
    "to_chrome_trace",
    "use_telemetry",
    "write_chrome_trace",
    "write_flamegraph",
]
