"""Unified observability: telemetry hub, exporters, and analyzers.

The public surface of the telemetry subsystem:

- :class:`Telemetry`, :class:`Span`, :class:`Counter` — the event model
  (``Telemetry.timed`` wraps a block in a real-elapsed-time span);
- :func:`get_telemetry` / :func:`use_telemetry` — the active hub;
- :func:`monotonic` — the shared monotonic clock every framework-time
  measurement (DSE batches, benchmarks, profiled phases) reads;
- :class:`PhaseProfiler` — per-phase real-time profiling hooks with a
  near-zero-cost disabled path;
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — Perfetto export;
- :func:`collapsed_stacks` / :func:`collapsed_totals` /
  :func:`write_flamegraph` — flamegraph export;
- :func:`metrics_snapshot` / :func:`render_metrics` — metrics surface;
- :class:`TraceAnalyzer` — utilization / critical path / overlap;
- :func:`route_recorder` — DES recorder -> hub bridge;
- :func:`render_span_timeline` — generic ASCII lanes.

See ``docs/OBSERVABILITY.md`` for the event model and formats, and
``docs/BENCHMARKS.md`` for how ``repro bench`` builds on this layer.
"""

from repro.obs.analyzer import LaneStats, TraceAnalyzer
from repro.obs.bridge import route_recorder
from repro.obs.clock import monotonic
from repro.obs.export import (
    chrome_trace_events,
    collapsed_stacks,
    collapsed_totals,
    metrics_snapshot,
    render_metrics,
    to_chrome_trace,
    write_chrome_trace,
    write_flamegraph,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.render import render_span_timeline
from repro.obs.telemetry import (
    CYCLES,
    Counter,
    NOOP_CONTEXT,
    Span,
    Telemetry,
    WALL,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)

__all__ = [
    "CYCLES",
    "Counter",
    "LaneStats",
    "NOOP_CONTEXT",
    "PhaseProfiler",
    "Span",
    "Telemetry",
    "TraceAnalyzer",
    "WALL",
    "chrome_trace_events",
    "collapsed_stacks",
    "collapsed_totals",
    "get_telemetry",
    "metrics_snapshot",
    "monotonic",
    "render_metrics",
    "render_span_timeline",
    "route_recorder",
    "set_telemetry",
    "to_chrome_trace",
    "use_telemetry",
    "write_chrome_trace",
    "write_flamegraph",
]
