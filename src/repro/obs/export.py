"""Trace exporters: Chrome trace-event JSON, flamegraphs, metrics.

``to_chrome_trace`` serializes a :class:`~repro.obs.telemetry.Telemetry`
hub into the Chrome trace-event format (the JSON array flavour with
``B``/``E`` duration pairs, ``i`` instants, ``C`` counters and ``M``
metadata), loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  The two time domains map to two trace processes:

- pid 1 — "system (wall time)": analytic offload spans, seconds
  scaled to microsecond ticks;
- pid 2 — "PULP cluster (cycles)": DES/OpenMP spans, one cycle per
  microsecond tick (the cycle count *is* the timestamp).

``collapsed_stacks`` renders a :class:`~repro.machine.profiler.ProfiledRun`
in the flamegraph collapsed-stack text format (one ``frames count`` line
per stack, consumable by ``flamegraph.pl`` or speedscope).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.telemetry import CYCLES, Span, Telemetry, WALL

#: pid / process name / timestamp scale (to µs ticks) per time domain.
_DOMAIN_PROCESSES = {
    WALL: (1, "system (wall time)", 1e6),
    CYCLES: (2, "PULP cluster (cycles)", 1.0),
}


def _lane_threads(telemetry: Telemetry) -> Dict[Tuple[str, str], int]:
    """Stable (domain, lane) -> tid assignment, per-domain, 1-based."""
    threads: Dict[Tuple[str, str], int] = {}
    next_tid = {domain: 1 for domain in _DOMAIN_PROCESSES}
    for span in telemetry.spans:
        key = (span.domain, span.lane)
        if key not in threads:
            threads[key] = next_tid[span.domain]
            next_tid[span.domain] += 1
    return threads


def _span_args(span: Span) -> Dict[str, object]:
    args = {k: v for k, v in span.attrs.items()}
    if span.energy:
        args["energy_uj"] = span.energy * 1e6
    return args


def _lane_events(spans: List[Span], pid: int, tid: int,
                 scale: float) -> List[dict]:
    """B/E (or instant) events of one lane, in stack discipline.

    Spans of a lane must be sequential or properly nested; a partial
    overlap means the emitter placed spans incorrectly and is an error.
    """
    ordered = sorted(spans, key=lambda s: (s.start, -s.duration, s.span_id))
    events: List[dict] = []
    stack: List[Span] = []

    def epsilon(span: Span) -> float:
        return 1e-9 * max(1.0, abs(span.end))

    def emit_end(span: Span) -> None:
        events.append({"name": span.name, "cat": span.domain, "ph": "E",
                       "ts": span.end * scale, "pid": pid, "tid": tid})

    for span in ordered:
        if span.duration == 0:
            while stack and stack[-1].end <= span.start + epsilon(stack[-1]):
                emit_end(stack.pop())
            events.append({"name": span.name, "cat": span.domain, "ph": "i",
                           "ts": span.start * scale, "pid": pid, "tid": tid,
                           "s": "t", "args": _span_args(span)})
            continue
        while stack:
            top = stack[-1]
            eps = epsilon(top)
            if span.start >= top.end - eps:
                emit_end(stack.pop())        # previous span finished
            elif span.end <= top.end + eps:
                break                        # properly nested under top
            else:
                raise ObservabilityError(
                    f"spans {top.name!r} and {span.name!r} partially "
                    f"overlap on lane {span.lane!r} "
                    f"([{top.start}, {top.end}] vs "
                    f"[{span.start}, {span.end}])")
        events.append({"name": span.name, "cat": span.domain, "ph": "B",
                       "ts": span.start * scale, "pid": pid, "tid": tid,
                       "args": _span_args(span)})
        stack.append(span)
    while stack:
        emit_end(stack.pop())
    return events


def chrome_trace_events(telemetry: Telemetry) -> List[dict]:
    """All trace events (metadata first, then time-ordered)."""
    threads = _lane_threads(telemetry)
    metadata: List[dict] = []
    for domain, (pid, process_name, _) in _DOMAIN_PROCESSES.items():
        if any(d == domain for d, _ in threads):
            metadata.append({"name": "process_name", "ph": "M", "ts": 0,
                             "pid": pid, "tid": 0,
                             "args": {"name": process_name}})
    for (domain, lane), tid in threads.items():
        pid = _DOMAIN_PROCESSES[domain][0]
        metadata.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": pid, "tid": tid, "args": {"name": lane}})

    timed: List[dict] = []
    for (domain, lane), tid in threads.items():
        pid, _, scale = _DOMAIN_PROCESSES[domain]
        spans = [s for s in telemetry.spans
                 if s.lane == lane and s.domain == domain]
        timed.extend(_lane_events(spans, pid, tid, scale))
    for counter in telemetry.counters.values():
        pid, _, scale = _DOMAIN_PROCESSES[counter.domain]
        for ts, value in counter.samples:
            timed.append({"name": counter.name, "cat": "counters",
                          "ph": "C", "ts": ts * scale, "pid": pid, "tid": 0,
                          "args": {"value": value}})
    timed.sort(key=lambda event: event["ts"])     # stable: lane order kept
    return metadata + timed


def to_chrome_trace(telemetry: Telemetry) -> dict:
    """The complete Chrome trace-event JSON object."""
    return {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "domains": {domain: name for domain, (_, name, _)
                        in _DOMAIN_PROCESSES.items()},
        },
    }


def write_chrome_trace(telemetry: Telemetry, path: str) -> None:
    """Write the trace JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(telemetry), handle, indent=1)
        handle.write("\n")


# -- flamegraph -------------------------------------------------------------------


def collapsed_stacks(profiled, root: str = "program") -> str:
    """Collapsed-stack flamegraph text from a per-PC profile.

    One line per program counter: ``root;pc_0007_mac 123`` — the frame
    is the PC plus its opcode mnemonic, the count its attributed cycles.
    """
    return "\n".join(profiled.collapsed(root=root))


def write_flamegraph(profiled, path: str, root: str = "program") -> None:
    """Write collapsed stacks to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        text = collapsed_stacks(profiled, root=root)
        handle.write(text + ("\n" if text else ""))


def collapsed_totals(totals: Dict[str, float], root: str = "profile",
                     scale: float = 1e6) -> str:
    """Collapsed-stack flamegraph text from a ``{path: seconds}`` mapping.

    The dual of :func:`collapsed_stacks` for aggregated phase totals
    (e.g. :attr:`repro.obs.profile.PhaseProfiler.totals_s`): keys may
    carry ``;``-separated frame paths (``"serve;run"``), values are
    scaled to integer sample counts (microseconds by default), and every
    line is rooted under *root* for flamegraph.pl / speedscope.
    """
    lines: List[str] = []
    for name in sorted(totals):
        seconds = totals[name]
        if seconds < 0:
            raise ObservabilityError(
                f"negative phase total {seconds} for {name!r}")
        frames = ";".join(
            fragment.strip().replace(" ", "_")
            for fragment in f"{root};{name}".split(";") if fragment.strip())
        lines.append(f"{frames} {max(1, int(round(seconds * scale)))}")
    return "\n".join(lines)


# -- metrics snapshot -------------------------------------------------------------


def metrics_snapshot(telemetry: Telemetry,
                     extra: Optional[dict] = None) -> dict:
    """A machine-readable snapshot: counters, lanes, phases, energy."""
    from repro.obs.analyzer import TraceAnalyzer

    analyzer = TraceAnalyzer(telemetry)
    snapshot = {
        "counters": {
            name: {"kind": c.kind, "value": c.value, "unit": c.unit,
                   "domain": c.domain}
            for name, c in sorted(telemetry.counters.items())
        },
        "lanes": {
            lane: {"domain": stats.domain, "spans": stats.span_count,
                   "busy": stats.busy, "extent": stats.extent,
                   "utilization": stats.utilization,
                   "energy_j": stats.energy}
            for lane, stats in analyzer.lane_stats().items()
        },
        "phases": analyzer.phase_totals(),
        "energy": {
            "total_j": telemetry.total_energy(),
            "by_phase_j": analyzer.energy_by_phase(),
        },
        "critical_phase": analyzer.critical_phase(),
        "overlap_efficiency": analyzer.overlap_efficiency(),
        "span_count": len(telemetry.spans),
    }
    if extra:
        snapshot.update(extra)
    return snapshot


def render_metrics(snapshot: dict) -> str:
    """Aligned-table rendering of a metrics snapshot."""
    lines: List[str] = []

    def section(title: str) -> None:
        if lines:
            lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    section("lanes")
    lane_width = max([len(name) for name in snapshot["lanes"]] + [4])
    lines.append(f"{'lane':<{lane_width}} {'domain':>7s} {'spans':>6s} "
                 f"{'busy':>12s} {'util':>7s} {'energy':>12s}")
    for lane, stats in snapshot["lanes"].items():
        lines.append(
            f"{lane:<{lane_width}} {stats['domain']:>7s} "
            f"{stats['spans']:>6d} {stats['busy']:>12.6g} "
            f"{stats['utilization']:>7.1%} {stats['energy_j']:>10.4g} J")

    if snapshot["phases"]:
        section("phases (time per phase)")
        name_width = max(len(name) for name in snapshot["phases"])
        for name, value in sorted(snapshot["phases"].items(),
                                  key=lambda item: -item[1]):
            lines.append(f"{name:<{name_width}} {value:>12.6g}")

    if snapshot["counters"]:
        section("counters")
        name_width = max(len(name) for name in snapshot["counters"])
        for name, counter in snapshot["counters"].items():
            unit = f" {counter['unit']}" if counter["unit"] else ""
            lines.append(f"{name:<{name_width}} {counter['value']:>14.6g}"
                         f"{unit} ({counter['kind']})")

    section("summary")
    phase, share = snapshot["critical_phase"]
    lines.append(f"critical phase     : {phase or '(none)'} "
                 f"({share:.1%} of phase time)")
    lines.append(f"overlap efficiency : {snapshot['overlap_efficiency']:.1%}")
    lines.append(f"attributed energy  : "
                 f"{snapshot['energy']['total_j']:.6g} J over "
                 f"{snapshot['span_count']} spans")
    return "\n".join(lines)
