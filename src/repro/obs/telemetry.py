"""The unified telemetry hub: spans and counters for every layer.

One event model replaces the repo's three ad-hoc trace fragments (the
offload Gantt of :mod:`repro.core.trace`, the DES recorder of
:mod:`repro.sim.tracing`, and the per-PC profiler of
:mod:`repro.machine.profiler`).  A :class:`Span` is a named, timed
interval on an actor *lane* (``host``, ``spi``, ``cluster.core2``,
``tcdm.bank5`` ...), optionally hierarchical through ``parent`` and
carrying attributes plus attributed energy in joules.  A
:class:`Counter` is a monotonic count or a gauge with an optional
timestamped sample series.

Spans live in one of two time domains:

- ``wall`` — model seconds, used by the analytic offload/link layer;
- ``cycles`` — cluster clock cycles, used by the DES and OpenMP layers.

The :class:`Telemetry` hub is a no-op when disabled: every emission
method returns immediately after one attribute check — no span or
counter objects are allocated, no dict lookups happen, and
:meth:`Telemetry.timed` hands back one shared do-nothing context
manager — so always-on instrumentation (including the
:mod:`repro.obs.profile` hooks in benchmark hot loops) costs ~nothing
and produces bit-identical results with telemetry off.  A module-level
hub (:func:`get_telemetry`) lets deep call paths emit without parameter
threading; :func:`use_telemetry` installs a hub for a scope.
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs import clock as _clock

#: Time domain of the analytic (seconds-based) layers.
WALL = "wall"
#: Time domain of the cycle-based layers (DES cluster, OpenMP model).
CYCLES = "cycles"

_DOMAINS = (WALL, CYCLES)


@dataclass
class Span:
    """One named interval on an actor lane."""

    span_id: int
    name: str
    lane: str
    start: float
    duration: float
    domain: str = WALL
    parent: Optional[int] = None
    energy: float = 0.0            #: attributed energy, joules
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """End time of the span."""
        return self.start + self.duration

    @property
    def is_idle(self) -> bool:
        """Whether the span marks idle filler time rather than work."""
        return bool(self.attrs.get("idle", False))

    def base_name(self) -> str:
        """Span name with a trailing ``[index]`` stripped (phase key)."""
        if self.name.endswith("]") and "[" in self.name:
            return self.name[:self.name.rindex("[")]
        return self.name


@dataclass
class Counter:
    """A monotonic counter or gauge with an optional sample series."""

    name: str
    kind: str = "monotonic"        #: "monotonic" or "gauge"
    unit: str = ""
    domain: str = WALL
    value: float = 0.0
    samples: List[Tuple[float, float]] = field(default_factory=list)


class _NoopContext:
    """The shared do-nothing context manager of every disabled hub."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


#: One module-wide instance: a disabled hub's ``timed`` (and the
#: disabled :class:`repro.obs.profile.PhaseProfiler`) return this very
#: object, so the fast path allocates nothing per call.
NOOP_CONTEXT = _NoopContext()


class _TimedSpan:
    """Context manager recording a real-elapsed-time span on exit."""

    __slots__ = ("_hub", "_name", "_lane", "_domain", "_clock", "_attrs",
                 "_start")

    def __init__(self, hub: "Telemetry", name: str, lane: str, domain: str,
                 clock, attrs: dict):
        self._hub = hub
        self._name = name
        self._lane = lane
        self._domain = domain
        self._clock = clock
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_TimedSpan":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> bool:
        self._hub.span(self._name, self._lane, self._start,
                       self._clock() - self._start, domain=self._domain,
                       **self._attrs)
        return False


class Telemetry:
    """Collects spans and counters; a no-op while ``enabled`` is False."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: List[Span] = []
        self.counters: Dict[str, Counter] = {}
        self._ids = itertools.count(1)

    # -- emission ---------------------------------------------------------------

    def span(self, name: str, lane: str, start: float, duration: float, *,
             domain: str = WALL, parent: Optional[int] = None,
             energy: float = 0.0, **attrs) -> int:
        """Record one complete span; returns its id (0 when disabled)."""
        if not self.enabled:
            return 0
        if domain not in _DOMAINS:
            raise ObservabilityError(f"unknown time domain {domain!r}")
        if duration < 0:
            raise ObservabilityError(
                f"negative span duration {duration} for {name!r}")
        span_id = next(self._ids)
        self.spans.append(Span(span_id, name, lane, float(start),
                               float(duration), domain, parent,
                               float(energy), dict(attrs)))
        return span_id

    def instant(self, name: str, lane: str, ts: float, *,
                domain: str = WALL, parent: Optional[int] = None,
                **attrs) -> int:
        """Record a zero-duration marker event."""
        return self.span(name, lane, ts, 0.0, domain=domain, parent=parent,
                         **attrs)

    def count(self, name: str, delta: float = 1.0, *,
              ts: Optional[float] = None, unit: str = "",
              domain: str = WALL) -> None:
        """Increment a monotonic counter (negative deltas are rejected)."""
        if not self.enabled:
            return
        if delta < 0:
            raise ObservabilityError(
                f"monotonic counter {name!r} cannot decrease (delta {delta})")
        counter = self._counter(name, "monotonic", unit, domain)
        counter.value += delta
        counter.samples.append((0.0 if ts is None else float(ts),
                                counter.value))

    def gauge(self, name: str, value: float, *, ts: Optional[float] = None,
              unit: str = "", domain: str = WALL) -> None:
        """Set a gauge to an absolute value."""
        if not self.enabled:
            return
        counter = self._counter(name, "gauge", unit, domain)
        counter.value = float(value)
        counter.samples.append((0.0 if ts is None else float(ts),
                                counter.value))

    def _counter(self, name: str, kind: str, unit: str,
                 domain: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = Counter(name, kind, unit, domain)
            self.counters[name] = counter
        elif counter.kind != kind:
            raise ObservabilityError(
                f"counter {name!r} is {counter.kind}, not {kind}")
        return counter

    def timed(self, name: str, lane: str, *, domain: str = WALL,
              clock=None, **attrs):
        """Record a span around a ``with`` block, measured with *clock*
        (default: the shared :func:`repro.obs.clock.monotonic`).

        Unlike :meth:`span`, which records model time computed by the
        caller, this measures real elapsed time — the tool for pricing
        the framework itself (e.g. the DSE engine's evaluation batches).
        On a disabled hub this returns the shared :data:`NOOP_CONTEXT`
        without reading the clock or allocating anything.
        """
        if not self.enabled:
            return NOOP_CONTEXT
        return _TimedSpan(self, name, lane, domain,
                          _clock.monotonic if clock is None else clock,
                          attrs)

    # -- queries ----------------------------------------------------------------

    def clear(self) -> None:
        """Drop all recorded spans and counters."""
        self.spans.clear()
        self.counters.clear()
        self._ids = itertools.count(1)

    def lanes(self, domain: Optional[str] = None) -> List[str]:
        """Lane names in first-emission order, optionally per domain."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            if domain is None or span.domain == domain:
                seen.setdefault(span.lane, None)
        return list(seen)

    def spans_in(self, lane: str) -> List[Span]:
        """Spans of one lane, time-ordered."""
        return sorted((s for s in self.spans if s.lane == lane),
                      key=lambda s: (s.start, s.span_id))

    def leaf_spans(self, domain: Optional[str] = None) -> List[Span]:
        """Spans that are not parents of any other span."""
        parents = {s.parent for s in self.spans if s.parent is not None}
        return [s for s in self.spans if s.span_id not in parents
                and (domain is None or s.domain == domain)]

    def total_energy(self) -> float:
        """Sum of all span-attributed energy, joules."""
        return sum(s.energy for s in self.spans)


# -- the active hub -------------------------------------------------------------

_ACTIVE = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The currently installed hub (disabled by default)."""
    return _ACTIVE


def set_telemetry(hub: Telemetry) -> Telemetry:
    """Install *hub* as the active hub; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = hub
    return previous


@contextlib.contextmanager
def use_telemetry(hub: Telemetry) -> Iterator[Telemetry]:
    """Install *hub* for the duration of a ``with`` block."""
    previous = set_telemetry(hub)
    try:
        yield hub
    finally:
        set_telemetry(previous)
