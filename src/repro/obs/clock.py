"""One monotonic clock for every framework-time measurement.

Model time (seconds computed by the analytic layers, cycles counted by
the DES) is deterministic and never touches this module.  *Framework*
time — how long the tooling itself took: a DSE evaluation batch, a
benchmark repeat, a profiled phase — must come from a single monotonic
clock so the numbers written into ``BENCH_<n>.json`` are comparable
across engines.  ``repro.dse.engine``, :mod:`repro.obs.profile` and
:mod:`repro.bench` all read this clock and nothing else.
"""

from __future__ import annotations

import time

#: Seconds on the process-wide monotonic performance clock.  An alias,
#: not a wrapper, so hot paths pay no extra call; patch this name (or
#: pass ``clock=`` where accepted) to make framework timing
#: deterministic in tests.
monotonic = time.perf_counter
