"""Bridge from the DES :class:`~repro.sim.tracing.TraceRecorder` into
the unified telemetry hub.

DES events become cycle-domain spans on per-core, per-bank and per-DMA
lanes — the cluster-side half of the Perfetto trace, answering "which
DMA burst stalled core 3 during iteration 2".
"""

from __future__ import annotations

from repro.obs.telemetry import CYCLES, Telemetry


def _lane_of(actor: str) -> str:
    if actor.startswith("core"):
        return f"cluster.{actor}"
    if actor.startswith("bank"):
        return f"tcdm.{actor}"
    return actor


def route_recorder(recorder, telemetry: Telemetry) -> int:
    """Route all recorder events into *telemetry* as cycle-domain spans.

    Events with a duration become spans (``stall`` marked idle so it
    never counts as lane-busy time); zero-duration events (barriers)
    become instants.  Returns the number of events routed.
    """
    if not telemetry.enabled:
        return 0
    routed = 0
    for event in sorted(recorder.events, key=lambda e: (e.time, e.actor)):
        lane = _lane_of(event.actor)
        attrs = {"detail": event.detail} if event.detail else {}
        if event.kind == "stall":
            attrs["idle"] = True
        if event.duration > 0:
            telemetry.span(event.kind, lane, event.time, event.duration,
                           domain=CYCLES, **attrs)
        else:
            telemetry.instant(event.kind, lane, event.time,
                              domain=CYCLES, **attrs)
        routed += 1
    telemetry.count("cluster.trace_events", routed, domain=CYCLES)
    if recorder.dropped:
        telemetry.gauge("cluster.trace_events_dropped", recorder.dropped,
                        domain=CYCLES)
    return routed
