"""ASCII rendering over unified telemetry spans.

The repo's original offload Gantt (:mod:`repro.core.trace`) is now one
renderer over the unified event model; this module is the generic one:
per-lane bars for any span set, in either time domain.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ObservabilityError
from repro.obs.telemetry import Telemetry

#: Bar glyph per phase base name; idle spans render as dots.
_PHASE_GLYPHS = {
    "binary": "B",
    "boot": "b",
    "input": "<",
    "output": ">",
    "compute": "#",
    "sync": "|",
    "stall": "x",
    "memory": "m",
    "bank": "m",
    "dma": "d",
    "parallel": "=",
    "serial": "-",
}


def render_span_timeline(telemetry: Telemetry, domain: Optional[str] = None,
                         width: int = 72) -> str:
    """Per-lane ASCII timeline of the hub's leaf spans."""
    if width < 10:
        raise ObservabilityError(f"timeline width too small: {width}")
    leaves = [s for s in telemetry.leaf_spans(domain) if s.duration >= 0]
    if not leaves:
        return "(no spans recorded)"
    start = min(s.start for s in leaves)
    end = max(s.end for s in leaves)
    extent = max(end - start, 1e-30)
    lanes = telemetry.lanes(domain)
    label_width = max(len(lane) for lane in lanes)
    lines: List[str] = []
    for lane in lanes:
        row = [" "] * width
        for span in leaves:
            if span.lane != lane:
                continue
            first = int((span.start - start) / extent * (width - 1))
            last = int((span.end - start) / extent * (width - 1))
            glyph = "." if span.is_idle else _PHASE_GLYPHS.get(
                span.base_name(), "*")
            for column in range(first, max(first, last) + 1):
                row[column] = glyph
        lines.append(f"{lane:<{label_width}} |{''.join(row)}|")
    unit = "s" if (domain or leaves[0].domain) == "wall" else "cycles"
    lines.append(f"{'':<{label_width}}  {start:g} .. {end:g} {unit}, "
                 f"{len(leaves)} spans")
    return "\n".join(lines)
