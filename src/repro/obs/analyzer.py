"""Trace analysis: lane utilization, critical path, overlap efficiency.

The :class:`TraceAnalyzer` answers the schedule questions Figure 5b's
prose argues qualitatively — which lane is the bottleneck, which phase
dominates the critical path, and how much of the serialized work a
double-buffered schedule actually hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.telemetry import Span, Telemetry, WALL


@dataclass(frozen=True)
class LaneStats:
    """Aggregate statistics of one lane."""

    lane: str
    domain: str
    span_count: int
    busy: float             #: union of non-idle span intervals
    extent: float           #: last end minus first start, idle included
    energy: float           #: attributed joules

    @property
    def utilization(self) -> float:
        """Busy time over the lane's extent."""
        if self.extent <= 0:
            return 0.0
        return min(1.0, self.busy / self.extent)


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    return total + (current_end - current_start)


class TraceAnalyzer:
    """Computes derived schedule metrics over a telemetry hub."""

    def __init__(self, telemetry: Telemetry):
        self.telemetry = telemetry

    # -- lanes ------------------------------------------------------------------

    def lane_stats(self, domain: Optional[str] = None
                   ) -> Dict[str, LaneStats]:
        """Per-lane busy/extent/utilization/energy.

        Busy time merges the lane's *leaf, non-idle* span intervals, so
        hierarchical parents (the ``offload`` root, ``period[k]``
        containers) and idle filler (``wait``, ``host-sleep``) do not
        inflate utilization.
        """
        leaves = self.telemetry.leaf_spans(domain)
        by_lane: Dict[str, List[Span]] = {}
        for span in self.telemetry.spans:
            if domain is None or span.domain == domain:
                by_lane.setdefault(span.lane, []).append(span)
        leaf_ids = {s.span_id for s in leaves}
        stats: Dict[str, LaneStats] = {}
        for lane, spans in by_lane.items():
            busy = _merged_length([
                (s.start, s.end) for s in spans
                if s.span_id in leaf_ids and not s.is_idle and s.duration > 0])
            extent = (max(s.end for s in spans)
                      - min(s.start for s in spans))
            stats[lane] = LaneStats(
                lane=lane, domain=spans[0].domain, span_count=len(spans),
                busy=busy, extent=extent,
                energy=sum(s.energy for s in spans))
        return stats

    # -- phases -----------------------------------------------------------------

    def phase_totals(self, domain: str = WALL) -> Dict[str, float]:
        """Total duration per phase (leaf span base name), idle included."""
        totals: Dict[str, float] = {}
        for span in self.telemetry.leaf_spans(domain):
            key = span.base_name()
            totals[key] = totals.get(key, 0.0) + span.duration
        return totals

    def critical_phase(self, domain: str = WALL) -> Tuple[str, float]:
        """The dominant phase and its share of total phase time.

        This is the "where does the time go" headline: ``compute``
        dominating means the schedule is compute-bound, ``input`` /
        ``output`` dominating means "the bandwidth of the SPI link is
        too low" (the paper's Figure 5b regimes).
        """
        totals = self.phase_totals(domain)
        grand_total = sum(totals.values())
        if grand_total <= 0:
            return ("", 0.0)
        name = max(totals, key=lambda key: totals[key])
        return (name, totals[name] / grand_total)

    # -- schedule overlap ---------------------------------------------------------

    def overlap_efficiency(self, domain: str = WALL) -> float:
        """Fraction of serialized work hidden by overlapping lanes.

        ``1 - extent / serial_work`` where ``serial_work`` is the sum of
        all non-idle leaf span durations and ``extent`` the wall-clock
        footprint of the schedule.  A serial schedule scores 0; a
        perfectly double-buffered one approaches the ratio by which
        transfers disappear behind compute.
        """
        leaves = [s for s in self.telemetry.leaf_spans(domain)
                  if not s.is_idle and s.duration > 0]
        if not leaves:
            return 0.0
        serial_work = sum(s.duration for s in leaves)
        extent = max(s.end for s in leaves) - min(s.start for s in leaves)
        if serial_work <= 0:
            return 0.0
        return max(0.0, 1.0 - extent / serial_work)

    # -- energy -----------------------------------------------------------------

    def energy_by_phase(self, domain: Optional[str] = None) -> Dict[str, float]:
        """Attributed joules per phase base name (spans carrying energy)."""
        totals: Dict[str, float] = {}
        for span in self.telemetry.spans:
            if domain is not None and span.domain != domain:
                continue
            if span.energy:
                key = span.base_name()
                totals[key] = totals.get(key, 0.0) + span.energy
        return totals

    def energy_by_lane(self, domain: Optional[str] = None) -> Dict[str, float]:
        """Attributed joules per lane."""
        totals: Dict[str, float] = {}
        for span in self.telemetry.spans:
            if domain is not None and span.domain != domain:
                continue
            if span.energy:
                totals[span.lane] = totals.get(span.lane, 0.0) + span.energy
        return totals
