"""Per-phase profiling hooks over the telemetry hub.

:class:`PhaseProfiler` is the lightweight instrument behind
``repro bench``: a named ``with profiler.phase("serve.run"):`` block
measures real elapsed time on the shared monotonic clock
(:mod:`repro.obs.clock`), accumulates per-phase totals and call counts,
and emits a span onto the backing :class:`~repro.obs.telemetry.Telemetry`
hub so the same data exports as a Chrome trace or flamegraph through
:mod:`repro.obs.export`.

The profiler inherits the hub's disabled fast path: while the hub is
disabled, :meth:`PhaseProfiler.phase` returns the shared
:data:`~repro.obs.telemetry.NOOP_CONTEXT` without reading the clock or
allocating, so hooks can stay in hot loops permanently.  Phase spans
land on one lane (default ``bench``) with start times relative to the
profiler's construction, in the ``wall`` domain; nested ``phase``
blocks nest properly in the exported trace.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import clock as _clock
from repro.obs.telemetry import (
    NOOP_CONTEXT,
    Telemetry,
    WALL,
    get_telemetry,
)


class _Phase:
    """Context manager timing one phase block."""

    __slots__ = ("_profiler", "_name", "_attrs", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str, attrs: dict):
        self._profiler = profiler
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = self._profiler.clock()
        return self

    def __exit__(self, *exc) -> bool:
        self._profiler._finish(self._name, self._start, self._attrs)
        return False


class PhaseProfiler:
    """Accumulates named real-time phases and mirrors them as spans."""

    def __init__(self, hub: Optional[Telemetry] = None, lane: str = "bench",
                 clock=None):
        self.hub = hub if hub is not None else get_telemetry()
        self.lane = lane
        self.clock = _clock.monotonic if clock is None else clock
        #: Accumulated seconds per phase name, insertion-ordered.
        self.totals_s: Dict[str, float] = {}
        #: Number of completed blocks per phase name.
        self.calls: Dict[str, int] = {}
        self._origin = self.clock()

    @property
    def enabled(self) -> bool:
        """Whether phases are being recorded (the hub's switch)."""
        return self.hub.enabled

    def phase(self, name: str, **attrs):
        """A ``with`` block measuring one phase (no-op when disabled)."""
        if not self.hub.enabled:
            return NOOP_CONTEXT
        return _Phase(self, name, attrs)

    def _finish(self, name: str, start: float, attrs: dict) -> None:
        duration = self.clock() - start
        self.totals_s[name] = self.totals_s.get(name, 0.0) + duration
        self.calls[name] = self.calls.get(name, 0) + 1
        self.hub.span(name, self.lane, start - self._origin, duration,
                      domain=WALL, **attrs)
