"""Catalog of the commercial MCUs compared in Figure 3.

Electrical figures are the *typical-range* datasheet values the paper
itself relies on ("the operating points are those listed in the relevant
datasheets, using power from the typical range"):

==============  ==========  ======  =====  =========  =============================
Device          Core        f_max   V_dd   uA/MHz     Reference
==============  ==========  ======  =====  =========  =============================
STM32F407       Cortex-M4   168MHz  3.3V   250        STM32F407xx datasheet [7]
STM32F446       Cortex-M4   180MHz  3.3V   175        STM32F446xx datasheet [8]
NXP LPC1800     Cortex-M3   180MHz  3.3V   180        LPC185x datasheet [9]
EFM32 Giant     Cortex-M3    48MHz  3.3V   211        SiliconLabs EFM32 [10]
MSP430          MSP430 16b   25MHz  3.0V   265        TI MSP430 series [11]
Ambiq Apollo    Cortex-M4    24MHz  3.3V    34        Ambiq Apollo data brief [4]
STM32-L476      Cortex-M4    80MHz  3.0V   100        STM32L476xx datasheet [12]
==============  ==========  ======  =====  =========  =============================

The MSP430 is a 16-bit machine; it is modeled as the M3 cost table with
its ``cycle_scale`` doubled (32-bit arithmetic takes word pairs), which
is the standard first-order treatment.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.isa.costs import cortex_m3_costs
from repro.isa.cortexm import CortexM3Target, CortexM4Target
from repro.isa.target import Target
from repro.mcu.device import McuDevice
from repro.units import mhz, mw, ua_per_mhz


def _msp430_core() -> Target:
    costs = cortex_m3_costs().with_overrides(
        name="msp430-16bit",
        cycle_scale=cortex_m3_costs().cycle_scale * 2.0,
    )
    return Target(costs)


MCU_CATALOG: Tuple[McuDevice, ...] = (
    McuDevice(
        name="STM32F407",
        core=CortexM4Target(), core_name="Cortex-M4",
        fmax=mhz(168), voltage=3.3,
        run_current_density=ua_per_mhz(250),
        base_power=mw(0.5), sleep_power=mw(0.05),
    ),
    McuDevice(
        name="STM32F446",
        core=CortexM4Target(), core_name="Cortex-M4",
        fmax=mhz(180), voltage=3.3,
        run_current_density=ua_per_mhz(175),
        base_power=mw(0.5), sleep_power=mw(0.05),
    ),
    McuDevice(
        name="NXP LPC1800",
        core=CortexM3Target(), core_name="Cortex-M3",
        fmax=mhz(180), voltage=3.3,
        run_current_density=ua_per_mhz(180),
        base_power=mw(0.5), sleep_power=mw(0.05),
    ),
    McuDevice(
        name="EFM32",
        core=CortexM3Target(), core_name="Cortex-M3",
        fmax=mhz(48), voltage=3.3,
        run_current_density=ua_per_mhz(211),
        base_power=mw(0.1), sleep_power=mw(0.002),
    ),
    McuDevice(
        name="MSP430",
        core=_msp430_core(), core_name="MSP430 (16-bit)",
        fmax=mhz(25), voltage=3.0,
        run_current_density=ua_per_mhz(265),
        base_power=mw(0.05), sleep_power=mw(0.001),
    ),
    McuDevice(
        name="Ambiq Apollo",
        core=CortexM4Target(), core_name="Cortex-M4 (subthreshold)",
        fmax=mhz(24), voltage=3.3,
        run_current_density=ua_per_mhz(34),
        base_power=mw(0.02), sleep_power=mw(0.0005),
    ),
    McuDevice(
        name="STM32-L476",
        core=CortexM4Target(), core_name="Cortex-M4",
        fmax=mhz(80), voltage=3.0,
        run_current_density=ua_per_mhz(100),
        base_power=mw(0.1), sleep_power=mw(0.004),
    ),
)

_BY_NAME: Dict[str, McuDevice] = {device.name: device for device in MCU_CATALOG}


def mcu_by_name(name: str) -> McuDevice:
    """Look up a catalog MCU by its exact name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ConfigurationError(f"unknown MCU {name!r}; known: {known}") from None
