"""Host MCU models.

Models the microcontrollers of the paper's evaluation: the STM32-L476
host (Cortex-M4) and the commercial devices of Figure 3 (STM32F407/F446,
NXP LPC1800, SiliconLabs EFM32, TI MSP430, Ambiq Apollo).  Each device
couples a core cycle model (:mod:`repro.isa.cortexm`) with datasheet
operating points (run current density, supply voltage, maximum clock).
"""

from repro.mcu.device import McuDevice, McuExecution
from repro.mcu.catalog import MCU_CATALOG, mcu_by_name
from repro.mcu.stm32l476 import Stm32L476

__all__ = [
    "McuDevice",
    "McuExecution",
    "MCU_CATALOG",
    "mcu_by_name",
    "Stm32L476",
]
