"""The STM32-L476 host microcontroller.

This is the host of the paper's prototype (STM32 Nucleo board).  Beyond
the generic :class:`~repro.mcu.device.McuDevice` electrical/cycle model
it carries the host-side machinery an offload needs:

* the (Q)SPI master whose serial clock is derived from the core clock
  through a power-of-two prescaler — the root cause of the Figure 5b
  plateaus ("the SPI frequency and throughput [are] severely limited by
  the very low frequency at which the MCU is clocked");
* a DMA controller that moves data between memory and the SPI data
  register with a fixed per-transfer setup cost;
* two GPIO event lines (*fetch enable* towards the accelerator, *end of
  computation* back) and a stop-mode sleep with microsecond wakeup used
  while the accelerator computes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mcu.catalog import mcu_by_name
from repro.mcu.device import McuDevice
from repro.units import mhz, us


@dataclass(frozen=True)
class HostTimings:
    """Host-side fixed costs of the offload machinery."""

    #: Cycles to configure SPI + DMA registers for one transfer.
    dma_setup_cycles: float = 120.0
    #: Cycles to raise/lower a GPIO event line.
    gpio_event_cycles: float = 10.0
    #: Wakeup latency from stop mode on the EOC interrupt (seconds).
    sleep_wakeup_time: float = us(12)
    #: Maximum SPI serial clock the pads support (Hz; the L476 QSPI is
    #: specified to 48 MHz).
    spi_max_clock: float = mhz(48)
    #: Smallest supported SPI prescaler (serial clock = f_core / prescaler);
    #: the L476 QSPI baud generator supports running at the AHB clock.
    spi_min_prescaler: int = 1


class Stm32L476:
    """The STM32-L476 host: device model + offload-relevant peripherals."""

    #: MCU frequency of the paper's 10 mW baseline configuration.
    BASELINE_FREQUENCY = mhz(32)

    def __init__(self, device: McuDevice = None, timings: HostTimings = None):
        self.device = device if device is not None else mcu_by_name("STM32-L476")
        self.timings = timings if timings is not None else HostTimings()

    @property
    def name(self) -> str:
        """Device name."""
        return self.device.name

    @property
    def fmax(self) -> float:
        """Maximum core clock."""
        return self.device.fmax

    # -- SPI clocking ---------------------------------------------------------

    def spi_clock(self, core_frequency: float) -> float:
        """Fastest SPI serial clock available at *core_frequency*.

        The L476 SPI baud generator divides the core (APB) clock by a
        power-of-two prescaler >= ``spi_min_prescaler``; the pads cap the
        result at ``spi_max_clock``.
        """
        if core_frequency <= 0:
            raise ConfigurationError(f"non-positive core frequency {core_frequency}")
        prescaler = self.timings.spi_min_prescaler
        clock = core_frequency / prescaler
        while clock > self.timings.spi_max_clock:
            prescaler *= 2
            clock = core_frequency / prescaler
        return clock

    # -- timed host actions -----------------------------------------------------

    def dma_setup_time(self, core_frequency: float) -> float:
        """Time to program SPI+DMA for one transfer."""
        return self.timings.dma_setup_cycles / core_frequency

    def gpio_event_time(self, core_frequency: float) -> float:
        """Time to toggle an event GPIO."""
        return self.timings.gpio_event_cycles / core_frequency

    @property
    def wakeup_time(self) -> float:
        """Stop-mode wakeup latency on the EOC interrupt."""
        return self.timings.sleep_wakeup_time

    # -- power ------------------------------------------------------------------

    def active_power(self, core_frequency: float) -> float:
        """Active-mode power at *core_frequency*."""
        return self.device.active_power(core_frequency)

    @property
    def sleep_power(self) -> float:
        """Stop-mode power while waiting for the accelerator."""
        return self.device.sleep_power


class UntiedSpiHost(Stm32L476):
    """Host variant with the SPI clock untied from the core clock.

    The paper's Section V improvement: a dedicated serial-clock source
    lets the link run at full speed even when the MCU core is slowed to
    free power for the accelerator.  The pads still cap the clock at
    ``spi_max_clock``.
    """

    def __init__(self, serial_clock: float = mhz(24),
                 device: McuDevice = None, timings: HostTimings = None):
        super().__init__(device, timings)
        if serial_clock <= 0:
            raise ConfigurationError(
                f"non-positive untied SPI clock {serial_clock}")
        self.serial_clock = serial_clock

    def spi_clock(self, core_frequency: float) -> float:
        """The fixed serial clock, independent of *core_frequency*."""
        if core_frequency <= 0:
            raise ConfigurationError(
                f"non-positive core frequency {core_frequency}")
        return min(self.serial_clock, self.timings.spi_max_clock)
