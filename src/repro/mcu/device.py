"""Generic low-power MCU device model.

An :class:`McuDevice` is a core cycle model plus datasheet power figures:
run current density (the familiar uA/MHz number), supply voltage, a small
frequency-independent floor (regulators, RAM retention, brown-out
monitors) and a sleep current.  From these it answers the questions the
experiments ask: how long and at what power does this kernel run at
frequency f, and what does the device burn while sleeping during an
offload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.isa.program import Program
from repro.isa.report import LoweredReport
from repro.isa.target import Target


@dataclass(frozen=True)
class McuExecution:
    """Result of running a program on an MCU at a given frequency."""

    device_name: str
    frequency: float
    cycles: float
    time: float
    power: float

    @property
    def energy(self) -> float:
        """Energy of the execution in joules."""
        return self.time * self.power


@dataclass(frozen=True)
class McuDevice:
    """A microcontroller: core model + datasheet electrical figures.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"STM32-L476"``.
    core:
        The ISA target used to lower programs (Cortex-M3 or M4 model).
    core_name:
        Datasheet core designation, for reports (``"Cortex-M4"`` ...).
    fmax:
        Maximum system clock in Hz.
    voltage:
        Supply voltage in volts (typical operating conditions).
    run_current_density:
        Active-mode current in amperes per hertz (from the uA/MHz
        datasheet figure, typical range, executing from flash).
    base_power:
        Frequency-independent active floor in watts.
    sleep_power:
        Power in the low-power wait mode used while the accelerator
        computes (stop mode with RAM retention and fast wakeup).
    """

    name: str
    core: Target
    core_name: str
    fmax: float
    voltage: float
    run_current_density: float
    base_power: float = 0.0
    sleep_power: float = 0.0

    def __post_init__(self) -> None:
        if self.fmax <= 0 or self.voltage <= 0 or self.run_current_density <= 0:
            raise ConfigurationError(f"invalid MCU parameters for {self.name}")
        if self.base_power < 0 or self.sleep_power < 0:
            raise ConfigurationError(f"negative power floor for {self.name}")

    # -- power ---------------------------------------------------------------

    def active_power(self, frequency: float) -> float:
        """Active-mode power at *frequency* (W)."""
        self._check_frequency(frequency)
        return self.voltage * self.run_current_density * frequency + self.base_power

    def max_frequency_within(self, budget: float) -> float:
        """Highest clock whose active power fits *budget* (0 if none)."""
        if budget <= self.base_power:
            return 0.0
        frequency = (budget - self.base_power) / (
            self.voltage * self.run_current_density)
        return min(frequency, self.fmax)

    # -- execution -------------------------------------------------------------

    def lower(self, program: Program) -> LoweredReport:
        """Lower a kernel program onto this device's core."""
        return self.core.lower(program)

    def run(self, program: Program, frequency: Optional[float] = None) -> McuExecution:
        """Execute *program* at *frequency* (defaults to fmax)."""
        frequency = self.fmax if frequency is None else frequency
        self._check_frequency(frequency)
        report = self.lower(program)
        time = report.cycles / frequency
        return McuExecution(
            device_name=self.name,
            frequency=frequency,
            cycles=report.cycles,
            time=time,
            power=self.active_power(frequency),
        )

    def throughput_ops(self, risc_ops: float, program: Program,
                       frequency: Optional[float] = None) -> float:
        """RISC operations per second achieved on *program* (the paper's
        GOPS numerator uses baseline RISC ops, not device instructions)."""
        execution = self.run(program, frequency)
        return risc_ops / execution.time

    def _check_frequency(self, frequency: float) -> None:
        if frequency <= 0:
            raise ConfigurationError(
                f"non-positive frequency {frequency} for {self.name}")
        if frequency > self.fmax * (1 + 1e-9):
            raise ConfigurationError(
                f"{frequency:.3e} Hz exceeds {self.name} fmax {self.fmax:.3e} Hz")
