"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-hierarchies mirror
the subsystem structure (ISA, simulation engine, power model, link,
runtime, kernels).
"""

from __future__ import annotations

import builtins


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class IsaError(ReproError):
    """Problems in the virtual-ISA / program IR layer."""


class LoweringError(IsaError):
    """A program could not be lowered to a concrete target."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""


class Interrupt(SimulationError):
    """Thrown into a process by :meth:`repro.sim.Process.interrupt`.

    Carries the interrupter's ``cause``.  A process that catches it can
    react (e.g. a node abandoning a service when its power budget is
    revoked); one that does not terminates with ``interrupted`` set.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class PowerModelError(ReproError):
    """Errors in operating-point tables or power evaluation."""


class OperatingPointError(PowerModelError):
    """A requested voltage/frequency point is outside the modeled range."""


class BudgetError(PowerModelError):
    """A power budget cannot be met (e.g. baseline host exceeds it)."""


class TimeoutError(ReproError, builtins.TimeoutError):  # noqa: A001 — deliberate builtin shadow
    """An operation exceeded its modeled deadline.

    Raised by the resilient offload runtime when a per-operation wire
    budget is blown or the RUNNING-state watchdog trips (EOC never
    arrived).  Named after the builtin on purpose — and it *subclasses*
    the builtin too, so generic ``except TimeoutError:`` handlers catch
    it while ``except ReproError:`` keeps working at API boundaries.
    Import it qualified (``errors.TimeoutError``) or aliased to avoid
    shadowing.
    """


class FaultInjectionError(ReproError):
    """An injected fault fired and was surfaced to the caller.

    The fault-injection framework raises this at the hook points a real
    system would detect the failure (boot that never came up, STATUS
    replies that never parse).  The resilient driver converts it into a
    recovery-ladder escalation; seeing it escape means the fault was
    configured as unrecoverable or recovery is disabled.
    """


class DegradedExecutionError(ReproError):
    """Offload recovery was exhausted and host fallback is disabled.

    With fallback enabled the runtime would instead return a degraded
    :class:`~repro.core.system.OffloadResult` computed on the host
    (Cortex-M) cost model.
    """


class LinkError(ReproError):
    """Errors in the SPI/QSPI link or the offload wire protocol."""


class ProtocolError(LinkError):
    """Malformed or out-of-sequence offload protocol frames."""


class RuntimeModelError(ReproError):
    """Errors in the OpenMP host/device runtime models."""


class OffloadError(RuntimeModelError):
    """A target offload could not be completed."""


class KernelError(ReproError):
    """Errors in benchmark kernel construction or execution."""


class FixedPointError(ReproError):
    """Invalid fixed-point format or out-of-range conversion."""


class ObservabilityError(ReproError):
    """Errors in the telemetry hub, trace exporters, or analyzers."""


class BenchmarkError(ReproError):
    """A benchmark run, report, or baseline is invalid.

    Raised when a ``BENCH_<n>.json`` document fails schema validation,
    when a suite's deterministic fingerprint drifts between repeats of
    the same pinned workload, or when a comparison is asked of reports
    whose suites cannot be matched up.
    """
