"""repro — a reproduction of "Enabling the Heterogeneous Accelerator
Model on Ultra-Low Power Microcontroller Platforms" (DATE 2016).

The paper couples an STM32-L476 microcontroller with PULP, a
programmable ultra-low-power parallel accelerator, over a (Q)SPI link
and an OpenMP ``target`` offload runtime, demonstrating order-of-
magnitude speedups within a 10 mW system power envelope.  This library
rebuilds the full system as a calibrated simulation/modeling stack (see
DESIGN.md for the substitution inventory).

Top-level entry points:

>>> from repro import HeterogeneousSystem, MatmulKernel, mhz
>>> system = HeterogeneousSystem()
>>> result = system.offload(MatmulKernel("char"), host_frequency=mhz(8))
>>> result.verified
True

The experiment harness lives in :mod:`repro.experiments`; each of the
paper's tables/figures has a ``run()``/``render()`` pair and a benchmark
under ``benchmarks/`` that asserts the published anchors.
"""

from repro.app import Pipeline, Stage
from repro.core import HeterogeneousSystem, OffloadCostModel, PowerEnvelopeSolver
from repro.kernels import (
    CnnKernel,
    HogKernel,
    Kernel,
    MatmulKernel,
    StrassenKernel,
    SvmKernel,
    all_kernels,
    kernel_by_name,
)
from repro.mcu import MCU_CATALOG, Stm32L476, mcu_by_name
from repro.power import ActivityProfile, PulpPowerModel
from repro.pulp import Cluster, PulpSoc
from repro.units import ghz, khz, mhz, mw, uw

__version__ = "1.0.0"

__all__ = [
    "HeterogeneousSystem",
    "OffloadCostModel",
    "PowerEnvelopeSolver",
    "Pipeline",
    "Stage",
    "Kernel",
    "MatmulKernel",
    "StrassenKernel",
    "SvmKernel",
    "CnnKernel",
    "HogKernel",
    "all_kernels",
    "kernel_by_name",
    "Stm32L476",
    "MCU_CATALOG",
    "mcu_by_name",
    "PulpPowerModel",
    "ActivityProfile",
    "PulpSoc",
    "Cluster",
    "khz",
    "mhz",
    "ghz",
    "uw",
    "mw",
    "__version__",
]
