"""SPI / Quad-SPI link timing and power model.

The serial clock is derived from the host core clock (see
:meth:`repro.mcu.stm32l476.Stm32L476.spi_clock`), so lowering the MCU
frequency to free power for the accelerator also slows the link — the
central tension of Figure 5b.  Width is 1 bit per clock for classic SPI
and 4 bits per clock for QSPI ("the QSPI interfaces can be configured in
single or quad mode depending on the required bandwidth").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LinkError
from repro.obs.telemetry import get_telemetry
from repro.units import uw_per_mhz


class SpiMode(enum.Enum):
    """Link width in bits per serial clock."""

    SINGLE = 1
    QUAD = 4


@dataclass(frozen=True)
class SpiTransfer:
    """A fully costed link transfer."""

    payload_bytes: int
    wire_bytes: int
    clock: float
    time: float
    energy: float

    @property
    def throughput(self) -> float:
        """Payload bytes per second achieved."""
        if self.time == 0:
            return 0.0
        return self.payload_bytes / self.time


@dataclass(frozen=True)
class SpiLink:
    """The coupling link between host and accelerator.

    Parameters
    ----------
    mode:
        Single or quad width.
    energy_per_bit:
        Joules per transferred bit, both pad drivers included.
    controller_density:
        Power of the two SPI controllers per hertz of serial clock while
        the link is active (W/Hz).
    frame_overhead_bytes:
        Extra wire bytes per transfer (the protocol header/checksum; see
        :mod:`repro.link.protocol`).
    """

    mode: SpiMode = SpiMode.QUAD
    energy_per_bit: float = 12e-12
    controller_density: float = uw_per_mhz(10)
    frame_overhead_bytes: int = 10

    @property
    def width(self) -> int:
        """Bits moved per serial clock."""
        return self.mode.value

    def throughput(self, clock: float) -> float:
        """Raw payload throughput at *clock*, bytes per second."""
        self._check_clock(clock)
        return clock * self.width / 8.0

    def transfer_time(self, payload_bytes: int, clock: float) -> float:
        """Seconds to move *payload_bytes* (plus framing) at *clock*."""
        return self._wire_bytes(payload_bytes) * 8.0 / (self.width * clock)

    def active_power(self, clock: float) -> float:
        """Power while the link is clocking (W)."""
        self._check_clock(clock)
        bitrate = clock * self.width
        return self.energy_per_bit * bitrate + self.controller_density * clock

    def transfer(self, payload_bytes: int, clock: float) -> SpiTransfer:
        """Cost one transfer completely."""
        self._check_clock(clock)
        wire = self._wire_bytes(payload_bytes)
        time = wire * 8.0 / (self.width * clock)
        energy = time * self.active_power(clock)
        result = SpiTransfer(
            payload_bytes=int(payload_bytes),
            wire_bytes=wire,
            clock=clock,
            time=time,
            energy=energy,
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("spi.transfers", 1, unit="transfers")
            telemetry.count("spi.payload_bytes", result.payload_bytes,
                            unit="bytes")
            telemetry.count("spi.wire_bytes", wire, unit="bytes")
            telemetry.gauge("spi.throughput_bps", result.throughput,
                            unit="B/s")
            telemetry.gauge("spi.clock_hz", clock, unit="Hz")
        return result

    def _wire_bytes(self, payload_bytes: int) -> int:
        if payload_bytes < 0:
            raise LinkError(f"negative payload: {payload_bytes}")
        if payload_bytes == 0:
            return 0
        return int(payload_bytes) + self.frame_overhead_bytes

    @staticmethod
    def _check_clock(clock: float) -> None:
        if clock <= 0:
            raise LinkError(f"non-positive SPI clock: {clock}")
