"""The byte-level offload wire protocol.

The paper builds "a lightweight software abstraction for host (MCU) to
accelerator (PULP) communication" on top of the SPI channel.  This module
defines that abstraction's wire format.  Every transaction is one frame::

    +------+---------+---------+-------------+-------+
    | CMD  | ADDRESS | LENGTH  |   PAYLOAD   | CKSUM |
    | 1 B  |   4 B   |   4 B   | LENGTH B    |  1 B  |
    +------+---------+---------+-------------+-------+

giving 10 bytes of overhead per frame (the default
``frame_overhead_bytes`` of :class:`repro.link.spi.SpiLink`).  The
checksum is a simple additive complement over header and payload.

Commands:

``LOAD_BINARY``  write the kernel binary into accelerator L2;
``WRITE_DATA``   marshal input data into L2 (the OpenMP ``map(to:)``);
``READ_DATA``    read results back (the ``map(from:)``) — the payload of
                 the *request* frame is empty, data returns on the wire;
``START``        set the kernel entry point / trigger boot;
``STATUS``       poll the accelerator state.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ProtocolError

_HEADER = struct.Struct("<BII")

#: Frame overhead: header (9 bytes) + checksum (1 byte).
FRAME_OVERHEAD_BYTES = _HEADER.size + 1


class Command(enum.Enum):
    """Frame command codes."""

    LOAD_BINARY = 0x01
    WRITE_DATA = 0x02
    READ_DATA = 0x03
    START = 0x04
    STATUS = 0x05


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    command: Command
    address: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.address < 2 ** 32:
            raise ProtocolError(f"address out of range: {self.address:#x}")
        if len(self.payload) >= 2 ** 32:
            raise ProtocolError("payload too large")

    @property
    def wire_size(self) -> int:
        """Total bytes on the wire for this frame."""
        return FRAME_OVERHEAD_BYTES + len(self.payload)


def frame_overhead_bytes() -> int:
    """Protocol overhead per frame in bytes."""
    return FRAME_OVERHEAD_BYTES


def _checksum(data: bytes) -> int:
    return (~sum(data)) & 0xFF


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame to wire bytes."""
    header = _HEADER.pack(frame.command.value, frame.address, len(frame.payload))
    body = header + frame.payload
    return body + bytes([_checksum(body)])


def decode_frames(data: bytes) -> List[Frame]:
    """Parse a byte stream into frames, validating checksums.

    Raises :class:`~repro.errors.ProtocolError` on truncated frames,
    unknown commands, or checksum mismatches.
    """
    return list(iter_frames(data))


def iter_frames(data: bytes) -> Iterator[Frame]:
    """Incrementally parse frames out of *data*."""
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < FRAME_OVERHEAD_BYTES:
            raise ProtocolError(
                f"truncated frame header at offset {offset} ({total - offset} bytes left)")
        command_code, address, length = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end + 1 > total:
            raise ProtocolError(
                f"truncated frame payload at offset {offset} "
                f"(need {length} bytes, have {total - offset - _HEADER.size - 1})")
        try:
            command = Command(command_code)
        except ValueError:
            raise ProtocolError(f"unknown command code {command_code:#x}") from None
        body = data[offset:end]
        expected = _checksum(body)
        actual = data[end]
        if actual != expected:
            raise ProtocolError(
                f"checksum mismatch at offset {offset}: "
                f"got {actual:#04x}, expected {expected:#04x}")
        yield Frame(command, address, bytes(data[offset + _HEADER.size:end]))
        offset = end + 1
