"""Link noise and the retransmission protocol.

The system-on-board wiring of the prototype ("simple wires connecting
the dedicated SPI pins of the Nucleo with a set of pins on the
programmable logic") is exactly the kind of link where occasional bit
errors happen.  The frame checksum of :mod:`repro.link.protocol` exists
to catch them; this module supplies the other half of a robust driver:

* :class:`NoisyChannel` — a deterministic bit-error injector (seeded
  LCG; a given seed always corrupts the same bits), used by the failure-
  injection tests;
* :class:`RetransmittingSender` — send/verify/retransmit on top of the
  frame layer, with attempt accounting and a cost model hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import LinkError, ProtocolError
from repro.link.protocol import Frame, decode_frames, encode_frame


class NoisyChannel:
    """Flips each transmitted bit with probability ``bit_error_rate``.

    Deterministic: corruption positions come from a seeded LCG, so every
    failure-injection test is reproducible.  Flip positions are sampled
    *geometrically* (one LCG draw per flip, not per bit): the gap to the
    next flipped bit is ``floor(log(1-u) / log(1-p))``, which makes
    transmitting an N-byte payload O(flips) instead of O(8N) — MB-scale
    fault campaigns stay fast at realistic error rates.
    """

    def __init__(self, bit_error_rate: float = 0.0, seed: int = 1):
        if not 0.0 <= bit_error_rate < 1.0:
            raise LinkError(f"invalid bit error rate {bit_error_rate}")
        self.bit_error_rate = bit_error_rate
        self._state = (seed * 0x9E3779B9 + 1) & 0xFFFFFFFF
        self.bits_transferred = 0
        self.bits_flipped = 0

    def _next_random(self) -> float:
        self._state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        return (self._state >> 8) / float(1 << 24)

    def transmit(self, data: bytes) -> bytes:
        """Pass *data* through the channel, possibly corrupting it."""
        total_bits = 8 * len(data)
        self.bits_transferred += total_bits
        if self.bit_error_rate == 0.0 or total_bits == 0:
            return data
        log_miss = math.log1p(-self.bit_error_rate)
        corrupted: Optional[bytearray] = None
        position = -1
        while True:
            # Geometric gap: number of clean bits before the next flip.
            gap = int(math.log(1.0 - self._next_random()) / log_miss)
            position += 1 + gap
            if position >= total_bits:
                break
            if corrupted is None:
                corrupted = bytearray(data)
            corrupted[position >> 3] ^= 1 << (position & 7)
            self.bits_flipped += 1
        return bytes(corrupted) if corrupted is not None else data

    @property
    def observed_error_rate(self) -> float:
        """Measured bit error rate so far."""
        if self.bits_transferred == 0:
            return 0.0
        return self.bits_flipped / self.bits_transferred


@dataclass
class TransmissionLog:
    """What one reliable frame delivery cost."""

    attempts: int
    wire_bytes: int


class RetransmittingSender:
    """Reliable frame delivery over a noisy channel.

    The receiver-side validation is the checksum check of
    :func:`repro.link.protocol.decode_frames`; a corrupted frame raises,
    the sender retransmits, up to ``max_attempts``.
    """

    def __init__(self, channel: NoisyChannel, max_attempts: int = 8,
                 deliver: Optional[Callable[[Frame], None]] = None):
        if max_attempts < 1:
            raise LinkError(f"max_attempts must be >= 1, got {max_attempts}")
        self.channel = channel
        self.max_attempts = max_attempts
        self.deliver = deliver
        self.log: List[TransmissionLog] = []

    def send(self, frame: Frame) -> Frame:
        """Deliver *frame* reliably; returns the received copy.

        Raises :class:`~repro.errors.LinkError` when ``max_attempts``
        consecutive transmissions are corrupted.
        """
        encoded = encode_frame(frame)
        wire_bytes = 0
        for attempt in range(1, self.max_attempts + 1):
            received = self.channel.transmit(encoded)
            # The host clocks the full frame onto the wire every attempt,
            # whatever mangled form the receiver ends up seeing.
            wire_bytes += len(encoded)
            try:
                frames = decode_frames(received)
            except ProtocolError:
                continue
            if len(frames) != 1:
                # A dropped (zero frames) or duplicated (several frames)
                # delivery is ambiguous at the receiver: discard and
                # retransmit rather than risk executing a frame twice.
                continue
            decoded = frames[0]
            self.log.append(TransmissionLog(attempts=attempt,
                                            wire_bytes=wire_bytes))
            if self.deliver is not None:
                self.deliver(decoded)
            return decoded
        raise LinkError(
            f"frame delivery failed after {self.max_attempts} attempts "
            f"(BER {self.channel.bit_error_rate:g})")

    @property
    def total_attempts(self) -> int:
        """Transmissions performed across all delivered frames."""
        return sum(entry.attempts for entry in self.log)

    @property
    def retransmission_overhead(self) -> float:
        """Extra wire traffic caused by retransmissions (0 = none)."""
        if not self.log:
            return 0.0
        frames = len(self.log)
        return self.total_attempts / frames - 1.0
