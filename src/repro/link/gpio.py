"""GPIO event lines between host and accelerator.

The prototype wires "two additional STM32 GPIOs ... a *fetch enable* used
to trigger execution of the benchmark; and an *end of computation* event
triggered by PULP and used by the STM32 to resume from sleep".  An
:class:`EventLine` is a level-sensitive wire with a tiny propagation
delay and per-edge energy; it also keeps an edge log so tests can assert
the synchronization sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import LinkError


@dataclass
class EventLine:
    """One synchronization wire."""

    name: str
    propagation_delay: float = 50e-9
    energy_per_edge: float = 20e-12
    level: bool = False
    edges: List[Tuple[float, bool]] = field(default_factory=list)

    def raise_event(self, time: float) -> float:
        """Drive the line high at *time*; returns when the far side sees it."""
        return self._drive(time, True)

    def clear_event(self, time: float) -> float:
        """Drive the line low at *time*; returns when the far side sees it."""
        return self._drive(time, False)

    def pulse(self, time: float) -> float:
        """A rising edge immediately followed by a falling one."""
        seen = self.raise_event(time)
        self.clear_event(seen)
        return seen

    def _drive(self, time: float, level: bool) -> float:
        if time < self.last_edge_time:
            raise LinkError(
                f"event line {self.name!r} driven backwards in time "
                f"({time} < {self.last_edge_time})")
        if level == self.level:
            raise LinkError(
                f"event line {self.name!r} already {'high' if level else 'low'}")
        self.level = level
        self.edges.append((time, level))
        return time + self.propagation_delay

    @property
    def last_edge_time(self) -> float:
        """Time of the most recent edge (-inf when never driven)."""
        if not self.edges:
            return float("-inf")
        return self.edges[-1][0]

    @property
    def edge_count(self) -> int:
        """Number of edges driven so far."""
        return len(self.edges)

    @property
    def total_energy(self) -> float:
        """Energy spent toggling the line."""
        return self.edge_count * self.energy_per_edge
