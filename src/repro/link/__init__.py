"""The host-accelerator coupling link.

The paper couples the STM32 and PULP with "a simple SPI or Quad SPI
(QSPI) link ... used both for controlling the accelerator and for data
exchange", plus "a small set of synchronization events (typically
implemented with simple GPIOs)".  This package models all three pieces:

* :class:`~repro.link.spi.SpiLink` — serial clock, width (single/quad),
  throughput, transfer timing and power;
* :class:`~repro.link.gpio.EventLine` — the *fetch enable* and *end of
  computation* wires;
* :mod:`~repro.link.protocol` — the byte-level offload framing (LOAD /
  WRITE / READ / START frames with header and checksum) that the host
  serializes and the accelerator's QSPI slave parses.
"""

from repro.link.gpio import EventLine
from repro.link.protocol import (
    Command,
    Frame,
    decode_frames,
    encode_frame,
    frame_overhead_bytes,
)
from repro.link.spi import SpiLink, SpiMode, SpiTransfer

__all__ = [
    "SpiMode",
    "SpiLink",
    "SpiTransfer",
    "EventLine",
    "Command",
    "Frame",
    "encode_frame",
    "decode_frames",
    "frame_overhead_bytes",
]
