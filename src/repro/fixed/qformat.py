"""Q-format descriptors for fixed-point numbers.

A ``Qm.n`` number stores a real value as a two's-complement integer with
*m* integer bits (excluding the sign bit) and *n* fractional bits.  The
stored integer ``raw`` represents the real value ``raw / 2**n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FixedPointError


@dataclass(frozen=True)
class QFormat:
    """A signed or unsigned fixed-point format.

    Parameters
    ----------
    int_bits:
        Number of integer (non-fractional) bits, excluding the sign bit
        for signed formats.
    frac_bits:
        Number of fractional bits.
    signed:
        Whether values are two's-complement signed.
    """

    int_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise FixedPointError(
                f"negative bit counts in Q{self.int_bits}.{self.frac_bits}"
            )
        if self.width <= 0 or self.width > 64:
            raise FixedPointError(f"unsupported total width {self.width}")

    @property
    def width(self) -> int:
        """Total storage width in bits, including the sign bit."""
        return self.int_bits + self.frac_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> int:
        """The scaling factor ``2**frac_bits``."""
        return 1 << self.frac_bits

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        if self.signed:
            return -(1 << (self.int_bits + self.frac_bits))
        return 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.int_bits + self.frac_bits)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max / self.scale

    @property
    def resolution(self) -> float:
        """The real value of one least-significant bit."""
        return 1.0 / self.scale

    @property
    def storage_bytes(self) -> int:
        """Bytes needed to store one value (rounded up to 1/2/4/8)."""
        for size in (1, 2, 4, 8):
            if self.width <= size * 8:
                return size
        raise FixedPointError(f"no storage size for width {self.width}")

    def __str__(self) -> str:
        sign = "Q" if self.signed else "UQ"
        return f"{sign}{self.int_bits}.{self.frac_bits}"


#: 16-bit signed fraction-only format, the paper's "16-bit fixed point".
Q1_15 = QFormat(0, 15)

#: 32-bit signed fraction-only format.
Q1_31 = QFormat(0, 31)

#: 16-bit format with an 8-bit integer part (used for intermediate SVM data).
Q8_8 = QFormat(7, 8)

#: 32-bit format with a 16-bit integer part, the paper's "32-bit fixed
#: point" used by ``hog`` for its high dynamic range.
Q16_16 = QFormat(15, 16)
