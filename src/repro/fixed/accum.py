"""Software emulation of a 64-bit accumulator on a 32-bit machine.

The paper's ``hog`` kernel needs a very high dynamic range; on the 32-bit
OR10N and Cortex-M targets this forces "SW-emulated 64-bit variables for
accumulation", which is the cause of hog's architectural *slowdown* in
Figure 4.  :class:`Int64Accumulator` reproduces that emulation faithfully:
the accumulator is kept as a (low, high) pair of 32-bit words and every
add performs the explicit carry sequence a 32-bit CPU would execute.

The accumulator also counts the 32-bit primitive operations it performs,
which is what the ISA cost model charges for hog's accumulation.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF
_SIGN32 = 0x80000000


def _to_u32(value: int) -> int:
    return value & _MASK32


def _split64(value: int) -> tuple:
    """Split a signed 64-bit integer into (low, high) unsigned words."""
    u64 = value & 0xFFFFFFFFFFFFFFFF
    return u64 & _MASK32, (u64 >> 32) & _MASK32


class Int64Accumulator:
    """A 64-bit accumulator built from two 32-bit words.

    Each :meth:`add` executes the classic add-with-carry sequence:

    1. ``lo' = lo + add_lo`` (32-bit wrapping add),
    2. ``carry = 1 if lo' < lo else 0`` (unsigned compare),
    3. ``hi' = hi + add_hi + carry`` (two 32-bit adds).

    which costs 4 primitive 32-bit operations per 64-bit add, matching
    the overhead the paper attributes to hog.
    """

    #: 32-bit primitive ops per 64-bit add (add, compare, add, add).
    OPS_PER_ADD = 4

    def __init__(self, initial: int = 0):
        self.lo, self.hi = _split64(int(initial))
        self.primitive_ops = 0

    @property
    def value(self) -> int:
        """The signed 64-bit value currently held."""
        u64 = (self.hi << 32) | self.lo
        if u64 & 0x8000000000000000:
            return u64 - 0x10000000000000000
        return u64

    def add(self, addend: int) -> "Int64Accumulator":
        """Accumulate a signed 64-bit *addend* (wrapping at 64 bits)."""
        add_lo, add_hi = _split64(int(addend))
        new_lo = _to_u32(self.lo + add_lo)
        carry = 1 if new_lo < add_lo else 0
        new_hi = _to_u32(_to_u32(self.hi + add_hi) + carry)
        self.lo, self.hi = new_lo, new_hi
        self.primitive_ops += self.OPS_PER_ADD
        return self

    def add_product32(self, a: int, b: int) -> "Int64Accumulator":
        """Accumulate the full 64-bit product of two signed 32-bit values.

        On a 32-bit machine without a wide multiplier the product itself
        takes a mul-high / mul-low pair; we charge 2 extra primitive ops
        on top of the 64-bit add.
        """
        a = _signed32(a)
        b = _signed32(b)
        self.primitive_ops += 2
        return self.add(a * b)

    def shift_right(self, amount: int) -> int:
        """Arithmetic right shift of the accumulator, returning a signed
        value (costs 3 primitive ops: two shifts plus an or)."""
        self.primitive_ops += 3
        return self.value >> amount

    def reset(self) -> None:
        """Zero the accumulator (op counter is preserved)."""
        self.lo = 0
        self.hi = 0

    def __repr__(self) -> str:
        return f"Int64Accumulator(value={self.value}, ops={self.primitive_ops})"


def _signed32(value: int) -> int:
    """Reinterpret an integer as a signed 32-bit quantity."""
    u32 = value & _MASK32
    if u32 & _SIGN32:
        return u32 - 0x100000000
    return u32
