"""Saturating fixed-point operations on scalars and numpy arrays.

All functions operate on *raw* integer representations (python ints or
``numpy.int64`` arrays) tagged with a :class:`~repro.fixed.qformat.QFormat`.
Intermediate products are computed at 64-bit precision and rounded with
round-half-up before being saturated back into the destination format —
the same discipline the paper's fixed-point C kernels use.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import FixedPointError
from repro.fixed.qformat import QFormat

RawLike = Union[int, np.ndarray]


def saturate(raw: RawLike, fmt: QFormat) -> RawLike:
    """Clamp a raw integer (or array) into the representable range of *fmt*."""
    if isinstance(raw, np.ndarray):
        return np.clip(raw, fmt.raw_min, fmt.raw_max)
    return max(fmt.raw_min, min(fmt.raw_max, int(raw)))


def _rshift_round(value: RawLike, shift: int) -> RawLike:
    """Arithmetic right shift with round-half-up, matching the usual
    ``(x + (1 << (s-1))) >> s`` fixed-point idiom."""
    if shift == 0:
        return value
    if shift < 0:
        raise FixedPointError(f"negative shift {shift}")
    half = 1 << (shift - 1)
    if isinstance(value, np.ndarray):
        return (value + half) >> shift
    return (int(value) + half) >> shift


def fxp_from_float(value, fmt: QFormat) -> RawLike:
    """Quantize a float (or float array) to the raw representation of *fmt*."""
    if isinstance(value, np.ndarray):
        raw = np.rint(value * fmt.scale).astype(np.int64)
        return saturate(raw, fmt)
    return saturate(int(round(float(value) * fmt.scale)), fmt)


def fxp_to_float(raw: RawLike, fmt: QFormat):
    """Convert a raw representation back to float."""
    if isinstance(raw, np.ndarray):
        return raw.astype(np.float64) / fmt.scale
    return float(raw) / fmt.scale


def fxp_add(a: RawLike, b: RawLike, fmt: QFormat) -> RawLike:
    """Saturating addition of two values in the same format."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return saturate(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64), fmt)
    return saturate(int(a) + int(b), fmt)


def fxp_sub(a: RawLike, b: RawLike, fmt: QFormat) -> RawLike:
    """Saturating subtraction of two values in the same format."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return saturate(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64), fmt)
    return saturate(int(a) - int(b), fmt)


def fxp_mul(a: RawLike, b: RawLike, fmt_a: QFormat, fmt_b: QFormat,
            fmt_out: QFormat) -> RawLike:
    """Saturating multiply: ``(a * b)`` renormalized into *fmt_out*.

    The product of a ``Qx.n`` and a ``Qy.m`` value has ``n + m`` fractional
    bits; it is shifted right by ``n + m - fmt_out.frac_bits`` with
    rounding (this is the multiply-shift sequence that, as the paper notes,
    OR10N has no fused instruction for).
    """
    shift = fmt_a.frac_bits + fmt_b.frac_bits - fmt_out.frac_bits
    if shift < 0:
        raise FixedPointError(
            f"output format {fmt_out} has more fractional bits than the product"
        )
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    else:
        product = int(a) * int(b)
    return saturate(_rshift_round(product, shift), fmt_out)


def fxp_mac(acc: RawLike, a: RawLike, b: RawLike, fmt_a: QFormat,
            fmt_b: QFormat, fmt_acc: QFormat) -> RawLike:
    """Multiply-accumulate: ``acc + a * b`` saturated into *fmt_acc*."""
    product = fxp_mul(a, b, fmt_a, fmt_b, fmt_acc)
    return fxp_add(acc, product, fmt_acc)


class FxpArray:
    """A numpy integer array tagged with its :class:`QFormat`.

    This is a thin convenience wrapper used by the benchmark kernels; it
    keeps raw data as ``numpy.int64`` so products never overflow the host
    representation, while saturation enforces the modeled width.
    """

    def __init__(self, raw: np.ndarray, fmt: QFormat):
        raw = np.asarray(raw, dtype=np.int64)
        clipped = saturate(raw, fmt)
        if not np.array_equal(raw, clipped):
            raise FixedPointError(f"raw data out of range for {fmt}")
        self.raw = raw
        self.fmt = fmt

    @classmethod
    def from_float(cls, values: np.ndarray, fmt: QFormat) -> "FxpArray":
        """Quantize a float array into *fmt*."""
        return cls(fxp_from_float(np.asarray(values, dtype=np.float64), fmt), fmt)

    def to_float(self) -> np.ndarray:
        """Dequantize back to ``float64``."""
        return fxp_to_float(self.raw, self.fmt)

    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.raw.shape

    @property
    def size_bytes(self) -> int:
        """Storage footprint at the modeled element width."""
        return int(self.raw.size) * self.fmt.storage_bytes

    def __len__(self) -> int:
        return len(self.raw)

    def __repr__(self) -> str:
        return f"FxpArray(shape={self.raw.shape}, fmt={self.fmt})"

    def add(self, other: "FxpArray") -> "FxpArray":
        """Element-wise saturating addition (formats must match)."""
        self._check_same_format(other)
        return FxpArray(fxp_add(self.raw, other.raw, self.fmt), self.fmt)

    def sub(self, other: "FxpArray") -> "FxpArray":
        """Element-wise saturating subtraction (formats must match)."""
        self._check_same_format(other)
        return FxpArray(fxp_sub(self.raw, other.raw, self.fmt), self.fmt)

    def mul(self, other: "FxpArray", fmt_out: QFormat) -> "FxpArray":
        """Element-wise saturating multiply into *fmt_out*."""
        raw = fxp_mul(self.raw, other.raw, self.fmt, other.fmt, fmt_out)
        return FxpArray(raw, fmt_out)

    def _check_same_format(self, other: "FxpArray") -> None:
        if self.fmt != other.fmt:
            raise FixedPointError(f"format mismatch: {self.fmt} vs {other.fmt}")
