"""Fixed-point arithmetic substrate.

The paper's fixed-point benchmarks (``matmul (fixed)``, all ``svm``
variants, both ``cnn`` variants and ``hog``) use 16-bit and 32-bit
fixed-point data.  This package provides the arithmetic those kernels
need:

* :class:`~repro.fixed.qformat.QFormat` — Qm.n format descriptors;
* :mod:`~repro.fixed.fxp` — saturating scalar and numpy-array operations;
* :class:`~repro.fixed.accum.Int64Accumulator` — software emulation of a
  64-bit accumulator built from 32-bit words, as the paper's ``hog``
  kernel requires on the 32-bit OR10N/Cortex-M targets.
"""

from repro.fixed.accum import Int64Accumulator
from repro.fixed.fxp import (
    FxpArray,
    fxp_add,
    fxp_from_float,
    fxp_mac,
    fxp_mul,
    fxp_sub,
    fxp_to_float,
    saturate,
)
from repro.fixed.qformat import Q1_15, Q1_31, Q8_8, Q16_16, QFormat

__all__ = [
    "QFormat",
    "Q1_15",
    "Q1_31",
    "Q8_8",
    "Q16_16",
    "FxpArray",
    "fxp_from_float",
    "fxp_to_float",
    "fxp_add",
    "fxp_sub",
    "fxp_mul",
    "fxp_mac",
    "saturate",
    "Int64Accumulator",
]
