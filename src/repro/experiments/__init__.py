"""Experiment harness: one module per table/figure of the paper.

Each experiment module exposes a ``run()`` returning plain dataclasses
(rows/series) plus a ``render()`` producing the text table the benchmark
harness prints.  The mapping to the paper:

* :mod:`~repro.experiments.table1` — Table I, the benchmark summary;
* :mod:`~repro.experiments.figure3` — Figure 3, GOPS vs power on matmul
  for PULP and the commercial MCU catalog;
* :mod:`~repro.experiments.figure4` — Figure 4, architectural speedup
  (left) and OpenMP parallel speedup (right);
* :mod:`~repro.experiments.figure5` — Figure 5a (speedup within the
  10 mW envelope) and Figure 5b (efficiency vs iterations per offload,
  serial and double-buffered).
"""

from repro.experiments import figure3, figure4, figure5, table1

__all__ = ["table1", "figure3", "figure4", "figure5"]
