"""Figure 3: energy efficiency on the matmul test, PULP vs MCUs.

"Figure 3 compares throughput in terms of GOPS (billions of RISC
operations per second) and power between PULP and several commercial
MCUs ... on the matmul benchmark."  The paper's anchors: PULP peaks at
304 GOPS/W while consuming 1.48 mW; the MCUs stay below 5 GOPS/W apart
from the Ambiq Apollo (~10 GOPS/W at a low-performance ~24 MOPS point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.baseline import BaselineRiscTarget
from repro.isa.or10n import Or10nTarget
from repro.kernels.matmul import MatmulKernel
from repro.mcu.catalog import MCU_CATALOG
from repro.power.activity import ActivityProfile
from repro.power.pulp_model import PulpPowerModel
from repro.runtime.omp import DeviceOpenMp
from repro.units import format_watts


@dataclass(frozen=True)
class EfficiencyPoint:
    """One (device, operating point) sample of Figure 3."""

    device: str
    kind: str               #: "pulp" or "mcu"
    frequency: float
    voltage: float
    power: float
    gops: float

    @property
    def gops_per_watt(self) -> float:
        """Energy efficiency."""
        if self.power == 0:
            return 0.0
        return self.gops / self.power


@dataclass
class Figure3Result:
    """All samples plus the headline anchors."""

    points: List[EfficiencyPoint]

    @property
    def pulp_points(self) -> List[EfficiencyPoint]:
        """PULP voltage sweep samples."""
        return [p for p in self.points if p.kind == "pulp"]

    @property
    def mcu_points(self) -> List[EfficiencyPoint]:
        """Commercial MCU samples."""
        return [p for p in self.points if p.kind == "mcu"]

    @property
    def pulp_peak(self) -> EfficiencyPoint:
        """PULP's best-efficiency operating point."""
        return max(self.pulp_points, key=lambda p: p.gops_per_watt)

    @property
    def best_mcu(self) -> EfficiencyPoint:
        """Most efficient MCU sample."""
        return max(self.mcu_points, key=lambda p: p.gops_per_watt)

    def efficiency_gap(self) -> float:
        """PULP peak over the best MCU (the paper's ~1.5 orders of
        magnitude efficiency slack)."""
        return self.pulp_peak.gops_per_watt / self.best_mcu.gops_per_watt


def run(threads: int = 4) -> Figure3Result:
    """Compute Figure 3's scatter."""
    kernel = MatmulKernel("char")
    program = kernel.build_program()
    risc_ops = BaselineRiscTarget().risc_ops(program)
    points: List[EfficiencyPoint] = []

    # PULP across its anchored operating points.
    power_model = PulpPowerModel()
    omp = DeviceOpenMp(Or10nTarget(), threads=threads)
    execution = omp.execute(program)
    activity = ActivityProfile.compute(
        cores_active=threads, memory_intensity=execution.memory_intensity)
    for op in power_model.anchored_points():
        time = execution.wall_cycles / op.fmax
        power = power_model.total_power(op.fmax, op.voltage, activity)
        points.append(EfficiencyPoint(
            device="PULP", kind="pulp", frequency=op.fmax,
            voltage=op.voltage, power=power,
            gops=risc_ops / time / 1e9))

    # Commercial MCUs at their datasheet operating points.
    for device in MCU_CATALOG:
        execution_time = device.run(program).time
        points.append(EfficiencyPoint(
            device=device.name, kind="mcu", frequency=device.fmax,
            voltage=device.voltage,
            power=device.active_power(device.fmax),
            gops=risc_ops / execution_time / 1e9))
    return Figure3Result(points=points)


def to_json_dict(result: Optional[Figure3Result] = None) -> dict:
    """Machine-readable Figure 3 (the ``--json`` surface)."""
    if result is None:
        result = run()
    peak = result.pulp_peak
    best = result.best_mcu
    return {
        "experiment": "figure3",
        "points": [
            {
                "device": p.device,
                "kind": p.kind,
                "frequency_hz": p.frequency,
                "voltage_v": p.voltage,
                "power_w": p.power,
                "gops": p.gops,
                "gops_per_watt": p.gops_per_watt,
            }
            for p in result.points
        ],
        "pulp_peak_gops_per_watt": peak.gops_per_watt,
        "pulp_peak_power_w": peak.power,
        "best_mcu": best.device,
        "best_mcu_gops_per_watt": best.gops_per_watt,
        "efficiency_gap": result.efficiency_gap(),
    }


def render(result: Optional[Figure3Result] = None) -> str:
    """Text rendering of the scatter plus the headline anchors."""
    if result is None:
        result = run()
    header = (f"{'Device':14s} {'f':>9s} {'V':>5s} {'Power':>10s} "
              f"{'GOPS':>7s} {'GOPS/W':>8s}")
    lines = [header, "-" * len(header)]
    for p in result.points:
        lines.append(
            f"{p.device:14s} {p.frequency / 1e6:6.0f}MHz {p.voltage:5.2f} "
            f"{format_watts(p.power):>10s} {p.gops:7.3f} "
            f"{p.gops_per_watt:8.1f}")
    peak = result.pulp_peak
    lines.append("")
    lines.append(
        f"PULP peak efficiency: {peak.gops_per_watt:.0f} GOPS/W at "
        f"{format_watts(peak.power)} (paper: 304 GOPS/W at 1.48 mW)")
    lines.append(
        f"best MCU: {result.best_mcu.device} at "
        f"{result.best_mcu.gops_per_watt:.1f} GOPS/W "
        f"(paper: Apollo ~10 GOPS/W); gap {result.efficiency_gap():.0f}x")
    return "\n".join(lines)
