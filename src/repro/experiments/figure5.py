"""Figure 5: speedup within a total 10 mW power envelope.

**5a** — "pure PULP vs STM32 speedup over the baseline (STM32 at
32 MHz) in all combinations, allowing the accelerator to run at the
maximum speed allowed by the available power envelope", bars annotated
with RISC ops/cycle.  Anchors: up to 60x (strassen), more than 25x for
all fixed-point benchmarks, 20x for the worst case (hog).

**5b** — "the efficiency loss due to [the offload] when we consider a
single iteration of the benchmark ... and how this efficiency can be
recovered by increasing the number of benchmark iterations performed per
each offload", including the double-buffered variant.  Anchors: full
efficiency after ~32 iterations when the MCU (and hence the SPI) is
fast; a plateau when the link bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.envelope import (
    FIGURE5A_HOST_FREQUENCIES,
    PowerEnvelopeSolver,
)
from repro.core.offload import OffloadCostModel
from repro.isa.baseline import BaselineRiscTarget
from repro.isa.cortexm import CortexM4Target
from repro.isa.or10n import Or10nTarget
from repro.kernels.base import Kernel
from repro.kernels.registry import all_kernels
from repro.mcu.stm32l476 import Stm32L476
from repro.power.activity import ActivityProfile
from repro.pulp.binary import KernelBinary
from repro.runtime.omp import DeviceOpenMp
from repro.units import mhz

BASELINE_FREQUENCY = Stm32L476.BASELINE_FREQUENCY

#: Host frequencies of the Figure 5b curves.
FIGURE5B_HOST_FREQUENCIES = (mhz(2), mhz(4), mhz(8), mhz(16), mhz(26))
#: Iterations-per-offload sweep.
FIGURE5B_ITERATIONS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


# ---------------------------------------------------------------------------
# Figure 5a
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure5aCell:
    """One (benchmark, host frequency) bar of Figure 5a."""

    kernel: str
    host_frequency: float
    pulp_frequency: float
    pulp_voltage: float
    total_power: float
    speedup: float                 #: PULP vs STM32@32MHz (0 if no budget)
    host_only_speedup: float       #: MCU alone at this frequency vs 32 MHz
    pulp_ops_per_cycle: float      #: RISC ops/cycle annotation (PULP)
    host_ops_per_cycle: float      #: RISC ops/cycle annotation (MCU)
    within_budget: bool


@dataclass
class Figure5aResult:
    """The full benchmark x host-frequency grid."""

    cells: List[Figure5aCell]

    def best_speedup(self, kernel: str) -> float:
        """Best in-budget speedup for one benchmark."""
        values = [c.speedup for c in self.cells
                  if c.kernel == kernel and c.within_budget]
        return max(values, default=0.0)

    def kernels(self) -> List[str]:
        """Benchmark names present."""
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.kernel, None)
        return list(seen)


def run_figure5a(threads: int = 4,
                 host_frequencies: Sequence[float] = FIGURE5A_HOST_FREQUENCIES
                 ) -> Figure5aResult:
    """Compute Figure 5a."""
    solver = PowerEnvelopeSolver()
    or10n = Or10nTarget()
    m4 = CortexM4Target()
    baseline = BaselineRiscTarget()
    omp = DeviceOpenMp(or10n, threads=threads)
    cells: List[Figure5aCell] = []
    for kernel in all_kernels():
        program = kernel.build_program()
        risc_ops = baseline.risc_ops(program)
        execution = omp.execute(program)
        activity = ActivityProfile.compute(
            cores_active=threads,
            memory_intensity=execution.memory_intensity)
        host_cycles = m4.lower(program).cycles
        host_time_baseline = host_cycles / BASELINE_FREQUENCY
        for host_frequency in host_frequencies:
            point = solver.solve(host_frequency, activity)
            if point.accelerator_usable:
                pulp_time = execution.wall_cycles / point.pulp_frequency
                speedup = host_time_baseline / pulp_time
            else:
                speedup = 0.0
            cells.append(Figure5aCell(
                kernel=kernel.name,
                host_frequency=host_frequency,
                pulp_frequency=point.pulp_frequency,
                pulp_voltage=point.pulp_voltage,
                total_power=point.total_power,
                speedup=speedup,
                host_only_speedup=host_frequency / BASELINE_FREQUENCY,
                pulp_ops_per_cycle=risc_ops / execution.wall_cycles,
                host_ops_per_cycle=risc_ops / host_cycles,
                within_budget=point.accelerator_usable,
            ))
    return Figure5aResult(cells=cells)


def figure5a_to_json_dict(result: Optional[Figure5aResult] = None) -> dict:
    """Machine-readable Figure 5a (the ``--json`` surface)."""
    if result is None:
        result = run_figure5a()
    return {
        "experiment": "figure5a",
        "cells": [
            {
                "kernel": c.kernel,
                "host_frequency_hz": c.host_frequency,
                "pulp_frequency_hz": c.pulp_frequency,
                "pulp_voltage_v": c.pulp_voltage,
                "total_power_w": c.total_power,
                "speedup": c.speedup,
                "host_only_speedup": c.host_only_speedup,
                "pulp_ops_per_cycle": c.pulp_ops_per_cycle,
                "host_ops_per_cycle": c.host_ops_per_cycle,
                "within_budget": c.within_budget,
            }
            for c in result.cells
        ],
        "best_speedups": {name: result.best_speedup(name)
                          for name in result.kernels()},
    }


def render_figure5a(result: Optional[Figure5aResult] = None) -> str:
    """Text rendering: one row per benchmark, one column per host clock."""
    if result is None:
        result = run_figure5a()
    frequencies = sorted({c.host_frequency for c in result.cells})
    header = f"{'Benchmark':16s} {'ops/cyc':>8s} |" + "".join(
        f" {f / 1e6:5.0f}MHz" for f in frequencies)
    lines = [header, "-" * len(header)]
    for name in result.kernels():
        row = [c for c in result.cells if c.kernel == name]
        by_frequency = {c.host_frequency: c for c in row}
        annotation = row[0].pulp_ops_per_cycle
        cols = "".join(
            f" {by_frequency[f].speedup:7.1f}x" if by_frequency[f].within_budget
            else f" {'--':>8s}"
            for f in frequencies)
        lines.append(f"{name:16s} {annotation:8.2f} |{cols}")
    lines.append("")
    lines.append(f"best speedups: strassen {result.best_speedup('strassen'):.0f}x "
                 f"(paper 60x), hog {result.best_speedup('hog'):.0f}x (paper 20x)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 5b
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure5bPoint:
    """Efficiency at one (host frequency, iterations, buffering) point."""

    host_frequency: float
    iterations: int
    double_buffered: bool
    efficiency: float
    total_time: float


@dataclass
class Figure5bResult:
    """Efficiency curves for one benchmark."""

    kernel: str
    points: List[Figure5bPoint]

    def curve(self, host_frequency: float,
              double_buffered: bool) -> List[Tuple[int, float]]:
        """(iterations, efficiency) series for one configuration."""
        return [(p.iterations, p.efficiency) for p in self.points
                if p.host_frequency == host_frequency
                and p.double_buffered == double_buffered]

    def plateau(self, host_frequency: float,
                double_buffered: bool = False) -> float:
        """Efficiency at the largest iteration count (the curve's limit)."""
        curve = self.curve(host_frequency, double_buffered)
        return curve[-1][1] if curve else 0.0


def run_figure5b(kernel: Optional[Kernel] = None, threads: int = 4,
                 host_frequencies: Sequence[float] = FIGURE5B_HOST_FREQUENCIES,
                 iteration_counts: Sequence[int] = FIGURE5B_ITERATIONS
                 ) -> Figure5bResult:
    """Compute Figure 5b for one benchmark.

    Defaults to ``cnn``: a vision benchmark with the paper's
    one-frame-per-offload structure whose compute/transfer ratio shows
    both regimes — full efficiency recovery at the fast host clocks and
    the link-bound plateau at the slow ones.  Pass ``MatmulKernel`` for
    a transfer-heavy counterpoint.
    """
    if kernel is None:
        from repro.kernels.cnn import CnnKernel
        kernel = CnnKernel()
    program = kernel.build_program()
    binary = KernelBinary.from_program(program)
    solver = PowerEnvelopeSolver()
    cost_model = OffloadCostModel()
    omp = DeviceOpenMp(Or10nTarget(), threads=threads)
    execution = omp.execute(program)
    activity = ActivityProfile.compute(
        cores_active=threads, memory_intensity=execution.memory_intensity)
    points: List[Figure5bPoint] = []
    for host_frequency in host_frequencies:
        point = solver.solve(host_frequency, activity)
        if not point.accelerator_usable:
            continue
        for double_buffered in (False, True):
            for iterations in iteration_counts:
                timing = cost_model.offload_timing(
                    binary_bytes=binary.image_bytes,
                    input_bytes=program.input_bytes,
                    output_bytes=program.output_bytes,
                    compute_cycles=execution.wall_cycles,
                    pulp_frequency=point.pulp_frequency,
                    pulp_voltage=point.pulp_voltage,
                    activity=activity,
                    host_frequency=host_frequency,
                    iterations=iterations,
                    double_buffered=double_buffered,
                )
                points.append(Figure5bPoint(
                    host_frequency=host_frequency,
                    iterations=iterations,
                    double_buffered=double_buffered,
                    efficiency=timing.efficiency,
                    total_time=timing.total_time,
                ))
    return Figure5bResult(kernel=kernel.name, points=points)


def figure5b_to_json_dict(result: Optional[Figure5bResult] = None) -> dict:
    """Machine-readable Figure 5b (the ``--json`` surface)."""
    if result is None:
        result = run_figure5b()
    return {
        "experiment": "figure5b",
        "kernel": result.kernel,
        "points": [
            {
                "host_frequency_hz": p.host_frequency,
                "iterations": p.iterations,
                "double_buffered": p.double_buffered,
                "efficiency": p.efficiency,
                "total_time_s": p.total_time,
            }
            for p in result.points
        ],
    }


def render_figure5b(result: Optional[Figure5bResult] = None) -> str:
    """Text rendering: one block per buffering mode, rows per host clock."""
    if result is None:
        result = run_figure5b()
    iteration_counts = sorted({p.iterations for p in result.points})
    frequencies = sorted({p.host_frequency for p in result.points})
    lines = [f"Figure 5b efficiency curves for {result.kernel!r}"]
    for double_buffered in (False, True):
        label = "double-buffered" if double_buffered else "serial"
        header = f"{label:>18s} |" + "".join(
            f" {n:>6d}" for n in iteration_counts)
        lines.append("")
        lines.append(header)
        lines.append("-" * len(header))
        for frequency in frequencies:
            curve = dict(result.curve(frequency, double_buffered))
            row = "".join(f" {curve.get(n, 0.0):6.1%}"
                          for n in iteration_counts)
            lines.append(f"{frequency / 1e6:15.0f}MHz |{row}")
    return "\n".join(lines)
