"""Supplementary: the Figure-3 efficiency comparison on *every* kernel.

The paper plots GOPS vs power only for matmul ("a quasi-ideal case for
both parallelization and microarchitectural optimizations").  This grid
extends the comparison to all ten benchmarks: for each kernel, PULP's
best energy efficiency against the best commercial MCU's — showing that
the 1.5-orders-of-magnitude slack is narrowest exactly where the paper's
Figure 4 predicts (hog, where OR10N loses its architectural edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.baseline import BaselineRiscTarget
from repro.isa.or10n import Or10nTarget
from repro.kernels.registry import all_kernels
from repro.mcu.catalog import MCU_CATALOG
from repro.power.activity import ActivityProfile
from repro.power.pulp_model import PulpPowerModel
from repro.runtime.omp import DeviceOpenMp


@dataclass(frozen=True)
class GridRow:
    """Best-efficiency comparison for one kernel."""

    kernel: str
    pulp_gops_per_watt: float
    best_mcu: str
    best_mcu_gops_per_watt: float

    @property
    def efficiency_gap(self) -> float:
        """PULP over the best MCU."""
        if self.best_mcu_gops_per_watt == 0:
            return float("inf")
        return self.pulp_gops_per_watt / self.best_mcu_gops_per_watt


def run(threads: int = 4) -> List[GridRow]:
    """Compute the all-kernel efficiency grid."""
    baseline = BaselineRiscTarget()
    power_model = PulpPowerModel()
    omp = DeviceOpenMp(Or10nTarget(), threads=threads)
    rows: List[GridRow] = []
    for kernel in all_kernels():
        program = kernel.build_program()
        risc_ops = baseline.risc_ops(program)
        execution = omp.execute(program)
        activity = ActivityProfile.compute(
            cores_active=threads,
            memory_intensity=execution.memory_intensity)
        pulp_best = 0.0
        for op in power_model.anchored_points():
            time = execution.wall_cycles / op.fmax
            power = power_model.total_power(op.fmax, op.voltage, activity)
            pulp_best = max(pulp_best, risc_ops / time / 1e9 / power)
        mcu_best_name = ""
        mcu_best = 0.0
        for device in MCU_CATALOG:
            time = device.run(program).time
            power = device.active_power(device.fmax)
            efficiency = risc_ops / time / 1e9 / power
            if efficiency > mcu_best:
                mcu_best = efficiency
                mcu_best_name = device.name
        rows.append(GridRow(
            kernel=kernel.name,
            pulp_gops_per_watt=pulp_best,
            best_mcu=mcu_best_name,
            best_mcu_gops_per_watt=mcu_best))
    return rows


def render(rows: Optional[List[GridRow]] = None) -> str:
    """Text table of the grid."""
    if rows is None:
        rows = run()
    header = (f"{'kernel':16s} {'PULP GOPS/W':>12s} {'best MCU':>14s} "
              f"{'MCU GOPS/W':>11s} {'gap':>6s}")
    lines = ["best energy efficiency per kernel:", header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.kernel:16s} {row.pulp_gops_per_watt:12.0f} "
                     f"{row.best_mcu:>14s} "
                     f"{row.best_mcu_gops_per_watt:11.1f} "
                     f"{row.efficiency_gap:5.0f}x")
    return "\n".join(lines)
