"""Persisting experiment results and diffing runs.

Reproduction hygiene: every experiment's results can be serialized to a
JSON document (dataclasses flatten naturally) and two stored runs can be
diffed with per-metric relative tolerances — the regression-tracking
workflow for anyone modifying the models.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from repro.errors import ConfigurationError

PathLike = Union[str, pathlib.Path]


def _flatten(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _flatten(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _flatten(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_flatten(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [_flatten(item) for item in value]
        return sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, pathlib.PurePath):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value"):  # enums
        return value.value
    raise ConfigurationError(
        f"cannot serialize {type(value).__name__} into a result store")


def save_results(results: Any, path: PathLike,
                 metadata: Optional[Dict[str, Any]] = None) -> None:
    """Serialize experiment *results* (dataclasses/lists/dicts) to JSON."""
    document = {
        "metadata": metadata or {},
        "results": _flatten(results),
    }
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def load_results(path: PathLike) -> Dict[str, Any]:
    """Load a stored run: ``{"metadata": ..., "results": ...}``."""
    document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "results" not in document:
        raise ConfigurationError(f"{path} is not a result store document")
    return document


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One numeric metric that moved between two runs."""

    path: str
    before: float
    after: float

    @property
    def relative_change(self) -> float:
        """(after - before) / |before| (inf when before is 0)."""
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / abs(self.before)


def diff_results(before: Dict[str, Any], after: Dict[str, Any],
                 tolerance: float = 1e-9) -> List[MetricDelta]:
    """All numeric metrics whose relative change exceeds *tolerance*.

    Structural differences (missing keys, type changes) are reported as
    deltas with NaN endpoints so they cannot be silently ignored.
    """
    deltas: List[MetricDelta] = []
    _walk_diff(before.get("results"), after.get("results"), "",
               tolerance, deltas)
    return deltas


def _walk_diff(before: Any, after: Any, path: str, tolerance: float,
               deltas: List[MetricDelta]) -> None:
    nan = float("nan")
    if isinstance(before, dict) and isinstance(after, dict):
        for key in sorted(set(before) | set(after)):
            child = f"{path}.{key}" if path else key
            if key not in before or key not in after:
                deltas.append(MetricDelta(child, nan, nan))
                continue
            _walk_diff(before[key], after[key], child, tolerance, deltas)
        return
    if isinstance(before, list) and isinstance(after, list):
        if len(before) != len(after):
            deltas.append(MetricDelta(f"{path}[len]",
                                      float(len(before)),
                                      float(len(after))))
        for index, (b, a) in enumerate(zip(before, after)):
            _walk_diff(b, a, f"{path}[{index}]", tolerance, deltas)
        return
    if isinstance(before, bool) or isinstance(after, bool):
        if before != after:
            deltas.append(MetricDelta(path, float(before), float(after)))
        return
    if isinstance(before, (int, float)) and isinstance(after, (int, float)):
        if before == after:
            return
        reference = abs(before) if before else 1.0
        if abs(after - before) / reference > tolerance:
            deltas.append(MetricDelta(path, float(before), float(after)))
        return
    if before != after:
        deltas.append(MetricDelta(path, nan, nan))


def render_diff(deltas: List[MetricDelta], limit: int = 30) -> str:
    """Human-readable diff summary."""
    if not deltas:
        return "no metric changes"
    lines = [f"{len(deltas)} metric change(s):"]
    for delta in deltas[:limit]:
        change = delta.relative_change
        if change != change:  # NaN: structural
            lines.append(f"  {delta.path}: structural change")
        else:
            lines.append(f"  {delta.path}: {delta.before:g} -> "
                         f"{delta.after:g} ({change:+.1%})")
    if len(deltas) > limit:
        lines.append(f"  ... and {len(deltas) - limit} more")
    return "\n".join(lines)
