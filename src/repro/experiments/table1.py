"""Table I: summary of the benchmark kernels.

Regenerates, for every kernel: description, field, input size, output
size, binary size and RISC ops — next to the paper-reported values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.baseline import BaselineRiscTarget
from repro.kernels.registry import PAPER_TABLE1, all_kernels
from repro.pulp.binary import KernelBinary
from repro.units import format_bytes


@dataclass(frozen=True)
class Table1Row:
    """One measured row of Table I, with the paper values alongside."""

    name: str
    description: str
    field: str
    input_bytes: int
    output_bytes: int
    binary_bytes: int
    risc_ops: float
    paper_input_bytes: float
    paper_output_bytes: float
    paper_binary_bytes: float
    paper_risc_ops: float

    @property
    def risc_ops_ratio(self) -> float:
        """Measured over paper RISC ops."""
        return self.risc_ops / self.paper_risc_ops


def run() -> List[Table1Row]:
    """Compute Table I."""
    baseline = BaselineRiscTarget()
    rows: List[Table1Row] = []
    for kernel in all_kernels():
        program = kernel.build_program()
        binary = KernelBinary.from_program(program)
        paper_in, paper_out, paper_bin, paper_ops = PAPER_TABLE1[kernel.name]
        rows.append(Table1Row(
            name=kernel.name,
            description=kernel.description,
            field=kernel.field,
            input_bytes=program.input_bytes,
            output_bytes=program.output_bytes,
            binary_bytes=binary.image_bytes,
            risc_ops=baseline.risc_ops(program),
            paper_input_bytes=paper_in * 1024,
            paper_output_bytes=paper_out,
            paper_binary_bytes=paper_bin * 1024,
            paper_risc_ops=paper_ops,
        ))
    return rows


def to_json_dict(rows: Optional[List[Table1Row]] = None) -> dict:
    """Machine-readable Table I (the ``--json`` surface)."""
    if rows is None:
        rows = run()
    return {
        "experiment": "table1",
        "rows": [
            {
                "name": row.name,
                "description": row.description,
                "field": row.field,
                "input_bytes": row.input_bytes,
                "output_bytes": row.output_bytes,
                "binary_bytes": row.binary_bytes,
                "risc_ops": row.risc_ops,
                "paper": {
                    "input_bytes": row.paper_input_bytes,
                    "output_bytes": row.paper_output_bytes,
                    "binary_bytes": row.paper_binary_bytes,
                    "risc_ops": row.paper_risc_ops,
                },
                "risc_ops_ratio": row.risc_ops_ratio,
            }
            for row in rows
        ],
    }


def render(rows: Optional[List[Table1Row]] = None) -> str:
    """Text rendering in the paper's column order (ours vs paper)."""
    if rows is None:
        rows = run()
    header = (f"{'Benchmark':16s} {'Field':18s} {'Input':>9s} {'Output':>9s} "
              f"{'Binary':>9s} {'RISC ops':>9s} | {'paper ops':>9s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:16s} {row.field:18s} "
            f"{format_bytes(row.input_bytes):>9s} "
            f"{format_bytes(row.output_bytes):>9s} "
            f"{format_bytes(row.binary_bytes):>9s} "
            f"{row.risc_ops / 1e6:8.2f}M | {row.paper_risc_ops / 1e6:8.2f}M")
    return "\n".join(lines)
