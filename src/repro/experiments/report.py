"""Full reproduction report: every experiment, rendered as markdown.

``build_report()`` regenerates Table I and Figures 3/4/5a/5b, checks
each headline anchor programmatically, and emits one markdown document
with pass/fail marks — the artifact a reviewer would want.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments import figure3, figure4, figure5, table1
from repro.units import mhz


@dataclass(frozen=True)
class AnchorCheck:
    """One verified paper claim."""

    claim: str
    measured: str
    passed: bool


def _check_table1(rows) -> List[AnchorCheck]:
    by_name = {row.name: row for row in rows}
    checks = []
    for name, tolerance in (("matmul", 0.05), ("strassen", 0.05),
                            ("svm (linear)", 0.08), ("cnn", 0.08)):
        row = by_name[name]
        ratio = row.risc_ops_ratio
        checks.append(AnchorCheck(
            claim=f"Table I: {name} RISC ops = "
                  f"{row.paper_risc_ops / 1e6:.2f}M",
            measured=f"{row.risc_ops / 1e6:.2f}M (x{ratio:.2f})",
            passed=abs(ratio - 1) <= tolerance))
    hog = by_name["hog"]
    checks.append(AnchorCheck(
        claim="Table I: hog RISC ops dominate every other kernel",
        measured=f"{hog.risc_ops / 1e6:.1f}M vs max "
                 f"{max(r.risc_ops for r in rows if r.name != 'hog') / 1e6:.1f}M",
        passed=hog.risc_ops > 5 * max(r.risc_ops for r in rows
                                      if r.name != "hog")))
    return checks


def _check_figure3(result) -> List[AnchorCheck]:
    peak = result.pulp_peak
    return [
        AnchorCheck("Fig 3: PULP peak 304 GOPS/W",
                    f"{peak.gops_per_watt:.0f} GOPS/W",
                    abs(peak.gops_per_watt / 304 - 1) < 0.08),
        AnchorCheck("Fig 3: peak power 1.48 mW",
                    f"{peak.power * 1e3:.2f} mW",
                    abs(peak.power / 1.48e-3 - 1) < 0.08),
        AnchorCheck("Fig 3: MCUs < 5 GOPS/W (except Apollo ~10)",
                    f"best non-Apollo "
                    f"{max(p.gops_per_watt for p in result.mcu_points if p.device != 'Ambiq Apollo'):.1f}",
                    all(p.gops_per_watt < 5 for p in result.mcu_points
                        if p.device != "Ambiq Apollo")),
    ]


def _check_figure4(result) -> List[AnchorCheck]:
    by_name = {r.name: r for r in result.rows}
    integer_ok = all(2.0 <= by_name[n].arch_speedup_vs_m4 <= 2.6
                     for n in ("matmul", "matmul (short)", "strassen"))
    return [
        AnchorCheck("Fig 4: integer tests 2-2.5x vs M4",
                    ", ".join(f"{by_name[n].arch_speedup_vs_m4:.2f}"
                              for n in ("matmul", "matmul (short)",
                                        "strassen")),
                    integer_ok),
        AnchorCheck("Fig 4: hog slight slowdown vs M4",
                    f"{by_name['hog'].arch_speedup_vs_m4:.2f}x",
                    by_name["hog"].arch_speedup_vs_m4 < 1.0),
        AnchorCheck("Fig 4: parallel speedups near-ideal",
                    f"mean {result.mean_parallel_speedup:.2f}x",
                    3.5 < result.mean_parallel_speedup < 4.0),
    ]


def _check_figure5a(result) -> List[AnchorCheck]:
    best = {name: result.best_speedup(name) for name in result.kernels()}
    return [
        AnchorCheck("Fig 5a: strassen up to 60x",
                    f"{best['strassen']:.1f}x",
                    abs(best["strassen"] / 60 - 1) < 0.08),
        AnchorCheck("Fig 5a: fixed-point benchmarks > 25x",
                    f"min {min(best[n] for n in best if 'svm' in n or 'cnn' in n or 'fixed' in n):.1f}x",
                    all(best[n] > 25 for n in best
                        if "svm" in n or "cnn" in n or "fixed" in n)),
        AnchorCheck("Fig 5a: hog worst at ~20x",
                    f"{best['hog']:.1f}x",
                    abs(best["hog"] / 20 - 1) < 0.15),
    ]


def _check_figure5b(result) -> List[AnchorCheck]:
    fast16 = dict(result.curve(mhz(16), False)).get(32, 0.0)
    fast26 = dict(result.curve(mhz(26), False)).get(32, 0.0)
    slow = result.plateau(mhz(2), False)
    return [
        AnchorCheck("Fig 5b: full efficiency by 32 iters at 16/26 MHz",
                    f"{fast16:.0%} / {fast26:.0%}",
                    fast16 > 0.9 and fast26 > 0.9),
        AnchorCheck("Fig 5b: slow-host efficiency plateaus",
                    f"{slow:.0%} at 2 MHz",
                    slow < 0.8),
        AnchorCheck("Fig 5b: double buffering recovers efficiency",
                    f"{result.plateau(mhz(2), True):.0%} overlapped",
                    result.plateau(mhz(2), True) > slow),
    ]


def build_report() -> str:
    """Regenerate everything and render the markdown report."""
    sections: List[Tuple[str, str, List[AnchorCheck]]] = []

    rows = table1.run()
    sections.append(("Table I", table1.render(rows), _check_table1(rows)))
    fig3 = figure3.run()
    sections.append(("Figure 3", figure3.render(fig3), _check_figure3(fig3)))
    fig4 = figure4.run()
    sections.append(("Figure 4", figure4.render(fig4), _check_figure4(fig4)))
    fig5a = figure5.run_figure5a()
    sections.append(("Figure 5a", figure5.render_figure5a(fig5a),
                     _check_figure5a(fig5a)))
    fig5b = figure5.run_figure5b()
    sections.append(("Figure 5b", figure5.render_figure5b(fig5b),
                     _check_figure5b(fig5b)))

    lines = ["# Reproduction report", ""]
    total = passed = 0
    for title, body, checks in sections:
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append("")
        for check in checks:
            total += 1
            passed += check.passed
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"- [{mark}] {check.claim} -> {check.measured}")
        lines.append("")
    lines.insert(2, f"**{passed}/{total} anchors reproduced.**")
    lines.insert(3, "")
    return "\n".join(lines)


def anchor_summary() -> Tuple[int, int]:
    """(passed, total) anchor counts without rendering the report body."""
    report = build_report()
    header = [line for line in report.splitlines() if "anchors" in line][0]
    passed, total = header.split("**")[1].split(" ")[0].split("/")
    return int(passed), int(total)
