"""Sensitivity analysis: how robust are the anchors to the calibration?

DESIGN.md section 4 admits that constants the paper does not print are
synthetic.  This experiment perturbs each calibration knob by a
configurable factor and re-measures the headline anchors, quantifying
which conclusions are calibration-fragile and which are structural.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List

from repro.isa.baseline import BaselineRiscTarget
from repro.isa.cortexm import CortexM4Target
from repro.isa.costs import or10n_costs
from repro.isa.or10n import Or10nTarget
from repro.kernels.matmul import MatmulKernel
from repro.power.activity import ActivityProfile
from repro.power.operating_point import OperatingPoint, OperatingPointTable
from repro.power.pulp_model import (
    PULP3_DENSITIES,
    PULP3_TABLE,
    ComponentDensity,
    PulpPowerModel,
)
from repro.runtime.omp import DeviceOpenMp


@dataclass(frozen=True)
class SensitivityRow:
    """One perturbed configuration and the anchors it produces."""

    knob: str
    factor: float
    peak_efficiency: float      #: GOPS/W (paper: 304)
    arch_speedup: float         #: matmul vs M4 (paper: ~2.4)

    def efficiency_shift(self) -> float:
        """Relative change of peak efficiency vs the paper value."""
        return self.peak_efficiency / 304.0 - 1.0


def _measure(power_model: PulpPowerModel,
             or10n: Or10nTarget) -> Dict[str, float]:
    program = MatmulKernel("char").build_program()
    risc_ops = BaselineRiscTarget().risc_ops(program)
    omp = DeviceOpenMp(or10n, threads=4)
    execution = omp.execute(program)
    activity = ActivityProfile.compute(4, execution.memory_intensity)
    best = 0.0
    for op in power_model.anchored_points():
        time = execution.wall_cycles / op.fmax
        power = power_model.total_power(op.fmax, op.voltage, activity)
        best = max(best, risc_ops / time / 1e9 / power)
    m4_cycles = CortexM4Target().lower(program).cycles
    return {
        "peak_efficiency": best,
        "arch_speedup": m4_cycles / or10n.lower(program).cycles,
    }


def _scaled_densities(factor: float):
    return {component: ComponentDensity(d.idle * factor, d.run * factor,
                                        d.dma * factor)
            for component, d in PULP3_DENSITIES.items()}


def _scaled_leakage(factor: float) -> OperatingPointTable:
    return OperatingPointTable([
        OperatingPoint(p.voltage, p.fmax, p.leakage * factor)
        for p in PULP3_TABLE.points])


def _scaled_simd_overhead(factor: float) -> Or10nTarget:
    base = or10n_costs()
    simd = {dtype: replace(spec, overhead_factor=max(1.0,
                                                     spec.overhead_factor
                                                     * factor))
            for dtype, spec in base.simd.items()}
    return Or10nTarget(base.with_overrides(simd=simd))


def run(factors=(0.8, 1.0, 1.25)) -> List[SensitivityRow]:
    """Perturb each knob by each factor; return the anchor grid."""
    rows: List[SensitivityRow] = []
    knobs: Dict[str, Callable[[float], Dict[str, float]]] = {
        "dynamic densities": lambda f: _measure(
            PulpPowerModel(densities=_scaled_densities(f)), Or10nTarget()),
        "leakage": lambda f: _measure(
            PulpPowerModel(table=_scaled_leakage(f)), Or10nTarget()),
        "simd overhead": lambda f: _measure(
            PulpPowerModel(), _scaled_simd_overhead(f)),
    }
    for knob, evaluate in knobs.items():
        for factor in factors:
            measured = evaluate(factor)
            rows.append(SensitivityRow(
                knob=knob, factor=factor,
                peak_efficiency=measured["peak_efficiency"],
                arch_speedup=measured["arch_speedup"]))
    return rows


def render(rows=None) -> str:
    """Text table of the sensitivity grid."""
    if rows is None:
        rows = run()
    lines = ["calibration sensitivity (paper anchors: 304 GOPS/W, ~2.4x):",
             f"  {'knob':18s} {'factor':>6s} {'GOPS/W':>8s} {'arch x':>7s}"]
    for row in rows:
        lines.append(f"  {row.knob:18s} {row.factor:6.2f} "
                     f"{row.peak_efficiency:8.0f} {row.arch_speedup:7.2f}")
    return "\n".join(lines)
