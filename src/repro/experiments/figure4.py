"""Figure 4: architectural speedup (left) and parallel speedup (right).

Left: cycles of each benchmark on one OR10N core versus a Cortex-M3 and
a Cortex-M4, all with every available microarchitectural optimization
active.  Paper anchors: integer tests 2-2.5x, fixed-point tests lower,
hog a slight *slowdown* versus the M4.

Right: OpenMP speedup of four PULP cores over one, against the ideal 4x;
the gap decomposes into Amdahl non-idealities and the runtime overhead
(paper: 6 % on average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.cortexm import CortexM3Target, CortexM4Target
from repro.isa.or10n import Or10nTarget
from repro.kernels.registry import all_kernels
from repro.runtime.omp import DeviceOpenMp


@dataclass(frozen=True)
class Figure4Row:
    """Both panels' values for one benchmark."""

    name: str
    or10n_cycles: float
    m4_cycles: float
    m3_cycles: float
    parallel_speedup: float
    runtime_overhead: float

    @property
    def arch_speedup_vs_m4(self) -> float:
        """Architectural speedup versus the Cortex-M4."""
        return self.m4_cycles / self.or10n_cycles

    @property
    def arch_speedup_vs_m3(self) -> float:
        """Architectural speedup versus the Cortex-M3."""
        return self.m3_cycles / self.or10n_cycles


@dataclass
class Figure4Result:
    """All rows plus the aggregate the paper quotes."""

    rows: List[Figure4Row]
    threads: int = 4

    @property
    def mean_runtime_overhead(self) -> float:
        """Average OpenMP runtime overhead across benchmarks."""
        return sum(r.runtime_overhead for r in self.rows) / len(self.rows)

    @property
    def mean_parallel_speedup(self) -> float:
        """Average parallel speedup across benchmarks."""
        return sum(r.parallel_speedup for r in self.rows) / len(self.rows)


def run(threads: int = 4) -> Figure4Result:
    """Compute both panels of Figure 4."""
    or10n = Or10nTarget()
    m4 = CortexM4Target()
    m3 = CortexM3Target()
    omp = DeviceOpenMp(or10n, threads=threads)
    rows: List[Figure4Row] = []
    for kernel in all_kernels():
        program = kernel.build_program()
        execution = omp.execute(program)
        rows.append(Figure4Row(
            name=kernel.name,
            or10n_cycles=or10n.lower(program).cycles,
            m4_cycles=m4.lower(program).cycles,
            m3_cycles=m3.lower(program).cycles,
            parallel_speedup=omp.speedup_vs_single(program),
            runtime_overhead=execution.overhead_fraction,
        ))
    return Figure4Result(rows=rows, threads=threads)


def to_json_dict(result: Optional[Figure4Result] = None) -> dict:
    """Machine-readable Figure 4 (the ``--json`` surface)."""
    if result is None:
        result = run()
    return {
        "experiment": "figure4",
        "threads": result.threads,
        "rows": [
            {
                "name": row.name,
                "or10n_cycles": row.or10n_cycles,
                "m4_cycles": row.m4_cycles,
                "m3_cycles": row.m3_cycles,
                "arch_speedup_vs_m4": row.arch_speedup_vs_m4,
                "arch_speedup_vs_m3": row.arch_speedup_vs_m3,
                "parallel_speedup": row.parallel_speedup,
                "runtime_overhead": row.runtime_overhead,
            }
            for row in result.rows
        ],
        "mean_parallel_speedup": result.mean_parallel_speedup,
        "mean_runtime_overhead": result.mean_runtime_overhead,
    }


def render(result: Optional[Figure4Result] = None) -> str:
    """Text rendering of both panels."""
    if result is None:
        result = run()
    header = (f"{'Benchmark':16s} {'vs M4':>6s} {'vs M3':>6s} | "
              f"{'parallel':>8s} {'(ideal':>6s} {'ovh)':>6s}")
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.name:16s} {row.arch_speedup_vs_m4:6.2f} "
            f"{row.arch_speedup_vs_m3:6.2f} | "
            f"{row.parallel_speedup:7.2f}x {result.threads:5d}x "
            f"{row.runtime_overhead:6.1%}")
    lines.append("")
    lines.append(f"mean parallel speedup {result.mean_parallel_speedup:.2f}x, "
                 f"mean OpenMP runtime overhead "
                 f"{result.mean_runtime_overhead:.1%} (paper: 6%)")
    return "\n".join(lines)
