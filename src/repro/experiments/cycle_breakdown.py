"""Cycle breakdown: where each target spends its time, per benchmark.

A drill-down companion to Figure 4: for every kernel and target, the
share of cycles in memory accesses, multiply/accumulate arithmetic,
other ALU work, software-emulated 64-bit operations, and loop control.
It makes the *mechanisms* behind the speedups visible — e.g. hog's wide
ops dominating OR10N but not the M4, or loop overhead vanishing under
hardware loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.cortexm import CortexM3Target, CortexM4Target
from repro.isa.or10n import Or10nTarget
from repro.isa.target import Target
from repro.isa.vop import OpKind
from repro.kernels.registry import all_kernels

#: Cycle categories and the op kinds they aggregate.
CATEGORIES: Dict[str, tuple] = {
    "memory": (OpKind.LOAD.value, OpKind.STORE.value),
    "mul/mac": (OpKind.MUL.value, OpKind.MAC.value),
    "wide64": (OpKind.MUL64.value, OpKind.ADD64.value,
               OpKind.MAC64.value, OpKind.SHIFT64.value),
    "loop": ("loop_overhead", "loop_setup"),
}


@dataclass(frozen=True)
class BreakdownRow:
    """Cycle shares of one (kernel, target) pair."""

    kernel: str
    target: str
    total_cycles: float
    shares: Dict[str, float]    #: category -> fraction of cycles

    def share(self, category: str) -> float:
        """One category's fraction (0 if absent)."""
        return self.shares.get(category, 0.0)


def _categorize(cycles_by_kind: Dict[str, float],
                total: float) -> Dict[str, float]:
    shares: Dict[str, float] = {}
    accounted = 0.0
    for category, keys in CATEGORIES.items():
        value = sum(cycles_by_kind.get(key, 0.0) for key in keys)
        shares[category] = value / total if total else 0.0
        accounted += value
    shares["other-alu"] = max(0.0, (total - accounted) / total) if total else 0.0
    return shares


def run(targets: Optional[Dict[str, Target]] = None) -> List[BreakdownRow]:
    """Compute the breakdown grid."""
    if targets is None:
        targets = {
            "or10n": Or10nTarget(),
            "cortex-m4": CortexM4Target(),
            "cortex-m3": CortexM3Target(),
        }
    rows: List[BreakdownRow] = []
    for kernel in all_kernels():
        program = kernel.build_program()
        for name, target in targets.items():
            report = target.lower(program)
            rows.append(BreakdownRow(
                kernel=kernel.name,
                target=name,
                total_cycles=report.cycles,
                shares=_categorize(report.cycles_by_kind, report.cycles)))
    return rows


def render(rows: Optional[List[BreakdownRow]] = None,
           target: str = "or10n") -> str:
    """Text table for one target."""
    if rows is None:
        rows = run()
    selected = [row for row in rows if row.target == target]
    categories = list(CATEGORIES) + ["other-alu"]
    header = f"{'kernel':16s} {'cycles':>12s} |" + "".join(
        f" {c:>9s}" for c in categories)
    lines = [f"cycle breakdown on {target}:", header, "-" * len(header)]
    for row in selected:
        cells = "".join(f" {row.share(c):9.1%}" for c in categories)
        lines.append(f"{row.kernel:16s} {row.total_cycles:12,.0f} |{cells}")
    return "\n".join(lines)
