"""The virtual micro-operation (VOp) vocabulary.

A :class:`VOp` is one abstract operation executed per loop iteration of a
kernel's inner body — close to what a compiler sees after address-code
generation but before target lowering.  Targets decide how many machine
instructions and cycles each VOp costs (and whether a vectorizable loop
containing it can be SIMD-packed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import IsaError


class OpKind(enum.Enum):
    """Abstract operation kinds understood by all targets."""

    LOAD = "load"            #: memory read of one element (or one vector)
    STORE = "store"          #: memory write of one element (or one vector)
    ADD = "add"              #: integer add/sub-like ALU op
    SUB = "sub"
    MUL = "mul"              #: integer multiply (low part)
    MAC = "mac"              #: multiply-accumulate (fusable on OR10N/M4)
    SHIFT = "shift"          #: shift (incl. fixed-point renormalization)
    LOGIC = "logic"          #: and/or/xor
    CMP = "cmp"              #: compare / set-flag
    SELECT = "select"        #: conditional select / saturation clamp
    ABS = "abs"
    MINMAX = "minmax"        #: min or max
    MOVE = "move"            #: register move / immediate load
    ADDR = "addr"            #: address/induction update (foldable into LS)
    MUL64 = "mul64"          #: 32x32 -> 64-bit multiply
    ADD64 = "add64"          #: 64-bit accumulate on a 32-bit datapath
    MAC64 = "mac64"          #: 32x32 + 64 -> 64-bit multiply-accumulate
    SHIFT64 = "shift64"      #: 64-bit shift
    DIV = "div"              #: integer division
    BRANCH = "branch"        #: data-dependent branch inside a body


class DType(enum.Enum):
    """Element data types (fixed-point formats map onto the integer widths)."""

    I8 = 8
    I16 = 16
    I32 = 32

    @property
    def bits(self) -> int:
        """Element width in bits."""
        return self.value

    @property
    def bytes(self) -> int:
        """Element width in bytes."""
        return self.value // 8


#: Op kinds that touch memory.
MEMORY_KINDS = frozenset({OpKind.LOAD, OpKind.STORE})

#: Op kinds that operate on 64-bit software-emulated values.
WIDE_KINDS = frozenset({OpKind.MUL64, OpKind.ADD64, OpKind.MAC64, OpKind.SHIFT64})


@dataclass(frozen=True)
class VOp:
    """One abstract operation, possibly repeated ``count`` times per iteration.

    Parameters
    ----------
    kind:
        The abstract operation.
    dtype:
        Element type the op works on; drives SIMD lane width.
    count:
        Repetitions per loop iteration (may be fractional for costs
        amortized over several iterations, e.g. a spill every 4th pass).
    vector:
        Whether the op applies element-wise along a vectorizable loop and
        therefore packs into one SIMD instruction per vector iteration.
        ``vector=False`` ops are per-element and get replicated when the
        surrounding loop is vectorized.
    unaligned:
        For memory ops: the access may be misaligned once vectorized.
    foldable:
        For :attr:`OpKind.ADDR` ops: the update can be folded into a
        post-increment addressing mode on targets that have one.
    """

    kind: OpKind
    dtype: DType = DType.I32
    count: float = 1.0
    vector: bool = True
    unaligned: bool = False
    foldable: bool = True

    def __post_init__(self) -> None:
        if self.count < 0:
            raise IsaError(f"negative op count: {self.count}")
        if self.unaligned and self.kind not in MEMORY_KINDS:
            raise IsaError(f"unaligned flag only valid on memory ops, got {self.kind}")

    def scaled(self, factor: float) -> "VOp":
        """A copy with ``count`` multiplied by *factor*."""
        return replace(self, count=self.count * factor)

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.kind in MEMORY_KINDS

    @property
    def is_wide(self) -> bool:
        """True for 64-bit software-emulated operations."""
        return self.kind in WIDE_KINDS


# ---------------------------------------------------------------------------
# Convenience constructors used throughout the kernel definitions
# ---------------------------------------------------------------------------


def load(dtype: DType = DType.I32, count: float = 1.0, *, vector: bool = True,
         unaligned: bool = False) -> VOp:
    """A memory load."""
    return VOp(OpKind.LOAD, dtype, count, vector=vector, unaligned=unaligned)


def store(dtype: DType = DType.I32, count: float = 1.0, *, vector: bool = True,
          unaligned: bool = False) -> VOp:
    """A memory store."""
    return VOp(OpKind.STORE, dtype, count, vector=vector, unaligned=unaligned)


def alu(kind: OpKind, dtype: DType = DType.I32, count: float = 1.0, *,
        vector: bool = True) -> VOp:
    """A generic ALU op of the given *kind*."""
    return VOp(kind, dtype, count, vector=vector)


def mac(dtype: DType = DType.I32, count: float = 1.0, *, vector: bool = True) -> VOp:
    """An integer multiply-accumulate."""
    return VOp(OpKind.MAC, dtype, count, vector=vector)


def addr(count: float = 1.0, *, foldable: bool = True) -> VOp:
    """An address/induction update."""
    return VOp(OpKind.ADDR, DType.I32, count, vector=True, foldable=foldable)
