"""Loop-nest program IR.

A :class:`Program` is a named tree of :class:`Loop` and :class:`Block`
nodes.  It is the single description of a kernel's computation from which
every target derives executed instructions and cycles, the Table-I RISC-op
count is computed, and the OpenMP model derives per-thread work.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple, Union

from repro.errors import IsaError
from repro.isa.vop import DType, VOp

Node = Union["Block", "Loop"]


@dataclass(frozen=True)
class Block:
    """Straight-line code: a bag of VOps executed once per entry."""

    ops: Tuple[VOp, ...]

    def __init__(self, ops):
        object.__setattr__(self, "ops", tuple(ops))

    def total_count(self) -> float:
        """Sum of op counts in the block."""
        return sum(op.count for op in self.ops)


@dataclass(frozen=True)
class Loop:
    """A counted loop.

    Parameters
    ----------
    trips:
        Iteration count (must be >= 0; zero-trip loops cost only setup).
    body:
        Child nodes executed once per iteration.
    vectorizable:
        Iterations apply the same ops to contiguous elements, so a SIMD
        target may pack ``lanes`` iterations into one.
    simd_dtype:
        Element type that determines the SIMD lane count when the loop is
        vectorized (defaults to I32, i.e. no packing).
    parallelizable:
        The loop is an OpenMP ``for`` candidate: iterations are
        independent and may be split across threads.
    reduction:
        If parallelized, threads produce partial results that must be
        combined (adds an O(threads) combine cost in the OpenMP model).
    name:
        Diagnostic label.
    """

    trips: int
    body: Tuple[Node, ...]
    vectorizable: bool = False
    simd_dtype: DType = DType.I32
    parallelizable: bool = False
    reduction: bool = False
    name: str = ""

    def __init__(self, trips, body, vectorizable=False, simd_dtype=DType.I32,
                 parallelizable=False, reduction=False, name=""):
        if trips < 0:
            raise IsaError(f"negative trip count: {trips}")
        object.__setattr__(self, "trips", int(trips))
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "vectorizable", bool(vectorizable))
        object.__setattr__(self, "simd_dtype", simd_dtype)
        object.__setattr__(self, "parallelizable", bool(parallelizable))
        object.__setattr__(self, "reduction", bool(reduction))
        object.__setattr__(self, "name", name)

    def with_trips(self, trips: int) -> "Loop":
        """A copy of the loop with a different trip count (used by the
        OpenMP model to carve per-thread chunks)."""
        return dataclasses.replace(self, trips=int(trips))

    def chunk_bounds(self, core: int, cores: int) -> Tuple[int, int]:
        """Half-open iteration range ``[start, stop)`` of *core* under
        the OpenMP static schedule (larger chunks go to the lowest core
        ids, matching :func:`repro.pulp.timing.chunk_trips`).

        This is the ground truth the SPMD analyzer's per-core register
        presets encode; exposing it here keeps the runtime, the DES
        streams and the static concurrency model on one schedule.
        """
        if not 0 <= core < cores:
            raise IsaError(f"core {core} outside 0..{cores - 1}")
        base, extra = divmod(self.trips, cores)
        start = core * base + min(core, extra)
        return start, start + base + (1 if core < extra else 0)

    def depth(self) -> int:
        """Nesting depth below this loop (1 for an innermost loop)."""
        child_depths = [node.depth() for node in self.body if isinstance(node, Loop)]
        return 1 + (max(child_depths) if child_depths else 0)


@dataclass(frozen=True)
class Program:
    """A named loop-nest program plus data-footprint metadata.

    ``input_bytes``/``output_bytes`` are the amounts marshalled over the
    host-accelerator link per kernel invocation; ``const_bytes`` are
    read-only tables shipped inside the binary (models, weights, LUTs);
    ``buffer_bytes`` are scratch/bss buffers counted in the binary image.
    """

    name: str
    body: Tuple[Node, ...]
    input_bytes: int = 0
    output_bytes: int = 0
    const_bytes: int = 0
    buffer_bytes: int = 0

    def __init__(self, name, body, input_bytes=0, output_bytes=0,
                 const_bytes=0, buffer_bytes=0):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "input_bytes", int(input_bytes))
        object.__setattr__(self, "output_bytes", int(output_bytes))
        object.__setattr__(self, "const_bytes", int(const_bytes))
        object.__setattr__(self, "buffer_bytes", int(buffer_bytes))

    # -- traversal ----------------------------------------------------------

    def walk(self) -> Iterator[Node]:
        """Pre-order traversal of every node in the program."""
        yield from _walk_nodes(self.body)

    def loops(self) -> Iterator[Loop]:
        """All loops, pre-order."""
        for node in self.walk():
            if isinstance(node, Loop):
                yield node

    def parallel_loops(self) -> List[Loop]:
        """Top-level parallelizable loops (OpenMP ``for`` candidates).

        Only loops at the outermost level are considered: the paper's
        kernels parallelize a single outer loop per phase.
        """
        return [node for node in self.body
                if isinstance(node, Loop) and node.parallelizable]

    def parallel_region_metadata(self, cores: int = 4) -> List[dict]:
        """Core-id/parallel-region metadata for SPMD analysis.

        One dict per top-level parallelizable loop, in program order:
        region index, loop name, trip count, reduction flag, and the
        static-schedule ``chunks`` (per-core half-open iteration
        bounds).  The concurrency analyzer and the learned-scheduler
        feature export consume this instead of re-deriving schedules.
        """
        regions: List[dict] = []
        for loop in self.parallel_loops():
            regions.append({
                "region": len(regions),
                "name": loop.name,
                "trips": loop.trips,
                "reduction": loop.reduction,
                "chunks": [loop.chunk_bounds(core, cores)
                           for core in range(cores)],
            })
        return regions

    # -- aggregate op counting ----------------------------------------------

    def dynamic_op_counts(self) -> dict:
        """Dynamic (executed) VOp counts per kind, ignoring loop overhead.

        This is the *architecture-independent* work metric used by tests
        and by workload characterization; targets add their own overheads.
        """
        counts: dict = {}
        _accumulate_ops(self.body, 1.0, counts)
        return counts

    def total_dynamic_ops(self) -> float:
        """Total executed VOps (again without loop/branch overhead)."""
        return sum(self.dynamic_op_counts().values())

    def static_instruction_estimate(self) -> int:
        """Rough static code size in instructions: each VOp appears once,
        each loop adds a small amount of control code."""
        ops = 0
        loops = 0
        for node in self.walk():
            if isinstance(node, Block):
                ops += len(node.ops)
            else:
                loops += 1
        return ops + 4 * loops + 16  # prologue/epilogue

    def map_loops(self, fn: Callable[[Loop], Optional[Loop]]) -> "Program":
        """Structurally rebuild the program, replacing each loop with
        ``fn(loop)`` (return ``None`` to keep the original)."""
        return dataclasses.replace(self, body=_map_nodes(self.body, fn))


def _walk_nodes(nodes) -> Iterator[Node]:
    for node in nodes:
        yield node
        if isinstance(node, Loop):
            yield from _walk_nodes(node.body)


def _accumulate_ops(nodes, multiplier: float, counts: dict) -> None:
    for node in nodes:
        if isinstance(node, Block):
            for op in node.ops:
                counts[op.kind] = counts.get(op.kind, 0.0) + op.count * multiplier
        else:
            _accumulate_ops(node.body, multiplier * node.trips, counts)


def _map_nodes(nodes, fn) -> Tuple[Node, ...]:
    result = []
    for node in nodes:
        if isinstance(node, Loop):
            replacement = fn(node)
            if replacement is None:
                replacement = node
            replacement = dataclasses.replace(
                replacement, body=_map_nodes(replacement.body, fn))
            result.append(replacement)
        else:
            result.append(node)
    return tuple(result)
