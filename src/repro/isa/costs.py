"""Per-target cost tables.

Each target is parameterized by a :class:`TargetCosts` table: cycles and
machine instructions per VOp kind, loop-control costs, addressing-mode and
hardware-loop capabilities, and SIMD lane specifications.

The numeric values are *calibration parameters*.  They start from the
published microarchitectural facts (e.g. single-cycle ``MLA`` on the
Cortex-M4 vs two cycles on the M3, single-cycle TCDM loads on OR10N,
``UMLAL``-style native 64-bit accumulation on the M-series vs software
emulation on OR10N) and are tuned, as documented in DESIGN.md §4, so the
resulting *ratios* reproduce the paper's Figure 4 / Table I anchors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping

from repro.errors import ConfigurationError
from repro.isa.vop import DType, OpKind


@dataclass(frozen=True)
class SimdSpec:
    """SIMD capability for one element type.

    ``lanes`` iterations of a vectorizable loop pack into one pass whose
    body cycles are multiplied by ``overhead_factor`` (>= 1).  The factor
    models everything that keeps sub-word SIMD away from its ideal
    speedup: pack/unpack sequences, widening of products that do not fit
    the lane width (e.g. char x char products need 16 bits), horizontal
    reductions and occasional strided operands.
    """

    lanes: int
    overhead_factor: float = 1.0
    extra_cycles_per_iter: float = 0.0
    extra_instructions_per_iter: float = 0.0
    #: Overhead factor for loops whose vector ops contain no multiply:
    #: pure add/logic lanes never widen, so sub-word SIMD packs almost
    #: ideally there (used by strassen's submatrix addition passes).
    pure_alu_overhead: float = None

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigurationError(f"lanes must be >= 1, got {self.lanes}")
        if self.overhead_factor < 1.0:
            raise ConfigurationError(
                f"overhead factor must be >= 1, got {self.overhead_factor}")
        if self.pure_alu_overhead is not None and self.pure_alu_overhead < 1.0:
            raise ConfigurationError(
                f"pure-ALU overhead must be >= 1, got {self.pure_alu_overhead}")

    @property
    def net_speedup(self) -> float:
        """Effective speedup over scalar execution of the loop body."""
        return self.lanes / self.overhead_factor


#: Op kinds a SIMD unit can pack (SHIFT is deliberately absent: neither
#: OR10N nor the M-series has a vector fixed-point renormalization, which
#: is exactly why the paper's fixed-point kernels cannot exploit SIMD).
DEFAULT_SIMD_KINDS: FrozenSet[OpKind] = frozenset({
    OpKind.LOAD, OpKind.STORE, OpKind.ADD, OpKind.SUB, OpKind.MUL,
    OpKind.MAC, OpKind.LOGIC, OpKind.CMP, OpKind.SELECT, OpKind.ABS,
    OpKind.MINMAX, OpKind.MOVE,
})


@dataclass(frozen=True)
class TargetCosts:
    """Complete cost table for one target."""

    name: str
    op_cycles: Mapping[OpKind, float]
    op_instructions: Mapping[OpKind, float]
    loop_iter_cycles: float
    loop_iter_instructions: float
    loop_setup_cycles: float
    hardware_loops: int = 0
    hwloop_setup_cycles: float = 0.0
    addr_folded: bool = False
    unaligned_penalty_cycles: float = 0.0
    unaligned_penalty_instructions: float = 0.0
    simd: Mapping[DType, SimdSpec] = field(default_factory=dict)
    simd_kinds: FrozenSet[OpKind] = DEFAULT_SIMD_KINDS
    #: Multiplier on total cycles modeling instruction-fetch stalls.  The
    #: MCU hosts execute from embedded flash with wait states (the ART
    #: cache hides only part of them), while PULP fetches from its shared
    #: I$ backed by on-chip SRAM; this factor captures that difference.
    cycle_scale: float = 1.0

    def cycles_for(self, kind: OpKind) -> float:
        """Cycles for one instance of *kind*."""
        try:
            return self.op_cycles[kind]
        except KeyError:
            raise ConfigurationError(
                f"target {self.name!r} has no cycle cost for {kind}") from None

    def instructions_for(self, kind: OpKind) -> float:
        """Machine instructions for one instance of *kind*."""
        try:
            return self.op_instructions[kind]
        except KeyError:
            raise ConfigurationError(
                f"target {self.name!r} has no instruction cost for {kind}") from None

    def with_overrides(self, **changes) -> "TargetCosts":
        """A modified copy, for ablation studies."""
        return replace(self, **changes)


def _table(common: float, **overrides: float) -> Dict[OpKind, float]:
    table = {kind: common for kind in OpKind}
    for key, value in overrides.items():
        table[OpKind[key]] = value
    return table


def baseline_costs() -> TargetCosts:
    """The "RISC ops" reference: OR10N with every enhancement deactivated.

    A simple single-issue 5-stage pipeline with a reduced instruction set
    "comparable to that of the original MIPS" (paper, footnote 1).  The
    instruction counts of this target define the paper's RISC-op metric.
    """
    instructions = _table(
        1.0,
        MAC=2.0,       # no fused MAC: mul + add
        MUL64=4.0,     # mul-lo, mul-hi cross terms
        ADD64=4.0,     # add, carry compare, two high-word adds
        MAC64=6.0,     # wide product (2) + 64-bit accumulate (4)
        SHIFT64=3.0,   # two shifts + or
        DIV=32.0,      # software division loop
    )
    return TargetCosts(
        name="baseline-risc",
        op_cycles=dict(instructions),  # CPI = 1 on the simple pipeline
        op_instructions=instructions,
        loop_iter_cycles=2.0,
        loop_iter_instructions=2.0,
        loop_setup_cycles=2.0,
    )


def or10n_costs() -> TargetCosts:
    """OR10N: the PULP core with all enhancements enabled.

    Register-register MAC (1 cycle), two hardware loops (zero-overhead
    innermost iteration), post-increment addressing (folds induction
    updates into loads/stores), HW-supported unaligned accesses, and
    sub-word SIMD for char/short.  Wide 64-bit arithmetic remains
    software-emulated (this is what slows ``hog`` down relative to the
    M-series, which has UMLAL/SMLAL).

    Loads cost 2 cycles: the TCDM responds in a single cycle but the
    load-use delay slot stalls the tight kernel loops about once per
    load.  The char SIMD overhead factor is high because 8x8-bit products
    need 16-bit lanes, so multiplies/MACs run at half the nominal lane
    count plus pack/unpack work.
    """
    cycles = _table(
        1.0,
        LOAD=2.0,
        MAC=1.0,
        MUL64=2.0,
        ADD64=4.0,
        MAC64=6.0,
        SHIFT64=3.0,
        DIV=32.0,
    )
    instructions = _table(
        1.0,
        MUL64=2.0,
        ADD64=4.0,
        MAC64=6.0,
        SHIFT64=3.0,
        DIV=32.0,
    )
    return TargetCosts(
        name="or10n",
        op_cycles=cycles,
        op_instructions=instructions,
        loop_iter_cycles=2.0,
        loop_iter_instructions=2.0,
        loop_setup_cycles=1.0,
        hardware_loops=2,
        hwloop_setup_cycles=2.0,
        addr_folded=True,
        unaligned_penalty_cycles=0.0,
        simd={
            DType.I8: SimdSpec(lanes=4, overhead_factor=2.8,
                               pure_alu_overhead=1.15),
            DType.I16: SimdSpec(lanes=2, overhead_factor=1.5,
                                pure_alu_overhead=1.15),
        },
    )


def cortex_m4_costs() -> TargetCosts:
    """ARM Cortex-M4 with DSP extensions active.

    Single-cycle MLA, native 64-bit MAC (SMLAL/UMLAL), saturation (SSAT),
    hardware divide, pre/post-indexed addressing; loads cost ~1.5 cycles
    (2-cycle LDR partially pipelined with neighbours); taken branches
    refill the pipeline, charged on every loop iteration.

    No SIMD table: the paper's benchmarks are *fully portable C* and the
    ARM GCC 4.8 toolchain it uses does not auto-vectorize to the M4 DSP
    packing intrinsics (SXTB16/SMLAD), so the M4 advantage over the M3 is
    limited to the single-cycle MAC, the wide multiplies and saturation —
    which matches the small M3/M4 gap visible in Figure 4.

    ``cycle_scale`` models execution from embedded flash with wait states
    (partially hidden by the ART accelerator), which PULP does not pay as
    it fetches from on-chip SRAM through the shared I$.
    """
    cycles = _table(
        1.0,
        LOAD=1.5,
        MAC=1.0,
        MUL64=1.0,     # SMULL
        ADD64=2.0,     # ADDS + ADC
        MAC64=1.5,     # SMLAL (1-2 cycles)
        SHIFT64=2.0,
        DIV=6.0,       # SDIV, data-dependent 2..12
    )
    instructions = _table(1.0, ADD64=2.0, SHIFT64=2.0)
    return TargetCosts(
        name="cortex-m4",
        op_cycles=cycles,
        op_instructions=instructions,
        loop_iter_cycles=3.0,
        loop_iter_instructions=2.0,
        loop_setup_cycles=1.0,
        addr_folded=True,
        unaligned_penalty_cycles=1.0,
        simd={},
        cycle_scale=1.2,
    )


def cortex_m3_costs() -> TargetCosts:
    """ARM Cortex-M3: as the M4 but without the DSP extensions.

    MLA takes 2 cycles, long multiplies are multi-cycle, saturation needs
    a compare/select pair, and there is no sub-word SIMD.  The paper
    estimated M3 numbers by disabling all M4-specific flags on the
    STM32-L476, which corresponds exactly to dropping the SIMD table and
    de-rating the multiply/accumulate costs.
    """
    cycles = _table(
        1.0,
        LOAD=1.5,
        MAC=2.0,       # MLA is 2 cycles on the M3
        MUL64=3.0,     # SMULL 3..5
        ADD64=2.0,
        MAC64=4.0,     # SMLAL 4..7
        SHIFT64=2.0,
        SELECT=2.0,    # no SSAT: compare + conditional move
        DIV=6.0,
    )
    instructions = _table(1.0, MAC=1.0, ADD64=2.0, SELECT=2.0, SHIFT64=2.0)
    return TargetCosts(
        name="cortex-m3",
        op_cycles=cycles,
        op_instructions=instructions,
        loop_iter_cycles=3.0,
        loop_iter_instructions=2.0,
        loop_setup_cycles=1.0,
        addr_folded=True,
        unaligned_penalty_cycles=1.0,
        simd={},
        cycle_scale=1.2,
    )
