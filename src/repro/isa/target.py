"""Target base class: lowers loop-nest programs to cycles/instructions.

The lowering walk is shared by every target; behaviour differences come
entirely from the :class:`~repro.isa.costs.TargetCosts` table:

* **SIMD vectorization** — a loop marked ``vectorizable`` whose
  vector-marked ops are all SIMD-supported for the loop's ``simd_dtype``
  executes ``ceil(trips / lanes)`` times, with body cycles scaled by the
  lane overhead factor.  Non-vector ops inside are replicated per lane.
* **Hardware loops** — the innermost ``hardware_loops`` nesting levels
  lose their per-iteration compare/branch overhead.
* **Address folding** — foldable ADDR ops are free on targets with
  post-increment addressing.
* **Unaligned accesses** — memory ops flagged ``unaligned`` pay the
  target's penalty once the loop is vectorized (scalar sub-word accesses
  are always aligned).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional

from repro.isa.costs import SimdSpec, TargetCosts
from repro.isa.program import Block, Loop, Node, Program
from repro.isa.report import LoweredReport
from repro.isa.vop import OpKind, VOp


class Target:
    """A concrete instruction-set target defined by a cost table."""

    def __init__(self, costs: TargetCosts):
        self.costs = costs

    @property
    def name(self) -> str:
        """Target name from the cost table."""
        return self.costs.name

    # -- public API ----------------------------------------------------------

    def lower(self, program: Program) -> LoweredReport:
        """Lower *program* and return its cycle/instruction report."""
        return self.lower_nodes(program.body)

    def lower_nodes(self, nodes) -> LoweredReport:
        """Lower a bare sequence of IR nodes (used by the OpenMP model to
        cost per-thread chunks and serial regions)."""
        report = LoweredReport(target_name=self.name)
        for node in nodes:
            self._lower_node(node, report, simd=None)
        self._apply_cycle_scale(report)
        return report

    def _apply_cycle_scale(self, report: LoweredReport) -> None:
        scale = self.costs.cycle_scale
        if scale == 1.0:
            return
        report.cycles *= scale
        for key in report.cycles_by_kind:
            report.cycles_by_kind[key] *= scale

    def vector_plan(self, loop: Loop) -> Optional[SimdSpec]:
        """The SIMD spec applied to *loop*, or ``None`` if the loop cannot
        be vectorized on this target.

        Loops whose vector ops contain no multiply use the lighter
        ``pure_alu_overhead`` factor: add/logic lanes never widen."""
        if not loop.vectorizable:
            return None
        spec = self.costs.simd.get(loop.simd_dtype)
        if spec is None or spec.lanes <= 1:
            return None
        has_multiply = False
        for op in _vector_ops(loop):
            if op.kind not in self.costs.simd_kinds:
                return None
            if op.kind in (OpKind.MUL, OpKind.MAC):
                has_multiply = True
        if not has_multiply and spec.pure_alu_overhead is not None:
            return replace(spec, overhead_factor=spec.pure_alu_overhead)
        return spec

    # -- lowering walk -------------------------------------------------------

    def _lower_node(self, node: Node, report: LoweredReport,
                    simd: Optional[SimdSpec]) -> None:
        if isinstance(node, Block):
            for op in node.ops:
                self._lower_op(op, report, simd)
        else:
            self._lower_loop(node, report, simd)

    def _lower_loop(self, loop: Loop, report: LoweredReport,
                    simd: Optional[SimdSpec]) -> None:
        plan = self.vector_plan(loop) if simd is None else None
        trips = loop.trips
        body_simd = simd
        overhead_factor = 1.0
        extra_cycles = 0.0
        extra_instructions = 0.0
        if plan is not None:
            trips = math.ceil(loop.trips / plan.lanes)
            body_simd = plan
            overhead_factor = plan.overhead_factor
            extra_cycles = plan.extra_cycles_per_iter
            extra_instructions = plan.extra_instructions_per_iter

        body = LoweredReport(target_name=self.name)
        for child in loop.body:
            self._lower_node(child, body, body_simd)
        if plan is not None:
            # The overhead factor applies only to this loop's direct costs;
            # nested loops were already lowered in the vector context.  For
            # simplicity (and because the paper's vectorized loops are
            # innermost or wrap only an innermost reduction) we scale the
            # whole body.
            body.cycles *= overhead_factor
            for key in body.cycles_by_kind:
                body.cycles_by_kind[key] *= overhead_factor

        if self._is_hardware_loop(loop):
            iter_cycles = 0.0
            iter_instructions = 0.0
            setup = self.costs.hwloop_setup_cycles
        else:
            iter_cycles = self.costs.loop_iter_cycles
            iter_instructions = self.costs.loop_iter_instructions
            setup = self.costs.loop_setup_cycles

        report.merge_scaled(body, trips)
        report.add("loop_overhead",
                   (iter_cycles + extra_cycles) * trips,
                   (iter_instructions + extra_instructions) * trips)
        report.add("loop_setup", setup, 1.0)

    def _is_hardware_loop(self, loop: Loop) -> bool:
        return loop.depth() <= self.costs.hardware_loops

    def _lower_op(self, op: VOp, report: LoweredReport,
                  simd: Optional[SimdSpec]) -> None:
        count = op.count
        if simd is not None and not op.vector:
            # Per-element work inside a vectorized loop replicates per lane.
            count *= simd.lanes

        if op.kind is OpKind.ADDR and op.foldable and self.costs.addr_folded:
            return  # folded into a post-increment addressing mode

        cycles = self.costs.cycles_for(op.kind)
        instructions = self.costs.instructions_for(op.kind)
        memory = 0.0
        if op.is_memory:
            memory = count
            if op.unaligned and simd is not None:
                cycles += self.costs.unaligned_penalty_cycles
                instructions += self.costs.unaligned_penalty_instructions
        report.add(op.kind.value, cycles * count, instructions * count, memory)


def _vector_ops(loop: Loop):
    """All vector-marked ops in the loop's subtree."""
    stack = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, Block):
            for op in node.ops:
                if op.vector and not (op.kind is OpKind.ADDR and op.foldable):
                    yield op
        else:
            stack.extend(node.body)
