"""Pretty-printing of loop-nest programs.

Renders a :class:`~repro.isa.program.Program` as an indented tree with
op summaries and, optionally, a per-target cost annotation per loop —
the quickest way to see *why* a kernel lowers the way it does.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.program import Block, Loop, Node, Program
from repro.isa.target import Target
from repro.isa.vop import VOp


def format_op(op: VOp) -> str:
    """One VOp as compact text, e.g. ``load.i8``, ``mac.i16 x2``."""
    text = f"{op.kind.value}.i{op.dtype.bits}"
    if op.count != 1.0:
        count = int(op.count) if float(op.count).is_integer() else op.count
        text += f" x{count}"
    flags = []
    if not op.vector:
        flags.append("scalar")
    if op.unaligned:
        flags.append("unaligned")
    if flags:
        text += f" [{','.join(flags)}]"
    return text


def format_loop_header(loop: Loop, target: Optional[Target] = None) -> str:
    """The annotation line of one loop."""
    attributes: List[str] = [f"x{loop.trips}"]
    if loop.parallelizable:
        attributes.append("parallel")
    if loop.reduction:
        attributes.append("reduction")
    if loop.vectorizable:
        attributes.append(f"vectorizable(i{loop.simd_dtype.bits})")
        if target is not None:
            plan = target.vector_plan(loop)
            if plan is not None:
                attributes.append(
                    f"simd: {plan.lanes} lanes /{plan.overhead_factor:g}")
            else:
                attributes.append("simd: blocked")
    name = loop.name or "loop"
    return f"for {name} ({', '.join(attributes)})"


def render_program(program: Program, target: Optional[Target] = None,
                   max_ops_per_block: int = 8) -> str:
    """The whole program as an indented tree.

    With a *target*, each loop header also shows the cycles the target
    spends per entry of that loop.
    """
    lines: List[str] = [f"program {program.name!r} "
                        f"(in {program.input_bytes} B, "
                        f"out {program.output_bytes} B)"]
    for node in program.body:
        _render_node(node, lines, indent=1, target=target,
                     max_ops=max_ops_per_block)
    return "\n".join(lines)


def _render_node(node: Node, lines: List[str], indent: int,
                 target: Optional[Target], max_ops: int) -> None:
    pad = "  " * indent
    if isinstance(node, Block):
        ops = [format_op(op) for op in node.ops]
        shown = ops[:max_ops]
        suffix = f" (+{len(ops) - max_ops} more)" if len(ops) > max_ops else ""
        lines.append(f"{pad}{{ {'; '.join(shown)}{suffix} }}")
        return
    header = format_loop_header(node, target)
    if target is not None:
        cycles = target.lower_nodes([node]).cycles
        header += f"  # {cycles:,.0f} cycles on {target.name}"
    lines.append(f"{pad}{header}")
    for child in node.body:
        _render_node(child, lines, indent + 1, target, max_ops)
