"""ARM Cortex-M3/M4 host-core targets."""

from __future__ import annotations

from repro.isa.costs import cortex_m3_costs, cortex_m4_costs
from repro.isa.target import Target


class CortexM4Target(Target):
    """Cortex-M4 with the DSP extension active (MLA, SMLAL, SSAT, SIMD)."""

    def __init__(self, costs=None):
        super().__init__(costs if costs is not None else cortex_m4_costs())


class CortexM3Target(Target):
    """Cortex-M3: the M4 pipeline without the DSP extensions.

    The paper estimates M3 cycle counts by running on the STM32-L476 with
    all Cortex-M4-specific compiler flags deactivated; this target is the
    model equivalent.
    """

    def __init__(self, costs=None):
        super().__init__(costs if costs is not None else cortex_m3_costs())
