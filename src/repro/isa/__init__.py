"""Virtual ISA, loop-nest program IR and target cycle models.

The paper compares the same portable C kernels across three instruction
set targets:

* the *baseline* OpenRISC 1000 configuration used to define "RISC ops"
  (OR10N with every microarchitectural improvement deactivated);
* *OR10N*, the PULP core with register-register MAC, two hardware loops,
  sub-word SIMD for ``char``/``short`` and unaligned load/store support;
* the ARM *Cortex-M3/M4* microcontroller cores.

Kernels (see :mod:`repro.kernels`) describe their computation once, as a
loop-nest program over a small virtual ISA; each target lowers that
program to executed instructions and cycles.  Figure 4's architectural
speedups and Table I's RISC-op counts are ratios of these lowerings.
"""

from repro.isa.program import Block, Loop, Program
from repro.isa.report import LoweredReport
from repro.isa.target import Target
from repro.isa.baseline import BaselineRiscTarget
from repro.isa.cortexm import CortexM3Target, CortexM4Target
from repro.isa.or10n import Or10nTarget
from repro.isa.vop import DType, OpKind, VOp

__all__ = [
    "OpKind",
    "DType",
    "VOp",
    "Block",
    "Loop",
    "Program",
    "LoweredReport",
    "Target",
    "BaselineRiscTarget",
    "Or10nTarget",
    "CortexM3Target",
    "CortexM4Target",
]
