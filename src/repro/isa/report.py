"""Lowering results: cycles and instruction counts per target."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.vop import OpKind


@dataclass
class LoweredReport:
    """Result of lowering a program onto one target.

    Attributes
    ----------
    target_name:
        Name of the target the program was lowered for.
    cycles:
        Estimated execution cycles (single core, no parallelism).
    instructions:
        Executed machine instructions.
    cycles_by_kind:
        Cycle breakdown keyed by op kind plus the pseudo-keys
        ``"loop_overhead"`` and ``"loop_setup"``.
    memory_accesses:
        Executed data memory accesses (for TCDM-contention and activity
        modeling).
    """

    target_name: str
    cycles: float = 0.0
    instructions: float = 0.0
    cycles_by_kind: Dict[str, float] = field(default_factory=dict)
    memory_accesses: float = 0.0

    def add(self, kind_key: str, cycles: float, instructions: float,
            memory_accesses: float = 0.0) -> None:
        """Accumulate a contribution."""
        self.cycles += cycles
        self.instructions += instructions
        self.memory_accesses += memory_accesses
        if cycles:
            self.cycles_by_kind[kind_key] = (
                self.cycles_by_kind.get(kind_key, 0.0) + cycles)

    def merge_scaled(self, other: "LoweredReport", factor: float) -> None:
        """Accumulate *other* repeated *factor* times (loop bodies)."""
        self.cycles += other.cycles * factor
        self.instructions += other.instructions * factor
        self.memory_accesses += other.memory_accesses * factor
        for key, value in other.cycles_by_kind.items():
            self.cycles_by_kind[key] = (
                self.cycles_by_kind.get(key, 0.0) + value * factor)

    @property
    def cpi(self) -> float:
        """Cycles per instruction (diagnostic)."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    def memory_intensity(self) -> float:
        """Fraction of cycles spent on data memory accesses — feeds the
        activity (χ) factors of the power model."""
        if self.cycles == 0:
            return 0.0
        mem_cycles = (self.cycles_by_kind.get(OpKind.LOAD.value, 0.0)
                      + self.cycles_by_kind.get(OpKind.STORE.value, 0.0))
        return mem_cycles / self.cycles
