"""The OR10N target: PULP's enhanced OpenRISC core."""

from __future__ import annotations

from repro.isa.costs import or10n_costs
from repro.isa.target import Target


class Or10nTarget(Target):
    """OR10N with all enhancements enabled.

    Enhancements modeled (Section III-B of the paper): register-register
    multiply-accumulate, vectorized instructions for ``short`` and
    ``char`` data, two hardware loops, unaligned load/store support, and
    post-increment addressing.  Loads hit the shared single-cycle TCDM
    (bank contention is added separately by the cluster timing model).
    """

    def __init__(self, costs=None):
        super().__init__(costs if costs is not None else or10n_costs())
