"""Static validation of kernel loop-nest programs.

A linter for kernel authors: checks the structural invariants the rest
of the stack assumes but cannot always enforce at construction time.
Returns findings rather than raising, so it can report everything at
once; ``strict`` mode turns any ERROR finding into an exception.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import IsaError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import MEMORY_KINDS, OpKind


class Severity(enum.Enum):
    """Finding severities."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One validation finding.

    ``code`` identifies the rule that fired — ``VPnnn`` for the
    loop-nest IR checks in this module, ``ORnnn`` for the machine-level
    analyzer in :mod:`repro.analysis.rules`.  ``line`` is the 1-based
    source line for findings produced from assembled text, ``None``
    when no source mapping exists.
    """

    severity: Severity
    location: str
    message: str
    code: str = ""
    line: Optional[int] = None

    def __str__(self) -> str:
        prefix = f"{self.code} " if self.code else ""
        where = self.location
        if self.line is not None:
            where = f"line {self.line} ({self.location})"
        return f"{prefix}[{self.severity.value}] {where}: {self.message}"


def render_findings(findings: Iterable[Finding],
                    title: str = "") -> str:
    """Pretty-print *findings*, errors first, as one text block.

    Shared by the IR validator and the machine-code linter so both
    surfaces read identically in the CLI.
    """
    ordered = sorted(
        findings,
        key=lambda f: (-list(Severity).index(f.severity),
                       f.line if f.line is not None else -1))
    lines = []
    if title:
        lines.append(title)
    if not ordered:
        lines.append("  no findings")
        return "\n".join(lines)
    counts = {severity: 0 for severity in Severity}
    for finding in ordered:
        counts[finding.severity] += 1
        lines.append(f"  {finding}")
    summary = ", ".join(f"{count} {severity.value}(s)"
                        for severity, count in counts.items() if count)
    lines.append(f"  -- {summary}")
    return "\n".join(lines)


def validate_program(program: Program, strict: bool = False) -> List[Finding]:
    """Validate *program*; raises :class:`IsaError` in strict mode when
    any ERROR-severity finding exists."""
    findings: List[Finding] = []
    _check_top_level(program, findings)
    _check_loops(program, findings)
    _check_footprints(program, findings)
    if strict:
        errors = [f for f in findings if f.severity is Severity.ERROR]
        if errors:
            raise IsaError(
                f"program {program.name!r} failed validation: "
                + "; ".join(str(f) for f in errors))
    return findings


def _check_top_level(program: Program, findings: List[Finding]) -> None:
    if not program.body:
        findings.append(Finding(Severity.ERROR, program.name,
                                "program has no body", code="VP001"))
    if not program.parallel_loops():
        findings.append(Finding(
            Severity.WARNING, program.name,
            "no top-level parallel loop: the kernel cannot use the team",
            code="VP002"))
    # Nested parallel loops are silently ignored by the OpenMP model.
    top = set(id(node) for node in program.body)
    for node in program.walk():
        if isinstance(node, Loop) and node.parallelizable \
                and id(node) not in top:
            findings.append(Finding(
                Severity.ERROR, node.name or "loop",
                "parallelizable loop is nested; only top-level loops are "
                "split across the team", code="VP003"))


def _check_loops(program: Program, findings: List[Finding]) -> None:
    for node in program.walk():
        if not isinstance(node, Loop):
            continue
        location = node.name or "loop"
        if node.trips == 0:
            findings.append(Finding(Severity.WARNING, location,
                                    "zero-trip loop costs only setup",
                                    code="VP004"))
        if node.vectorizable:
            ops = _vector_ops(node)
            if not ops:
                findings.append(Finding(
                    Severity.ERROR, location,
                    "vectorizable loop contains no vector-marked ops",
                    code="VP005"))
            elif all(op.dtype.bits >= 32 for op in ops):
                findings.append(Finding(
                    Severity.WARNING, location,
                    "vectorizable loop has only 32-bit ops: no target "
                    "will pack it", code="VP006"))
        has_memory = any(op.kind in MEMORY_KINDS
                         for op in _direct_ops(node))
        has_addr = any(op.kind is OpKind.ADDR and op.foldable
                       for op in _direct_ops(node))
        if has_addr and not has_memory and node.depth() == 1:
            findings.append(Finding(
                Severity.WARNING, location,
                "foldable ADDR ops without memory ops in the same body: "
                "post-increment folding may be optimistic", code="VP007"))


def _check_footprints(program: Program, findings: List[Finding]) -> None:
    for name, value in (("input_bytes", program.input_bytes),
                        ("output_bytes", program.output_bytes),
                        ("const_bytes", program.const_bytes),
                        ("buffer_bytes", program.buffer_bytes)):
        if value < 0:
            findings.append(Finding(Severity.ERROR, program.name,
                                    f"negative {name}", code="VP008"))
    counts = program.dynamic_op_counts()
    loads = counts.get(OpKind.LOAD, 0.0)
    if program.input_bytes and loads == 0:
        findings.append(Finding(
            Severity.WARNING, program.name,
            "program declares input bytes but performs no loads",
            code="VP009"))
    stores = counts.get(OpKind.STORE, 0.0)
    if program.output_bytes and stores == 0:
        findings.append(Finding(
            Severity.WARNING, program.name,
            "program declares output bytes but performs no stores",
            code="VP010"))


def _vector_ops(loop: Loop):
    ops = []
    stack = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, Block):
            ops.extend(op for op in node.ops
                       if op.vector and op.kind is not OpKind.ADDR)
        else:
            stack.extend(node.body)
    return ops


def _direct_ops(loop: Loop):
    for node in loop.body:
        if isinstance(node, Block):
            yield from node.ops
