"""The baseline RISC target that defines the paper's "RISC ops" metric."""

from __future__ import annotations

from repro.isa.costs import baseline_costs
from repro.isa.program import Program
from repro.isa.target import Target


class BaselineRiscTarget(Target):
    """OR10N with all microarchitectural improvements deactivated.

    Per the paper's footnote 1, in this configuration the core is
    "essentially equal to that defined in the OpenRISC 1000 ISA" with "a
    very simple 5-stage pipeline and a reduced instruction set, comparable
    to that of the original MIPS".  The number of *instructions executed*
    by this target is the RISC-op count reported in Table I and used as
    the operation unit of GOPS throughout the evaluation.
    """

    def __init__(self):
        super().__init__(baseline_costs())

    def risc_ops(self, program: Program) -> float:
        """RISC operations executed by *program* (Table I's last column)."""
        return self.lower(program).instructions
