"""Unit helpers and human-readable formatting.

The library uses **base SI units everywhere**: seconds, hertz, volts,
watts, joules, bytes, bits.  These helpers exist so that call sites can
say ``mhz(32)`` instead of ``32e6`` and so that reports can render
``1.48 mW`` instead of ``0.00148``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

# ---------------------------------------------------------------------------
# Constructors (value in conventional engineering unit -> base SI unit)
# ---------------------------------------------------------------------------


def khz(value: float) -> float:
    """Kilohertz to hertz."""
    return float(value) * 1e3


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return float(value) * 1e6


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return float(value) * 1e9


def uw(value: float) -> float:
    """Microwatts to watts."""
    return float(value) * 1e-6


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return float(value) * 1e-3


def ua(value: float) -> float:
    """Microamperes to amperes."""
    return float(value) * 1e-6


def ma(value: float) -> float:
    """Milliamperes to amperes."""
    return float(value) * 1e-3


def us(value: float) -> float:
    """Microseconds to seconds."""
    return float(value) * 1e-6

def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return float(value) * 1e-3


def kib(value: float) -> int:
    """Kibibytes to bytes."""
    return int(round(float(value) * 1024))


def uj(value: float) -> float:
    """Microjoules to joules."""
    return float(value) * 1e-6


def ua_per_mhz(value: float) -> float:
    """Datasheet current density (µA/MHz) to amperes-per-hertz."""
    return float(value) * 1e-6 / 1e6


def uw_per_mhz(value: float) -> float:
    """Power density (µW/MHz) to watts-per-hertz."""
    return float(value) * 1e-6 / 1e6


# ---------------------------------------------------------------------------
# Derived quantities
# ---------------------------------------------------------------------------


def gops(ops: float, seconds: float) -> float:
    """Throughput in giga-operations per second."""
    if seconds <= 0:
        raise ConfigurationError(f"non-positive duration: {seconds!r}")
    return ops / seconds / 1e9


def gops_per_watt(ops: float, seconds: float, watts: float) -> float:
    """Energy efficiency in GOPS/W."""
    if watts <= 0:
        raise ConfigurationError(f"non-positive power: {watts!r}")
    return gops(ops, seconds) / watts


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------

_SI_PREFIXES = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
)


def si_format(value: float, unit: str, digits: int = 3) -> str:
    """Format *value* with an SI prefix, e.g. ``si_format(1.48e-3, 'W')``
    gives ``'1.48 mW'``.
    """
    if value == 0:
        return f"0 {unit}"
    if math.isnan(value) or math.isinf(value):
        return f"{value} {unit}"
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}"
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}"


def format_hz(value: float) -> str:
    """Format a frequency, e.g. ``'32 MHz'``."""
    return si_format(value, "Hz")


def format_watts(value: float) -> str:
    """Format a power, e.g. ``'1.48 mW'``."""
    return si_format(value, "W")


def format_bytes(value: int) -> str:
    """Format a byte count in binary units, e.g. ``'8 kB'``."""
    value = int(value)
    if abs(value) >= 1024 * 1024:
        return f"{value / (1024 * 1024):.3g} MB"
    if abs(value) >= 1024:
        return f"{value / 1024:.3g} kB"
    return f"{value} B"


def format_seconds(value: float) -> str:
    """Format a duration, e.g. ``'1.2 ms'``."""
    return si_format(value, "s")
